//! Seeded, composable fault injection for released models — the
//! robustness harness behind [`RobustnessReport`](crate::RobustnessReport).
//!
//! A released model rarely reaches the adversary byte-identical to what
//! the malicious trainer produced: deployment toolchains re-pack weights,
//! storage and transmission flip bits, the data holder prunes, fine-tunes
//! or noises the model before publishing. A [`FaultPlan`] reproduces those
//! perturbations deterministically (every draw derives from the plan's
//! seed) so the attack's survival — and the resilient decoder's behaviour
//! — can be measured instead of guessed.
//!
//! Faults apply to both release formats:
//!
//! * [`FaultPlan::apply_to_network`] perturbs a float [`Network`] in
//!   place.
//! * [`FaultPlan::apply_to_quantized`] perturbs a
//!   [`QuantizedNetwork`]'s packed cluster indices and codebooks (bit
//!   flips go through the real [`qce_quant::pack`] bitstream — the format
//!   a deployed model actually ships) and then re-applies the handle to
//!   the network.
//!
//! Severity scaling is multiplicative and *nested*: because every fault
//! draws from a fresh seed-derived RNG, [`FaultPlan::scaled`] at a higher
//! severity flips a superset of the bits (and adds a scaled-up version of
//! the *same* noise realization) of a lower severity — which is what makes
//! the [`RobustnessReport`](crate::RobustnessReport) sweeps monotone.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use qce_nn::{Network, NnError, ParamKind};
use qce_quant::{pack, QuantError, QuantizedNetwork};
use qce_tensor::init::standard_normal;
use qce_tensor::stats;

/// One fault family, parameterized by its severity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Flips each bit of the release's packed cluster-index bitstream with
    /// probability `rate` (quantized releases). On a float network the
    /// same rate is applied per low-mantissa bit (the 16 LSBs), modelling
    /// storage bit rot that cannot produce NaN/Inf.
    BitFlip {
        /// Per-bit flip probability in `[0, 1]`.
        rate: f64,
    },
    /// Adds zero-mean Gaussian noise with standard deviation `fraction` of
    /// each tensor's own weight standard deviation.
    GaussianNoise {
        /// Noise σ as a fraction of the per-tensor weight σ.
        fraction: f32,
    },
    /// Adds uniform noise in `±fraction · σ_tensor`.
    UniformNoise {
        /// Noise amplitude as a fraction of the per-tensor weight σ.
        fraction: f32,
    },
    /// Magnitude pruning: zeroes the smallest-magnitude `fraction` of all
    /// weights (quantized releases remap those weights to the cluster
    /// whose representative is nearest zero).
    Prune {
        /// Fraction of weights to zero, in `[0, 1]`.
        fraction: f32,
    },
    /// Jitters codebook representatives with Gaussian noise of σ =
    /// `fraction` times the codebook's representative spread. A no-op on
    /// float networks, which have no codebook.
    CentroidJitter {
        /// Jitter σ as a fraction of the representative σ.
        fraction: f32,
    },
    /// First-order model of post-release fine-tuning: every weight moves
    /// by a zero-mean Gaussian step proportional to its own magnitude
    /// (`w += strength · |w| · g`). On a quantized release only the
    /// representatives drift — exactly how the codebase's real
    /// quantization-aware fine-tuning behaves.
    FinetuneDrift {
        /// Relative step size.
        strength: f32,
    },
}

impl FaultKind {
    /// The fault with its severity parameter multiplied by `factor`
    /// (rates clamp at 1).
    pub fn scaled(&self, factor: f32) -> FaultKind {
        match *self {
            FaultKind::BitFlip { rate } => FaultKind::BitFlip {
                rate: (rate * f64::from(factor)).min(1.0),
            },
            FaultKind::GaussianNoise { fraction } => FaultKind::GaussianNoise {
                fraction: fraction * factor,
            },
            FaultKind::UniformNoise { fraction } => FaultKind::UniformNoise {
                fraction: fraction * factor,
            },
            FaultKind::Prune { fraction } => FaultKind::Prune {
                fraction: (fraction * factor).min(1.0),
            },
            FaultKind::CentroidJitter { fraction } => FaultKind::CentroidJitter {
                fraction: fraction * factor,
            },
            FaultKind::FinetuneDrift { strength } => FaultKind::FinetuneDrift {
                strength: strength * factor,
            },
        }
    }

    /// The severity parameter (0 means the fault is a no-op).
    pub fn severity(&self) -> f64 {
        match *self {
            FaultKind::BitFlip { rate } => rate,
            FaultKind::GaussianNoise { fraction }
            | FaultKind::UniformNoise { fraction }
            | FaultKind::Prune { fraction }
            | FaultKind::CentroidJitter { fraction } => f64::from(fraction),
            FaultKind::FinetuneDrift { strength } => f64::from(strength),
        }
    }

    fn validate(&self) -> Result<(), FaultError> {
        let s = self.severity();
        if !s.is_finite() || s < 0.0 {
            return Err(FaultError::InvalidFault {
                reason: format!("severity {s} must be finite and non-negative"),
            });
        }
        match *self {
            FaultKind::BitFlip { rate } if rate > 1.0 => Err(FaultError::InvalidFault {
                reason: format!("bit-flip rate {rate} exceeds 1"),
            }),
            FaultKind::Prune { fraction } if fraction > 1.0 => Err(FaultError::InvalidFault {
                reason: format!("prune fraction {fraction} exceeds 1"),
            }),
            _ => Ok(()),
        }
    }
}

/// Error type of fault application.
#[derive(Debug)]
#[non_exhaustive]
pub enum FaultError {
    /// A fault's severity parameter is out of range.
    InvalidFault {
        /// Why the fault is rejected.
        reason: String,
    },
    /// Re-packing or re-applying the quantized handle failed.
    Quant(QuantError),
    /// Writing perturbed weights back into the network failed.
    Nn(NnError),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::InvalidFault { reason } => write!(f, "invalid fault: {reason}"),
            FaultError::Quant(e) => write!(f, "fault injection (quantized): {e}"),
            FaultError::Nn(e) => write!(f, "fault injection (network): {e}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Quant(e) => Some(e),
            FaultError::Nn(e) => Some(e),
            FaultError::InvalidFault { .. } => None,
        }
    }
}

impl From<QuantError> for FaultError {
    fn from(e: QuantError) -> Self {
        FaultError::Quant(e)
    }
}

impl From<NnError> for FaultError {
    fn from(e: NnError) -> Self {
        FaultError::Nn(e)
    }
}

/// A seeded, ordered list of faults applied to a release.
///
/// # Examples
///
/// ```
/// use qce::faults::{FaultKind, FaultPlan};
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = ResNetLite::builder()
///     .input(1, 8).classes(2).stage_channels(&[4]).blocks_per_stage(1)
///     .build(1)?;
/// let before = net.flat_weights();
/// let plan = FaultPlan::new(7)
///     .with(FaultKind::BitFlip { rate: 0.001 })
///     .with(FaultKind::GaussianNoise { fraction: 0.05 });
/// plan.apply_to_network(&mut net)?;
/// assert_ne!(net.flat_weights(), before);
/// // Zero severity is exactly the identity.
/// let mut other = ResNetLite::builder()
///     .input(1, 8).classes(2).stage_channels(&[4]).blocks_per_stage(1)
///     .build(1)?;
/// let before = other.flat_weights();
/// plan.scaled(0.0).apply_to_network(&mut other)?;
/// assert_eq!(other.flat_weights(), before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// Creates an empty plan; all randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends a fault (applied in insertion order).
    #[must_use]
    pub fn with(mut self, fault: FaultKind) -> Self {
        self.faults.push(fault);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults in application order.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// The plan with every severity multiplied by `factor` (same seed, so
    /// higher severities strictly extend lower ones).
    pub fn scaled(&self, factor: f32) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            faults: self.faults.iter().map(|f| f.scaled(factor)).collect(),
        }
    }

    /// Whether every fault is a no-op (empty plan or all severities zero).
    pub fn is_benign(&self) -> bool {
        self.faults.iter().all(|f| f.severity() == 0.0)
    }

    fn validate(&self) -> Result<(), FaultError> {
        for f in &self.faults {
            f.validate()?;
        }
        Ok(())
    }

    /// Each fault gets its own RNG so plans compose independently of each
    /// other's draw counts (and severity scaling stays nested).
    fn rng_for(&self, fault_index: usize) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (fault_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Applies the plan to a float network's `Weight`-kind tensors.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidFault`] for out-of-range severities;
    /// other variants cannot occur through this path.
    pub fn apply_to_network(&self, net: &mut Network) -> Result<(), FaultError> {
        self.validate()?;
        for (fi, fault) in self.faults.iter().enumerate() {
            if fault.severity() == 0.0 {
                continue;
            }
            let mut rng = self.rng_for(fi);
            match *fault {
                FaultKind::BitFlip { rate } => {
                    for_each_weight_tensor(net, |values| {
                        for w in values.iter_mut() {
                            let mut bits = w.to_bits();
                            for b in 0..16u32 {
                                if rng.random_range(0.0..1.0f64) < rate {
                                    bits ^= 1 << b;
                                }
                            }
                            *w = f32::from_bits(bits);
                        }
                    });
                }
                FaultKind::GaussianNoise { fraction } => {
                    for_each_weight_tensor(net, |values| {
                        let sigma = fraction * stats::std_dev(values);
                        for w in values.iter_mut() {
                            *w += sigma * standard_normal(&mut rng);
                        }
                    });
                }
                FaultKind::UniformNoise { fraction } => {
                    for_each_weight_tensor(net, |values| {
                        let amp = fraction * stats::std_dev(values);
                        for w in values.iter_mut() {
                            *w += amp * rng.random_range(-1.0..1.0f32);
                        }
                    });
                }
                FaultKind::Prune { fraction } => {
                    let flat = net.flat_weights();
                    let threshold = magnitude_threshold(&flat, fraction);
                    for_each_weight_tensor(net, |values| {
                        for w in values.iter_mut() {
                            if w.abs() < threshold {
                                *w = 0.0;
                            }
                        }
                    });
                }
                FaultKind::CentroidJitter { .. } => {
                    // Float releases have no codebook to jitter.
                }
                FaultKind::FinetuneDrift { strength } => {
                    for_each_weight_tensor(net, |values| {
                        for w in values.iter_mut() {
                            *w += strength * w.abs() * standard_normal(&mut rng);
                        }
                    });
                }
            }
        }
        Ok(())
    }

    /// Applies the plan to a quantized release: cluster indices are
    /// perturbed through the packed deployment bitstream, codebook
    /// representatives through [`qce_quant::Codebook::set_representatives`]
    /// — then the handle is re-applied so `net`'s weights reflect the
    /// faulted release.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidFault`] for out-of-range severities or
    /// a wrapped [`QuantError`] if the handle no longer matches `net`.
    pub fn apply_to_quantized(
        &self,
        qnet: &mut QuantizedNetwork,
        net: &mut Network,
    ) -> Result<(), FaultError> {
        self.validate()?;
        for (fi, fault) in self.faults.iter().enumerate() {
            if fault.severity() == 0.0 {
                continue;
            }
            let mut rng = self.rng_for(fi);
            match *fault {
                FaultKind::BitFlip { rate } => {
                    for slot in qnet.slots_mut() {
                        if slot.is_empty() {
                            continue;
                        }
                        let bits = slot.codebook.bits();
                        let mut packed = pack::pack(&slot.assignment, bits)?;
                        for byte in packed.iter_mut() {
                            for b in 0..8u32 {
                                if rng.random_range(0.0..1.0f64) < rate {
                                    *byte ^= 1 << b;
                                }
                            }
                        }
                        let n = slot.assignment.len();
                        let max = slot.codebook.levels() as u32 - 1;
                        slot.assignment = pack::unpack(&packed, bits, n)?
                            .into_iter()
                            .map(|i| i.min(max))
                            .collect();
                    }
                }
                FaultKind::GaussianNoise { fraction } => {
                    for slot in qnet.slots_mut() {
                        let decoded = slot.codebook.decode(&slot.assignment)?;
                        let sigma = fraction * stats::std_dev(&decoded);
                        let reps: Vec<f32> = slot
                            .codebook
                            .representatives()
                            .iter()
                            .map(|&r| r + sigma * standard_normal(&mut rng))
                            .collect();
                        slot.codebook.set_representatives(reps)?;
                    }
                }
                FaultKind::UniformNoise { fraction } => {
                    for slot in qnet.slots_mut() {
                        let decoded = slot.codebook.decode(&slot.assignment)?;
                        let amp = fraction * stats::std_dev(&decoded);
                        let reps: Vec<f32> = slot
                            .codebook
                            .representatives()
                            .iter()
                            .map(|&r| r + amp * rng.random_range(-1.0..1.0f32))
                            .collect();
                        slot.codebook.set_representatives(reps)?;
                    }
                }
                FaultKind::Prune { fraction } => {
                    // Remap small-magnitude weights to the cluster nearest
                    // zero — pruning as a deployment toolchain would do it
                    // without leaving the codebook.
                    let mut all: Vec<f32> = Vec::new();
                    for slot in qnet.slots() {
                        all.extend(slot.codebook.decode(&slot.assignment)?);
                    }
                    let threshold = magnitude_threshold(&all, fraction);
                    for slot in qnet.slots_mut() {
                        let zero_cluster = slot
                            .codebook
                            .representatives()
                            .iter()
                            .enumerate()
                            .min_by(|(_, a), (_, b)| a.abs().total_cmp(&b.abs()))
                            .map(|(i, _)| i as u32)
                            .unwrap_or(0);
                        let decoded = slot.codebook.decode(&slot.assignment)?;
                        for (idx, v) in slot.assignment.iter_mut().zip(decoded) {
                            if v.abs() < threshold {
                                *idx = zero_cluster;
                            }
                        }
                    }
                }
                FaultKind::CentroidJitter { fraction } => {
                    for slot in qnet.slots_mut() {
                        let spread = stats::std_dev(slot.codebook.representatives());
                        let sigma = fraction * spread;
                        let reps: Vec<f32> = slot
                            .codebook
                            .representatives()
                            .iter()
                            .map(|&r| r + sigma * standard_normal(&mut rng))
                            .collect();
                        slot.codebook.set_representatives(reps)?;
                    }
                }
                FaultKind::FinetuneDrift { strength } => {
                    for slot in qnet.slots_mut() {
                        let reps: Vec<f32> = slot
                            .codebook
                            .representatives()
                            .iter()
                            .map(|&r| r + strength * r.abs() * standard_normal(&mut rng))
                            .collect();
                        slot.codebook.set_representatives(reps)?;
                    }
                }
            }
        }
        qnet.reapply(net)?;
        Ok(())
    }
}

/// Runs `f` over every `Weight`-kind tensor's values, in forward order.
fn for_each_weight_tensor(net: &mut Network, mut f: impl FnMut(&mut [f32])) {
    for p in net.params_mut() {
        if p.kind() == ParamKind::Weight {
            f(p.value_mut().as_mut_slice());
        }
    }
}

/// Magnitude below which the smallest `fraction` of `values` falls.
fn magnitude_threshold(values: &[f32], fraction: f32) -> f32 {
    if values.is_empty() || fraction <= 0.0 {
        return 0.0;
    }
    let mags: Vec<f32> = values.iter().map(|v| v.abs()).collect();
    stats::quantile(&mags, fraction.min(1.0)).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_nn::models::ResNetLite;
    use qce_quant::{quantize_network, KMeansQuantizer};

    fn net() -> Network {
        ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(11)
            .unwrap()
    }

    #[test]
    fn zero_severity_plan_is_identity() {
        let mut n = net();
        let before = n.flat_weights();
        let plan = FaultPlan::new(1)
            .with(FaultKind::BitFlip { rate: 0.0 })
            .with(FaultKind::GaussianNoise { fraction: 0.0 })
            .with(FaultKind::Prune { fraction: 0.0 });
        assert!(plan.is_benign());
        plan.apply_to_network(&mut n).unwrap();
        assert_eq!(n.flat_weights(), before);
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let plan = FaultPlan::new(42)
            .with(FaultKind::BitFlip { rate: 0.01 })
            .with(FaultKind::GaussianNoise { fraction: 0.1 });
        let mut a = net();
        let mut b = net();
        plan.apply_to_network(&mut a).unwrap();
        plan.apply_to_network(&mut b).unwrap();
        assert_eq!(a.flat_weights(), b.flat_weights());
        let mut c = net();
        FaultPlan::new(43)
            .with(FaultKind::BitFlip { rate: 0.01 })
            .with(FaultKind::GaussianNoise { fraction: 0.1 })
            .apply_to_network(&mut c)
            .unwrap();
        assert_ne!(a.flat_weights(), c.flat_weights());
    }

    #[test]
    fn float_bit_flips_stay_finite() {
        let mut n = net();
        FaultPlan::new(3)
            .with(FaultKind::BitFlip { rate: 0.5 })
            .apply_to_network(&mut n)
            .unwrap();
        assert!(n.flat_weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn prune_zeroes_the_requested_fraction() {
        let mut n = net();
        FaultPlan::new(4)
            .with(FaultKind::Prune { fraction: 0.3 })
            .apply_to_network(&mut n)
            .unwrap();
        let flat = n.flat_weights();
        let zeros = flat.iter().filter(|&&w| w == 0.0).count();
        let frac = zeros as f32 / flat.len() as f32;
        assert!((frac - 0.3).abs() < 0.05, "pruned fraction {frac}");
    }

    #[test]
    fn quantized_bit_flips_corrupt_assignments_not_codebooks() {
        let mut n = net();
        let mut q = quantize_network(&mut n, &KMeansQuantizer::new(8).unwrap()).unwrap();
        let before_assignments: Vec<Vec<u32>> =
            q.slots().iter().map(|s| s.assignment.clone()).collect();
        let before_reps: Vec<Vec<f32>> = q
            .slots()
            .iter()
            .map(|s| s.codebook.representatives().to_vec())
            .collect();
        FaultPlan::new(5)
            .with(FaultKind::BitFlip { rate: 0.05 })
            .apply_to_quantized(&mut q, &mut n)
            .unwrap();
        let changed = q
            .slots()
            .iter()
            .zip(&before_assignments)
            .any(|(s, b)| &s.assignment != b);
        assert!(changed, "5% bit flips must move some indices");
        for (s, b) in q.slots().iter().zip(&before_reps) {
            assert_eq!(s.codebook.representatives(), &b[..]);
        }
        // Every index is still decodable and the network was re-applied.
        for s in q.slots() {
            assert!(s.codebook.decode(&s.assignment).is_ok());
        }
        let reapplied = n.flat_weights();
        q.reapply(&mut n).unwrap();
        assert_eq!(n.flat_weights(), reapplied);
    }

    #[test]
    fn centroid_jitter_moves_quantized_weights_only() {
        let mut n = net();
        let mut q = quantize_network(&mut n, &KMeansQuantizer::new(8).unwrap()).unwrap();
        let before = n.flat_weights();
        FaultPlan::new(6)
            .with(FaultKind::CentroidJitter { fraction: 0.2 })
            .apply_to_quantized(&mut q, &mut n)
            .unwrap();
        assert_ne!(n.flat_weights(), before);
        // The same fault is a documented no-op on a float network.
        let mut f = net();
        let before = f.flat_weights();
        FaultPlan::new(6)
            .with(FaultKind::CentroidJitter { fraction: 0.2 })
            .apply_to_network(&mut f)
            .unwrap();
        assert_eq!(f.flat_weights(), before);
    }

    #[test]
    fn severity_scaling_is_nested_for_bit_flips() {
        // Flips at rate r1 < r2 (same seed) must be a subset: a weight
        // changed at r1 is changed identically or further at r2 — checked
        // here on the quantized index stream where flips are discrete.
        let mut n1 = net();
        let mut q1 = quantize_network(&mut n1, &KMeansQuantizer::new(8).unwrap()).unwrap();
        let mut n2 = net();
        let mut q2 = quantize_network(&mut n2, &KMeansQuantizer::new(8).unwrap()).unwrap();
        let base = FaultPlan::new(9).with(FaultKind::BitFlip { rate: 0.002 });
        base.apply_to_quantized(&mut q1, &mut n1).unwrap();
        base.scaled(10.0)
            .apply_to_quantized(&mut q2, &mut n2)
            .unwrap();
        let clean = {
            let mut n = net();
            quantize_network(&mut n, &KMeansQuantizer::new(8).unwrap()).unwrap()
        };
        for ((s1, s2), s0) in q1.slots().iter().zip(q2.slots()).zip(clean.slots()) {
            for ((&a1, &a2), &a0) in s1.assignment.iter().zip(&s2.assignment).zip(&s0.assignment) {
                if a1 != a0 {
                    // Bit positions flipped at the low rate are flipped at
                    // the high rate too (possibly plus more).
                    assert_ne!(a2, a0, "low-rate flip missing at high rate");
                }
            }
        }
    }

    #[test]
    fn invalid_severities_are_rejected() {
        let mut n = net();
        assert!(FaultPlan::new(0)
            .with(FaultKind::BitFlip { rate: 1.5 })
            .apply_to_network(&mut n)
            .is_err());
        assert!(FaultPlan::new(0)
            .with(FaultKind::GaussianNoise { fraction: -0.1 })
            .apply_to_network(&mut n)
            .is_err());
        assert!(FaultPlan::new(0)
            .with(FaultKind::Prune { fraction: 2.0 })
            .apply_to_network(&mut n)
            .is_err());
    }

    #[test]
    fn fault_error_display_and_source() {
        use std::error::Error;
        let e = FaultError::InvalidFault {
            reason: "x".to_string(),
        };
        assert!(e.to_string().contains("invalid fault"));
        assert!(e.source().is_none());
        let e = FaultError::from(QuantError::EmptyWeights);
        assert!(e.source().is_some());
    }
}
