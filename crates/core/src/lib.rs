//! `qce` — the integrated *quantized correlation encoding attack flow* of
//! the DAC 2020 paper "Stealing Your Data from Compressed Machine
//! Learning Models" (Xu, Liu et al.), reproduced end to end on
//! from-scratch substrates.
//!
//! # The attack in one paragraph
//!
//! A malicious ML provider hands a data holder a training algorithm that
//! looks normal: data pre-processing, training with a regularizer,
//! quantization with fine-tuning. Secretly, (1) the pre-processing picks
//! training images whose pixel distribution matches what the attack will
//! do to the weights, (2) the "regularizer" maximizes the correlation
//! between late-layer weights and those images' pixels, and (3) the
//! quantizer chooses cluster boundaries from the pixel histogram so that
//! compression does not erase the correlation. The data holder validates
//! accuracy, publishes the (deeply quantized) model — and the provider
//! decodes the training images straight out of the released weights.
//!
//! # Crate map
//!
//! * [`FlowConfig`] / [`AttackFlow`] — configure and run the full
//!   pipeline on a dataset; every stage (benign baseline, uniform CCS'17
//!   attack, the paper's layer-wise flow, each quantizer) is a config
//!   choice, which is what makes the ablation benches one-liners.
//! * [`FlowOutcome`] / [`StageReport`] — accuracy, per-image MAPE/SSIM,
//!   recognized-image counts, group correlations, compression ratio.
//! * [`audit`] — the defender's view: distribution-level heuristics that
//!   flag correlation-encoded weight tensors.
//! * [`faults`] / [`RobustnessReport`] — seeded fault injection on the
//!   released model (bit flips in the packed index stream, noise, pruning,
//!   centroid jitter, fine-tune drift) plus severity sweeps measuring how
//!   gracefully the resilient decoder degrades.
//!
//! # Examples
//!
//! ```no_run
//! use qce::{AttackFlow, FlowConfig};
//! use qce_data::SynthCifar;
//!
//! # fn main() -> Result<(), qce::FlowError> {
//! let data = SynthCifar::new(16).generate(600, 1)?;
//! let outcome = AttackFlow::new(FlowConfig::small()).run(&data)?;
//! println!(
//!     "accuracy {:.2}%, {} images recognized",
//!     100.0 * outcome.final_report().accuracy,
//!     outcome.final_report().recognized_count(),
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod config;
mod error;
mod flow;
mod report;
mod step;
mod store_io;

pub mod audit;
pub mod defense;
pub mod faults;

pub use config::{
    Architecture, BandRule, EncodingChannel, FlowConfig, Grouping, LambdaSchedule, QuantConfig,
    QuantMethod,
};
pub use error::FlowError;
pub use faults::{FaultError, FaultKind, FaultPlan};
pub use flow::{AttackFlow, FlowOutcome, QuantizedRelease, TrainedAttack};
pub use qce_attack::correlation::SignConvention;
pub use qce_attack::ImageStatus;
pub use report::{
    FaultedImage, FaultedReport, ImageReport, RobustnessPoint, RobustnessReport, StageReport,
};
pub use step::{FlowMachine, StageStep, StepEvent};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FlowError>;
