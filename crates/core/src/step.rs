//! Resumable stage-step execution of the attack flow.
//!
//! [`AttackFlow::run`](crate::AttackFlow::run) executes the whole
//! pipeline in one call, which is the right shape for a batch
//! experiment but the wrong one for a scheduler: a serving daemon (or
//! the sweep orchestrator) needs to interleave *many* flows, observe
//! per-stage progress, and stop a flow between stages without losing
//! the work already done. This module provides that shape:
//! [`FlowMachine`] is the flow decomposed into a state machine of
//! [`StageStep`]s, advanced one stage at a time by
//! [`FlowMachine::advance`].
//!
//! # The state machine
//!
//! ```text
//! Select -> Train -> EvaluateFloat -> Quantize -> EvaluateQuantized -> Defend -> Finish -> Done
//!                                       |   (no quant: both skip)        ^  (no plan: skips)
//!                                       +------------------------------>-+
//! ```
//!
//! Every step is a checkpoint point: with a stage cache attached, the
//! completed step's artifact is on disk before `advance` returns, so a
//! machine that is dropped (cancelled) between steps leaves a resumable
//! prefix — a fresh machine for the same (config, dataset, seed) loads
//! the completed stages as cache hits and recomputes only the rest.
//! Because each step is deterministic, driving the machine step by step
//! is bit-for-bit identical to [`AttackFlow::run`](crate::AttackFlow::run)
//! — which is implemented as exactly that loop.

use qce_attack::ecc::Ecc;
use qce_attack::statsign::{StatSignLayout, StatSignRegularizer};
use qce_attack::{CorrelationRegularizer, EncodingLayout, GroupSpec};
use qce_data::{select, Dataset, Image};
use qce_nn::models::ResNetLite;
use qce_nn::{LrSchedule, Network, Regularizer, TrainConfig, Trainer};
use qce_store::{persist, section_kind, Artifact, CacheKey, StageCache};
use qce_telemetry::{RunManifest, StageStat};
use qce_tensor::par::Pool;
use qce_tensor::Tensor;
use std::time::Instant;

use crate::flow::{
    alloc_mark, decode_selection, load_trained_state, log_cache_hit, push_alloc_metrics,
    store_stage, FlowOutcome, TrainedAttack,
};
use crate::store_io;
use crate::{
    Architecture, BandRule, EncodingChannel, FlowConfig, FlowError, Grouping, Result, StageReport,
};

/// One stage of the resumable flow state machine.
///
/// The variants are ordered; [`FlowMachine::advance`] executes the
/// current one and moves to the next. `Quantize`/`EvaluateQuantized`
/// skip when the config carries no quantization, `Defend` skips without
/// a [`DefensePlan`](qce_defense::DefensePlan) — a skipped step still
/// produces a [`StepEvent`] so schedulers see a fixed-length timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageStep {
    /// Train/validation split, model construction, target selection and
    /// the encoding plan (checkpoint: `select`).
    Select,
    /// Main training with the (possibly malicious) regularizer
    /// (checkpoint: `train`).
    Train,
    /// Evaluation of the float model (checkpoint: `evaluate:uncompressed`).
    EvaluateFloat,
    /// Quantization + fine-tuning per the config (checkpoint: `quantize`).
    Quantize,
    /// Evaluation of the quantized release (checkpoint:
    /// `evaluate:<method> <bits>-bit`).
    EvaluateQuantized,
    /// The data holder's release-time countermeasures (checkpoint:
    /// `defend`).
    Defend,
    /// Manifest assembly and emission; builds the [`FlowOutcome`].
    Finish,
    /// Terminal state: [`FlowMachine::into_outcome`] is ready.
    Done,
}

impl StageStep {
    /// Stable machine-readable name (used by the serve wire protocol).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StageStep::Select => "select",
            StageStep::Train => "train",
            StageStep::EvaluateFloat => "evaluate_float",
            StageStep::Quantize => "quantize",
            StageStep::EvaluateQuantized => "evaluate_quantized",
            StageStep::Defend => "defend",
            StageStep::Finish => "finish",
            StageStep::Done => "done",
        }
    }

    fn next(self) -> StageStep {
        match self {
            StageStep::Select => StageStep::Train,
            StageStep::Train => StageStep::EvaluateFloat,
            StageStep::EvaluateFloat => StageStep::Quantize,
            StageStep::Quantize => StageStep::EvaluateQuantized,
            StageStep::EvaluateQuantized => StageStep::Defend,
            StageStep::Defend => StageStep::Finish,
            StageStep::Finish | StageStep::Done => StageStep::Done,
        }
    }
}

impl std::fmt::Display for StageStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What one [`FlowMachine::advance`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct StepEvent {
    /// The step that just completed (or was skipped).
    pub step: StageStep,
    /// Human-readable stage label, e.g. `flow.quantize:KMeans 4-bit`.
    pub label: String,
    /// Wall time of the step in milliseconds (observational).
    pub wall_ms: f64,
    /// `true` when the step did not apply to this configuration (no
    /// quantization, no defense plan) and was passed over.
    pub skipped: bool,
}

/// State carried from [`StageStep::Select`] to [`StageStep::Train`]: the
/// initialized network, the encoding plan and its regularizer, and the
/// tensorized splits.
struct SelectedState {
    net: Network,
    layout: Option<EncodingLayout>,
    statsign: Option<StatSignLayout>,
    selection_indices: Vec<usize>,
    targets: Vec<Image>,
    target_labels: Vec<usize>,
    corr_reg: Option<CorrelationRegularizer>,
    stat_reg: Option<StatSignRegularizer>,
    train_x: Tensor,
    train_y: Vec<usize>,
    test_x: Tensor,
    test_y: Vec<usize>,
    stage_stats: Vec<StageStat>,
}

/// The attack flow as a resumable state machine (see the module docs).
///
/// Owns its dataset so a machine can be queued, moved to a worker
/// thread, and driven independently of the submitting context. Create
/// one with [`AttackFlow::machine`](crate::AttackFlow::machine).
pub struct FlowMachine {
    config: FlowConfig,
    dataset: Option<Dataset>,
    cache: Option<StageCache>,
    cache_hash: u64,
    level: qce_telemetry::Level,
    step: StageStep,
    selected: Option<SelectedState>,
    trained: Option<TrainedAttack>,
    pre_quant: Option<StageReport>,
    post_quant: Option<StageReport>,
    compression_ratio: Option<f64>,
    post_defense: Option<crate::FaultedReport>,
    outcome: Option<FlowOutcome>,
}

impl std::fmt::Debug for FlowMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowMachine")
            .field("step", &self.step)
            .field("cache_hash", &format_args!("{:#018x}", self.cache_hash))
            .finish()
    }
}

impl FlowMachine {
    /// Builds a machine for `config` over `dataset`, validating the
    /// configuration and dataset geometry up front — a scheduler learns
    /// about an impossible job at submit time, not after queueing it.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] for configuration or geometry
    /// problems (same checks [`AttackFlow::run`](crate::AttackFlow::run)
    /// applies).
    pub fn new(
        config: FlowConfig,
        cache: Option<StageCache>,
        dataset: Dataset,
    ) -> Result<FlowMachine> {
        config.validate()?;
        let first = dataset.images().first().ok_or(FlowError::InvalidConfig {
            reason: "empty dataset".to_string(),
        })?;
        if first.height() != first.width() {
            return Err(FlowError::InvalidConfig {
                reason: "flow expects square images".to_string(),
            });
        }
        let cache_hash = store_io::flow_cache_hash(&config, &dataset);
        let level = if config.verbose {
            qce_telemetry::Level::Progress
        } else {
            qce_telemetry::Level::Debug
        };
        Ok(FlowMachine {
            config,
            dataset: Some(dataset),
            cache,
            cache_hash,
            level,
            step: StageStep::Select,
            selected: None,
            trained: None,
            pre_quant: None,
            post_quant: None,
            compression_ratio: None,
            post_defense: None,
            outcome: None,
        })
    }

    /// The step the next [`FlowMachine::advance`] call will execute.
    #[must_use]
    pub fn step(&self) -> StageStep {
        self.step
    }

    /// Whether the machine has reached [`StageStep::Done`].
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.step == StageStep::Done
    }

    /// The flow configuration this machine executes.
    #[must_use]
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The stage-cache key hash derived from the configuration and the
    /// dataset — the `config_hash` component of every [`CacheKey`] this
    /// machine reads or writes. Callers that evaluate derived artifacts
    /// through the same cache (e.g. a fault-injected release) fold their
    /// extra axes into this value.
    #[must_use]
    pub fn cache_hash(&self) -> u64 {
        self.cache_hash
    }

    /// Executes the current step and moves to the next one.
    ///
    /// With a stage cache attached, the completed step's checkpoint is
    /// on disk before this returns — dropping the machine afterwards
    /// loses no work. Calling `advance` on a finished machine returns a
    /// skipped [`StepEvent`] for [`StageStep::Done`].
    ///
    /// # Errors
    ///
    /// Propagates the failing stage's [`FlowError`]; the machine stays
    /// on the failed step (a retry re-runs it).
    pub fn advance(&mut self) -> Result<StepEvent> {
        let _flush = qce_telemetry::FlushGuard::new();
        let step = self.step;
        let started = Instant::now();
        let (label, skipped) = match step {
            StageStep::Select => (self.run_select()?, false),
            StageStep::Train => (self.run_train()?, false),
            StageStep::EvaluateFloat => (self.run_evaluate_float()?, false),
            StageStep::Quantize => match self.run_quantize()? {
                Some(label) => (label, false),
                None => ("flow.quantize".to_string(), true),
            },
            StageStep::EvaluateQuantized => match self.run_evaluate_quantized()? {
                Some(label) => (label, false),
                None => ("flow.evaluate:quantized".to_string(), true),
            },
            StageStep::Defend => match self.run_defend()? {
                Some(label) => (label, false),
                None => ("flow.defend".to_string(), true),
            },
            StageStep::Finish => (self.run_finish()?, false),
            StageStep::Done => ("done".to_string(), true),
        };
        self.step = step.next();
        Ok(StepEvent {
            step,
            label,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            skipped,
        })
    }

    /// Consumes the machine after [`StageStep::Train`] completed,
    /// returning the [`TrainedAttack`] — the resumable equivalent of
    /// [`AttackFlow::train`](crate::AttackFlow::train).
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] if training has not completed yet or
    /// the machine already advanced past the point where the trained
    /// state is held.
    pub fn into_trained(mut self) -> Result<TrainedAttack> {
        self.trained.take().ok_or_else(|| FlowError::InvalidConfig {
            reason: format!(
                "flow machine holds no trained state at step {:?}",
                self.step
            ),
        })
    }

    /// Consumes the finished machine and returns the [`FlowOutcome`].
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] unless the machine reached
    /// [`StageStep::Done`].
    pub fn into_outcome(mut self) -> Result<FlowOutcome> {
        self.outcome.take().ok_or_else(|| FlowError::InvalidConfig {
            reason: format!("flow machine is not done (at step {:?})", self.step),
        })
    }

    /// Stage 0+1: split, model construction, target selection, encoding
    /// plan.
    fn run_select(&mut self) -> Result<String> {
        let cfg = &self.config;
        let dataset = self
            .dataset
            .take()
            .ok_or_else(|| FlowError::InvalidConfig {
                reason: "select stage already consumed the dataset".to_string(),
            })?;
        qce_telemetry::log_line(
            self.level,
            &format!(
                "[flow] compute backend: {} thread(s) (override with QCE_THREADS; \
                 results are identical for any thread count)",
                Pool::global().threads()
            ),
        );
        let first = dataset.images().first().ok_or(FlowError::InvalidConfig {
            reason: "empty dataset".to_string(),
        })?;

        let mut stage_stats = Vec::new();
        let t_select = Instant::now();
        let a_select = alloc_mark();
        let select_span = qce_telemetry::span!("flow.select", seed = cfg.seed);

        // Stage 0: the data holder's train/validation split.
        let (train, test) = dataset.split(cfg.train_fraction, cfg.seed)?;
        let train_x = train.to_tensor();
        let train_y = train.labels().to_vec();
        let test_x = test.to_tensor();
        let test_y = test.labels().to_vec();

        // Model.
        let net = match cfg.arch {
            Architecture::ResNetLite => ResNetLite::builder()
                .input(first.channels(), first.height())
                .classes(dataset.classes())
                .stage_channels(&cfg.stage_channels)
                .blocks_per_stage(cfg.blocks_per_stage)
                .build(cfg.seed.wrapping_add(1))?,
            Architecture::ConvNet => qce_nn::models::ConvNet::builder()
                .input(first.channels(), first.height())
                .classes(dataset.classes())
                .stage_channels(&cfg.stage_channels)
                .build(cfg.seed.wrapping_add(1))?,
        };
        let total_slots = net.weight_slots().len();

        // Stage 1: grouping + data pre-processing + encoding plan.
        let scale = cfg.lambda_scale;
        let specs = match cfg.grouping {
            Grouping::Benign => Vec::new(),
            Grouping::Uniform(l) => GroupSpec::uniform(total_slots, l * scale),
            Grouping::LayerWise(ls) => {
                GroupSpec::paper_thirds(total_slots, [ls[0] * scale, ls[1] * scale, ls[2] * scale])
            }
        };
        let mut layout = None;
        let mut statsign = None;
        let mut selection_indices = Vec::new();
        let mut targets: Vec<Image> = Vec::new();
        let mut target_labels = Vec::new();
        let mut corr_reg: Option<CorrelationRegularizer> = None;
        let mut stat_reg: Option<StatSignRegularizer> = None;

        if cfg.grouping.is_attack() {
            let slots = net.weight_slots();
            let image_pixels = first.num_pixels();
            // Both channels express their capacity in pixels so the band
            // selection below stays channel-agnostic: the correlation
            // channel spends one weight per pixel, the statsign channel
            // spends whole image blocks of group-mean sign bits.
            let capacity_pixels: usize = match cfg.channel {
                EncodingChannel::Correlation => specs
                    .iter()
                    .filter(|s| s.lambda > 0.0)
                    .flat_map(|s| s.ordinals.iter())
                    .map(|&o| slots[o].len)
                    .sum(),
                EncodingChannel::StatSign { .. } => {
                    StatSignLayout::capacity_images(&net, image_pixels, &Ecc::Hamming74)?
                        * image_pixels
                }
            };
            let select_key = CacheKey::new(self.cache_hash, cfg.seed, "select");
            let cached_indices = self
                .cache
                .as_ref()
                .and_then(|c| c.load(&select_key))
                .and_then(|artifact| decode_selection(&artifact, train.len(), &select_key.stage));
            selection_indices = match cached_indices {
                Some(indices) => {
                    log_cache_hit(self.level, &select_key.stage);
                    indices
                }
                None => {
                    let indices = match cfg.band {
                        BandRule::Auto { width } => {
                            select::select_targets(
                                &train,
                                width,
                                capacity_pixels,
                                cfg.seed.wrapping_add(2),
                            )?
                            .indices
                        }
                        BandRule::Explicit { min, max } => {
                            let band = select::StdBand::new(min, max)?;
                            select::select_targets_in_band(
                                &train,
                                band,
                                capacity_pixels,
                                cfg.seed.wrapping_add(2),
                            )?
                            .indices
                        }
                        BandRule::FirstN => {
                            let n = (capacity_pixels / image_pixels).min(train.len());
                            if n == 0 {
                                return Err(FlowError::InvalidConfig {
                                    reason: "no encoding capacity for even one image".to_string(),
                                });
                            }
                            (0..n).collect()
                        }
                    };
                    if let Some(c) = &self.cache {
                        let mut artifact = Artifact::new();
                        artifact.push(
                            section_kind::INDEX_LIST,
                            persist::indices_to_bytes(&indices),
                        );
                        store_stage(c, &select_key, &artifact);
                    }
                    indices
                }
            };
            targets = selection_indices
                .iter()
                .map(|&i| train.image(i).clone())
                .collect();
            target_labels = selection_indices.iter().map(|&i| train.label(i)).collect();
            match cfg.channel {
                EncodingChannel::Correlation => {
                    let planned = EncodingLayout::plan(&net, &specs, &targets)?;
                    // Warmup lets task features form before the encoding
                    // pressure peaks (the final epoch still runs at full
                    // λ); the constant schedule applies full pressure
                    // from epoch 0.
                    let reg = CorrelationRegularizer::new(planned.clone(), cfg.sign);
                    corr_reg = Some(match cfg.lambda_schedule {
                        crate::LambdaSchedule::Warmup => reg.with_warmup(),
                        crate::LambdaSchedule::Constant => reg,
                    });
                    layout = Some(planned);
                }
                EncodingChannel::StatSign { lambda } => {
                    let planned = StatSignLayout::plan(&net, &targets, Ecc::Hamming74)?;
                    stat_reg = Some(StatSignRegularizer::new(&planned, lambda)?);
                    statsign = Some(planned);
                }
            }
        }
        drop(select_span);
        let mut select_metrics = vec![
            ("select.targets".to_string(), targets.len() as f64),
            ("select.train_images".to_string(), train.len() as f64),
            ("select.test_images".to_string(), test.len() as f64),
        ];
        push_alloc_metrics(&mut select_metrics, a_select);
        stage_stats.push(StageStat {
            name: "flow.select".to_string(),
            wall_ms: t_select.elapsed().as_secs_f64() * 1e3,
            metrics: select_metrics,
        });

        self.selected = Some(SelectedState {
            net,
            layout,
            statsign,
            selection_indices,
            targets,
            target_labels,
            corr_reg,
            stat_reg,
            train_x,
            train_y,
            test_x,
            test_y,
            stage_stats,
        });
        Ok("flow.select".to_string())
    }

    /// Stage 2: training with the (possibly malicious) regularizer.
    fn run_train(&mut self) -> Result<String> {
        let cfg = &self.config;
        let mut sel = self
            .selected
            .take()
            .ok_or_else(|| FlowError::InvalidConfig {
                reason: "train stage needs the select stage's state".to_string(),
            })?;
        let t_train = Instant::now();
        let a_train = alloc_mark();
        let train_span = qce_telemetry::span!("flow.train", epochs = cfg.epochs);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            momentum: 0.9,
            weight_decay: 5e-4,
            schedule: LrSchedule::Cosine {
                total_epochs: cfg.epochs,
                min_lr: cfg.lr * 0.05,
            },
            optimizer: qce_nn::OptimizerKind::Sgd,
            shuffle_seed: cfg.seed.wrapping_add(3),
            guard: qce_nn::DivergenceGuard::default(),
            verbose: cfg.verbose,
        });
        let train_key = CacheKey::new(self.cache_hash, cfg.seed, "train");
        let mut cached_training = None;
        if let Some(c) = &self.cache {
            if let Some(artifact) = c.load(&train_key) {
                match load_trained_state(&mut sel.net, &artifact) {
                    Ok(history) => {
                        log_cache_hit(self.level, &train_key.stage);
                        cached_training = Some(history);
                    }
                    Err(e) => crate::flow::note_payload_corrupt(&train_key.stage, &e),
                }
            }
        }
        let training = match cached_training {
            Some(history) => history,
            None => {
                let reg: Option<&mut dyn Regularizer> =
                    match (sel.corr_reg.as_mut(), sel.stat_reg.as_mut()) {
                        (Some(r), _) => Some(r),
                        (None, Some(r)) => Some(r),
                        (None, None) => None,
                    };
                let history = trainer.fit(&mut sel.net, &sel.train_x, &sel.train_y, reg)?;
                if let Some(c) = &self.cache {
                    match persist::network_to_bytes(&sel.net) {
                        Ok(net_bytes) => {
                            let mut artifact = Artifact::new();
                            artifact.push(section_kind::NETWORK, net_bytes);
                            artifact.push(
                                section_kind::TRAINING_HISTORY,
                                persist::history_to_bytes(&history),
                            );
                            store_stage(c, &train_key, &artifact);
                        }
                        Err(e) => qce_telemetry::debug!(
                            "[flow] skipping train checkpoint (serialization failed): {e}"
                        ),
                    }
                }
                history
            }
        };
        drop(train_span);
        let mut train_metrics =
            qce_telemetry::snapshot().flatten_with_prefix(&["train.", "attack."]);
        push_alloc_metrics(&mut train_metrics, a_train);
        sel.stage_stats.push(StageStat {
            name: "flow.train".to_string(),
            wall_ms: t_train.elapsed().as_secs_f64() * 1e3,
            metrics: train_metrics,
        });

        let float_state = sel.net.snapshot();
        self.trained = Some(TrainedAttack {
            config: cfg.clone(),
            network: sel.net,
            float_state,
            layout: sel.layout,
            statsign: sel.statsign,
            selection_indices: sel.selection_indices,
            targets: sel.targets,
            target_labels: sel.target_labels,
            training,
            train_x: sel.train_x,
            train_y: sel.train_y,
            test_x: sel.test_x,
            test_y: sel.test_y,
            stage_stats: sel.stage_stats,
        });
        Ok("flow.train".to_string())
    }

    fn trained_mut(&mut self) -> Result<&mut TrainedAttack> {
        self.trained
            .as_mut()
            .ok_or_else(|| FlowError::InvalidConfig {
                reason: "flow machine has no trained state for this step".to_string(),
            })
    }

    fn run_evaluate_float(&mut self) -> Result<String> {
        let cache = self.cache.clone();
        let cache_hash = self.cache_hash;
        let level = self.level;
        let trained = self.trained_mut()?;
        trained.restore_float()?;
        let report = trained.evaluate_cached(
            "uncompressed".to_string(),
            cache.as_ref(),
            cache_hash,
            level,
        )?;
        self.pre_quant = Some(report);
        Ok("flow.evaluate:uncompressed".to_string())
    }

    fn run_quantize(&mut self) -> Result<Option<String>> {
        let Some(qcfg) = self.config.quant else {
            return Ok(None);
        };
        let cache = self.cache.clone();
        let cache_hash = self.cache_hash;
        let level = self.level;
        let trained = self.trained_mut()?;
        // Quantize once and leave the network in its released
        // (quantized) state; the next step evaluates that state in place.
        let ratio = trained.quantize_cached(qcfg, cache.as_ref(), cache_hash, level)?;
        self.compression_ratio = Some(ratio);
        Ok(Some(format!(
            "flow.quantize:{:?} {}-bit",
            qcfg.method, qcfg.bits
        )))
    }

    fn run_evaluate_quantized(&mut self) -> Result<Option<String>> {
        let Some(qcfg) = self.config.quant else {
            return Ok(None);
        };
        let cache = self.cache.clone();
        let cache_hash = self.cache_hash;
        let level = self.level;
        let label = format!("{:?} {}-bit", qcfg.method, qcfg.bits);
        let trained = self.trained_mut()?;
        let report = trained.evaluate_cached(label.clone(), cache.as_ref(), cache_hash, level)?;
        self.post_quant = Some(report);
        Ok(Some(format!("flow.evaluate:{label}")))
    }

    fn run_defend(&mut self) -> Result<Option<String>> {
        // The data holder's release-time countermeasures run on whatever
        // state would otherwise be published (quantized if quantization
        // ran, float otherwise) and *stay applied*: the outcome's network
        // is the defended release.
        let Some(plan) = self.config.defense.clone() else {
            return Ok(None);
        };
        let cache = self.cache.clone();
        let cache_hash = self.cache_hash;
        let level = self.level;
        let trained = self.trained_mut()?;
        let report = trained.defend_cached(&plan, cache.as_ref(), cache_hash, level)?;
        let label = format!("flow.defend:{}", report.label);
        self.post_defense = Some(report);
        Ok(Some(label))
    }

    /// Manifest assembly + emission, then the outcome (same ordering the
    /// monolithic `run` used, so manifests and goldens are unchanged).
    fn run_finish(&mut self) -> Result<String> {
        let trained = self
            .trained
            .take()
            .ok_or_else(|| FlowError::InvalidConfig {
                reason: "finish step needs the trained state".to_string(),
            })?;
        let pre_quant = self
            .pre_quant
            .take()
            .ok_or_else(|| FlowError::InvalidConfig {
                reason: "finish step needs the float evaluation".to_string(),
            })?;
        let post_quant = self.post_quant.take();
        let post_defense = self.post_defense.take();
        let mut stages = trained.stage_stats.clone();
        stages.push(StageStat {
            name: format!("flow.evaluate:{}", pre_quant.label),
            wall_ms: pre_quant.wall_ms,
            metrics: pre_quant.metrics.clone(),
        });
        if let Some(post) = &post_quant {
            stages.push(StageStat {
                name: format!("flow.evaluate:{}", post.label),
                wall_ms: post.wall_ms,
                metrics: post.metrics.clone(),
            });
        }
        // Observational memory gauges ride along in the manifest's
        // final metrics snapshot (never in gated counters).
        if qce_telemetry::alloc::tracking_enabled() {
            let a = qce_telemetry::alloc::stats();
            qce_telemetry::gauge("alloc.allocated_bytes").set(a.allocated_bytes as f64);
            qce_telemetry::gauge("alloc.peak_bytes").set(a.peak_bytes as f64);
            qce_telemetry::gauge("alloc.live_bytes").set(a.live_bytes as f64);
        }
        if let Some(rss) = qce_telemetry::alloc::peak_rss_bytes() {
            qce_telemetry::gauge("proc.peak_rss_bytes").set(rss as f64);
        }
        let manifest = RunManifest {
            config_hash: qce_telemetry::fnv1a(&format!("{:?}", self.config)),
            seed: self.config.seed,
            threads: Pool::global().threads(),
            stages,
            metrics: qce_telemetry::snapshot(),
        };
        qce_telemetry::emit_manifest(&manifest);
        self.outcome = Some(FlowOutcome {
            network: trained.network,
            layout: trained.layout,
            selection_indices: trained.selection_indices,
            targets: trained.targets,
            target_labels: trained.target_labels,
            pre_quant,
            post_quant,
            post_defense,
            training: trained.training,
            compression_ratio: self.compression_ratio,
            manifest,
        });
        Ok("flow.finish".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackFlow, QuantMethod};
    use qce_data::SynthCifar;

    fn tiny_data() -> Dataset {
        SynthCifar::new(8).classes(4).generate(160, 5).unwrap()
    }

    fn quant_cfg() -> FlowConfig {
        FlowConfig {
            grouping: Grouping::Uniform(5.0),
            band: BandRule::FirstN,
            quant: Some(crate::QuantConfig::new(QuantMethod::Linear, 4)),
            epochs: 1,
            ..FlowConfig::tiny()
        }
    }

    fn temp_cache(tag: &str) -> StageCache {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        StageCache::at(std::env::temp_dir().join(format!(
            "qce-step-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )))
    }

    #[test]
    fn machine_walks_the_full_step_sequence() {
        let data = tiny_data();
        let mut m = AttackFlow::new(quant_cfg()).machine(&data).unwrap();
        let mut steps = Vec::new();
        while !m.is_done() {
            let ev = m.advance().unwrap();
            steps.push((ev.step, ev.skipped));
        }
        assert_eq!(
            steps,
            vec![
                (StageStep::Select, false),
                (StageStep::Train, false),
                (StageStep::EvaluateFloat, false),
                (StageStep::Quantize, false),
                (StageStep::EvaluateQuantized, false),
                (StageStep::Defend, true),
                (StageStep::Finish, false),
            ]
        );
        let out = m.into_outcome().unwrap();
        assert!(out.post_quant.is_some());
        assert!(out.compression_ratio.is_some());
    }

    #[test]
    fn quantize_steps_skip_without_quant_config() {
        let cfg = FlowConfig {
            quant: None,
            ..quant_cfg()
        };
        let data = tiny_data();
        let mut m = AttackFlow::new(cfg).machine(&data).unwrap();
        let mut skipped = Vec::new();
        while !m.is_done() {
            let ev = m.advance().unwrap();
            if ev.skipped {
                skipped.push(ev.step);
            }
        }
        assert_eq!(
            skipped,
            vec![
                StageStep::Quantize,
                StageStep::EvaluateQuantized,
                StageStep::Defend
            ]
        );
        let out = m.into_outcome().unwrap();
        assert!(out.post_quant.is_none());
    }

    #[test]
    fn machine_outcome_matches_monolithic_run() {
        let data = tiny_data();
        let via_run = AttackFlow::new(quant_cfg()).run(&data).unwrap();
        let mut m = AttackFlow::new(quant_cfg()).machine(&data).unwrap();
        while !m.is_done() {
            m.advance().unwrap();
        }
        let via_machine = m.into_outcome().unwrap();
        assert_eq!(via_run.artifact_digests(), via_machine.artifact_digests());
        assert_eq!(via_run.pre_quant, via_machine.pre_quant);
        assert_eq!(via_run.post_quant, via_machine.post_quant);
    }

    #[test]
    fn into_trained_after_two_steps_matches_train() {
        let data = tiny_data();
        let mut m = AttackFlow::new(quant_cfg()).machine(&data).unwrap();
        m.advance().unwrap();
        m.advance().unwrap();
        assert_eq!(m.step(), StageStep::EvaluateFloat);
        let trained = m.into_trained().unwrap();
        let reference = AttackFlow::new(quant_cfg()).train(&data).unwrap();
        assert_eq!(trained.artifact_digests(), reference.artifact_digests());
    }

    #[test]
    fn dropped_machine_leaves_a_resumable_checkpoint() {
        let data = tiny_data();
        let cache = temp_cache("resume");
        let flow = AttackFlow::new(quant_cfg()).with_cache(cache.clone());

        // Simulated cancellation: run select + train, then drop.
        let mut m = flow.machine(&data).unwrap();
        m.advance().unwrap();
        m.advance().unwrap();
        drop(m);

        // The resumed machine must hit the cached select + train stages
        // and produce the exact uncached result.
        let hit0 = qce_telemetry::counter("store.hit").get();
        let mut resumed = flow.machine(&data).unwrap();
        while !resumed.is_done() {
            resumed.advance().unwrap();
        }
        let resumed_out = resumed.into_outcome().unwrap();
        assert!(
            qce_telemetry::counter("store.hit").get() - hit0 >= 2,
            "select + train checkpoints should hit"
        );
        let cold = AttackFlow::new(quant_cfg()).run(&data).unwrap();
        assert_eq!(cold.artifact_digests(), resumed_out.artifact_digests());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn into_outcome_before_done_is_an_error() {
        let data = tiny_data();
        let mut m = AttackFlow::new(quant_cfg()).machine(&data).unwrap();
        m.advance().unwrap();
        assert!(m.into_outcome().is_err());
        let m2 = AttackFlow::new(quant_cfg()).machine(&data).unwrap();
        assert!(m2.into_trained().is_err());
    }

    #[test]
    fn step_names_are_stable() {
        let all = [
            StageStep::Select,
            StageStep::Train,
            StageStep::EvaluateFloat,
            StageStep::Quantize,
            StageStep::EvaluateQuantized,
            StageStep::Defend,
            StageStep::Finish,
            StageStep::Done,
        ];
        let names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "select",
                "train",
                "evaluate_float",
                "quantize",
                "evaluate_quantized",
                "defend",
                "finish",
                "done"
            ]
        );
        // The chain terminates at Done.
        let mut s = StageStep::Select;
        for _ in 0..16 {
            s = s.next();
        }
        assert_eq!(s, StageStep::Done);
    }
}
