//! `qce-sweep` — the declarative sweep orchestrator.
//!
//! The paper's core result is a *trade-off surface* — extraction quality
//! vs. task accuracy vs. bit width vs. correlation pressure — but a
//! single scenario probes one point of it. This crate turns a committed
//! JSON **grid spec** (explicit axis lists, cross-product expansion)
//! into hundreds of [`FlowMachine`](qce::FlowMachine) flows, runs them
//! on a worker pool built from the [`qce_serve::queue`] scheduling
//! primitives, and folds the per-cell results into a [`SweepReport`]
//! with a Pareto frontier over (accuracy, MAPE, recovered images, bit
//! width).
//!
//! Three properties make sweeps practical at grid scale:
//!
//! * **Incremental.** Every cell runs through the
//!   [`StageCache`](qce_store::StageCache): stage checkpoints are shared
//!   between cells that agree on a prefix (e.g. fault variants of one
//!   trained model), finished cells are memoized whole under their
//!   content-addressed cell key, and a re-run after editing one axis
//!   value recomputes only the new cells.
//! * **Resumable.** Killing a run between cells loses at most the cells
//!   in flight; a re-run replays finished cells from the cache and
//!   produces a byte-identical merged report.
//! * **Shardable.** `--shard i/n` partitions cells by
//!   `cell_key % n` — a pure function of cell *content*, not position —
//!   so shards can run in separate processes (or on separate machines
//!   sharing nothing but the grid spec) and their partial files merge
//!   deterministically into the same report a single process produces.
//!
//! See `DESIGN.md` §5k for the grid-spec schema, the shard/merge
//! protocol and the Pareto rules, and `OPERATIONS.md` for a
//! multi-process walkthrough.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod executor;
mod grid;
mod report;

pub use executor::{run_cells, CellRun, ExecOptions};
pub use grid::{parse_grid, Cell, Grid, AXIS_NAMES, MAX_CELLS_CEILING, MAX_CELLS_DEFAULT};
pub use report::{
    merge_partials, partial_json, CellMetrics, CellResult, SweepReport, PARTIAL_FORMAT,
    REPORT_FORMAT,
};

/// A sweep failure: spec problems, flow failures, or I/O.
#[derive(Debug)]
pub enum SweepError {
    /// The grid spec (or a partial/report document) is malformed.
    Spec(String),
    /// A cell's flow failed while executing.
    Flow(String),
    /// Filesystem trouble reading or writing sweep documents.
    Io(String),
}

impl SweepError {
    /// Shorthand for a [`SweepError::Spec`].
    pub fn spec(message: impl Into<String>) -> Self {
        SweepError::Spec(message.into())
    }

    /// Shorthand for a [`SweepError::Io`] with path context.
    pub fn io(context: impl Into<String>, e: std::io::Error) -> Self {
        SweepError::Io(format!("{}: {e}", context.into()))
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Spec(m) => write!(f, "spec error: {m}"),
            SweepError::Flow(m) => write!(f, "flow error: {m}"),
            SweepError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<qce_harness::HarnessError> for SweepError {
    fn from(e: qce_harness::HarnessError) -> Self {
        SweepError::Spec(e.to_string())
    }
}

impl From<qce::FlowError> for SweepError {
    fn from(e: qce::FlowError) -> Self {
        SweepError::Flow(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SweepError>;
