//! Runs expanded cells on a worker pool, memoizing finished cells in
//! the stage cache.
//!
//! Each cell is one [`FlowMachine`](qce::FlowMachine) drive. Two cache
//! layers make re-runs cheap:
//!
//! 1. **Stage checkpoints** (inside the machine): cells that share a
//!    config prefix — e.g. four fault variants of one trained model —
//!    replay `select`/`train`/`evaluate` checkpoints instead of
//!    recomputing them.
//! 2. **Whole-cell memoization** (here): a finished cell's metrics are
//!    stored under its content-addressed [`Cell::key`]; a warm re-run
//!    answers from that entry without even synthesizing the dataset,
//!    so its `store.write` delta is zero.
//!
//! The pool itself is a [`WorkQueue`](qce_serve::queue::WorkQueue) of
//! cell positions drained by a fixed set of threads. Per-cell metrics
//! come only from flow reports — never from process-global telemetry
//! counters, which concurrent cells would interleave — so results are
//! bit-identical at any worker count.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use qce::{AttackFlow, FaultedReport, FlowOutcome, StageReport};
use qce_harness::RECOVERY_MAPE_CEILING;
use qce_serve::queue::WorkQueue;
use qce_store::codec::{ByteReader, ByteWriter};
use qce_store::{section_kind, Artifact, CacheKey, StageCache};

use crate::grid::Cell;
use crate::report::{CellMetrics, CellResult};
use crate::{Result, SweepError};

/// Artifact section tag for a memoized cell result (downstream range;
/// the core crate claims `BASE` and `BASE + 1`).
const CELL_RESULT: u16 = section_kind::DOWNSTREAM_BASE + 0x10;

/// Cache stage label for memoized cell results.
const CELL_STAGE: &str = "sweep-cell";

/// Execution knobs for [`run_cells`].
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Worker threads; `0` means one.
    pub workers: usize,
    /// Stage cache shared by every cell (checkpoints + cell
    /// memoization). `None` runs everything cold and unmemoized.
    pub cache: Option<StageCache>,
    /// Run only the first `n` queued cells (in expansion order) and
    /// skip the rest — the deterministic stand-in for a mid-run kill.
    pub limit: Option<usize>,
}

/// One executed (or replayed) cell.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The cell's metrics plus identity, ready for a report partial.
    pub result: CellResult,
    /// Wall time this process spent on the cell, milliseconds.
    pub wall_ms: f64,
    /// Whether the result came from the whole-cell cache entry.
    pub cached: bool,
}

/// Runs `cells` across `opts.workers` threads and returns their runs in
/// input order.
///
/// The first failing cell aborts the run: the queue is closed, workers
/// discard the remaining cells, and the error is returned. With
/// `opts.limit`, only the first `n` cells are attempted and the result
/// covers exactly those (a resumed run replays them from cache and
/// continues).
///
/// # Errors
///
/// The first cell failure ([`SweepError::Flow`] or a dataset/spec
/// error), verbatim.
pub fn run_cells(cells: &[Cell], opts: &ExecOptions) -> Result<Vec<CellRun>> {
    let take = opts.limit.unwrap_or(cells.len()).min(cells.len());
    let queue: WorkQueue<usize> = WorkQueue::new();
    for position in 0..take {
        queue.push(0, position);
    }
    queue.close();

    let slots: Mutex<Vec<Option<CellRun>>> = Mutex::new(vec![None; take]);
    let failure: Mutex<Option<SweepError>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let workers = opts.workers.max(1).min(take.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(position) = queue.pop() {
                    if abort.load(Ordering::SeqCst) {
                        continue;
                    }
                    match run_cell(&cells[position], opts) {
                        Ok(run) => {
                            slots.lock().expect("sweep results")[position] = Some(run);
                        }
                        Err(e) => {
                            abort.store(true, Ordering::SeqCst);
                            let mut failure = failure.lock().expect("sweep failure");
                            failure.get_or_insert(e);
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("sweep failure") {
        return Err(e);
    }
    let runs: Vec<CellRun> = slots
        .into_inner()
        .expect("sweep results")
        .into_iter()
        .flatten()
        .collect();
    debug_assert_eq!(runs.len(), take);
    Ok(runs)
}

/// Executes one cell: whole-cell cache probe, then a full flow drive.
fn run_cell(cell: &Cell, opts: &ExecOptions) -> Result<CellRun> {
    let started = Instant::now();
    let key = CacheKey::new(cell.key, cell.scenario.flow.seed, CELL_STAGE);
    if let Some(cache) = &opts.cache {
        if let Some(metrics) = load_cell(cache, &key) {
            return Ok(CellRun {
                result: CellResult::new(cell, metrics),
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                cached: true,
            });
        }
    }

    let scenario = &cell.scenario;
    let dataset = scenario.dataset.generate()?;
    let mut flow = AttackFlow::new(scenario.flow.clone());
    if let Some(cache) = &opts.cache {
        flow = flow.with_cache(cache.clone());
    }
    // The machine derives its narration level from `config.verbose`;
    // mirror that for the faulted-evaluation path below.
    let level = if scenario.flow.verbose {
        qce_telemetry::Level::Progress
    } else {
        qce_telemetry::Level::Debug
    };

    let metrics = match &scenario.fault {
        None => {
            let mut machine = flow.machine(&dataset)?;
            while !machine.is_done() {
                machine.advance()?;
            }
            metrics_from_outcome(scenario, &machine.into_outcome()?)
        }
        Some(plan) => {
            // Select + Train only; the faulted evaluation quantizes and
            // perturbs internally and is itself cached under a hash
            // covering the quantizer and the fault plan.
            let mut machine = flow.machine(&dataset)?;
            machine.advance()?;
            machine.advance()?;
            let cache_hash = machine.cache_hash();
            let mut trained = machine.into_trained()?;
            let faulted = trained.evaluate_faulted_cached(
                scenario.flow.quant,
                plan,
                format!("fault seed {}", plan.seed()),
                opts.cache.as_ref(),
                cache_hash,
                level,
            )?;
            metrics_from_faulted(scenario, &faulted)
        }
    };

    if let Some(cache) = &opts.cache {
        store_cell(cache, &key, &metrics);
    }
    Ok(CellRun {
        result: CellResult::new(cell, metrics),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        cached: false,
    })
}

fn effective_bits(scenario: &qce_harness::Scenario) -> u32 {
    scenario.flow.quant.map_or(0, |q| q.bits)
}

/// Metrics for a clean (or defended) cell, from the finished flow.
fn metrics_from_outcome(scenario: &qce_harness::Scenario, outcome: &FlowOutcome) -> CellMetrics {
    let base = |report: &StageReport| CellMetrics {
        float_accuracy: Some(outcome.pre_quant.accuracy),
        accuracy: report.accuracy,
        images: report.images.len() as u32,
        recovered: report.count_mape_below(RECOVERY_MAPE_CEILING) as u32,
        mean_mape: Some(report.mean_mape()),
        mean_ssim: Some(report.mean_ssim()),
        bits: effective_bits(scenario),
        compression_ratio: outcome.compression_ratio,
    };
    match &outcome.post_defense {
        None => base(outcome.final_report()),
        Some(defended) => CellMetrics {
            accuracy: defended.accuracy,
            images: defended.images.len() as u32,
            recovered: defended.recovered_count(RECOVERY_MAPE_CEILING) as u32,
            mean_mape: defended.mean_mape(),
            mean_ssim: defended.mean_ssim(),
            ..base(outcome.final_report())
        },
    }
}

/// Metrics for a faulted cell. The float stage never runs on this path,
/// so `float_accuracy` and the compression ratio are absent.
fn metrics_from_faulted(scenario: &qce_harness::Scenario, report: &FaultedReport) -> CellMetrics {
    CellMetrics {
        float_accuracy: None,
        accuracy: report.accuracy,
        images: report.images.len() as u32,
        recovered: report.recovered_count(RECOVERY_MAPE_CEILING) as u32,
        mean_mape: report.mean_mape(),
        mean_ssim: report.mean_ssim(),
        bits: effective_bits(scenario),
        compression_ratio: None,
    }
}

fn store_cell(cache: &StageCache, key: &CacheKey, metrics: &CellMetrics) {
    let mut w = ByteWriter::new();
    put_opt_f32(&mut w, metrics.float_accuracy);
    w.put_f32(metrics.accuracy);
    w.put_u32(metrics.images);
    w.put_u32(metrics.recovered);
    put_opt_f32(&mut w, metrics.mean_mape);
    put_opt_f32(&mut w, metrics.mean_ssim);
    w.put_u32(metrics.bits);
    match metrics.compression_ratio {
        None => {
            w.put_u8(0);
        }
        Some(v) => {
            w.put_u8(1).put_f64(v);
        }
    }
    let mut artifact = Artifact::new();
    artifact.push(CELL_RESULT, w.finish());
    // Failure policy matches the flow's own checkpointing: a cache that
    // cannot persist degrades to recomputation, never to a sweep error.
    if let Err(e) = cache.store(key, &artifact) {
        qce_telemetry::debug!("[sweep] cell store failed for {}: {e}", key.stage);
    }
}

fn load_cell(cache: &StageCache, key: &CacheKey) -> Option<CellMetrics> {
    let artifact = cache.load(key)?;
    let payload = artifact.require(CELL_RESULT).ok()?;
    let mut r = ByteReader::new(payload);
    let mut decode = || -> qce_store::Result<CellMetrics> {
        let metrics = CellMetrics {
            float_accuracy: get_opt_f32(&mut r)?,
            accuracy: r.f32()?,
            images: r.u32()?,
            recovered: r.u32()?,
            mean_mape: get_opt_f32(&mut r)?,
            mean_ssim: get_opt_f32(&mut r)?,
            bits: r.u32()?,
            compression_ratio: match r.u8()? {
                0 => None,
                _ => Some(r.f64()?),
            },
        };
        r.expect_empty()?;
        Ok(metrics)
    };
    decode().ok()
}

fn put_opt_f32(w: &mut ByteWriter, v: Option<f32>) {
    match v {
        None => {
            w.put_u8(0);
        }
        Some(v) => {
            w.put_u8(1).put_f32(v);
        }
    }
}

fn get_opt_f32(r: &mut ByteReader<'_>) -> qce_store::Result<Option<f32>> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.f32()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_metrics_survive_the_cache_codec() {
        let dir = std::env::temp_dir().join(format!("qce-sweep-codec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = StageCache::at(&dir);
        let metrics = CellMetrics {
            float_accuracy: Some(0.75),
            accuracy: 0.5,
            images: 8,
            recovered: 3,
            mean_mape: Some(12.5),
            mean_ssim: None,
            bits: 4,
            compression_ratio: Some(8.0),
        };
        let key = CacheKey::new(0xfeed, 5, CELL_STAGE);
        store_cell(&cache, &key, &metrics);
        let loaded = load_cell(&cache, &key).expect("round trip");
        assert_eq!(format!("{metrics:?}"), format!("{loaded:?}"));
        // A different key misses.
        assert!(load_cell(&cache, &CacheKey::new(0xbeef, 5, CELL_STAGE)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
