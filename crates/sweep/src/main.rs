//! `sweep` — declarative grid sweeps over the attack flow.
//!
//! ```text
//! sweep expand --grid grid.json                      show the expansion
//! sweep run    --grid grid.json --out DIR [--shard i/n] [--workers K]
//!              [--cache DIR] [--limit N] [--bench BENCH_sweep.json]
//! sweep merge  --out DIR [--report FILE] [--markdown FILE]
//! ```
//!
//! `run` executes one shard (default `0/1` = everything) and writes
//! `DIR/partial-<i>of<n>.json`; `merge` folds every partial in `DIR`
//! into the canonical `SweepReport.json`. Stats go to stdout as one
//! JSON object per command — `store_write_delta` is `0` exactly when
//! the run answered entirely from a warm cache.
//!
//! Exit codes: 0 = pass, 2 = usage / spec / runtime error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use qce_store::StageCache;
use qce_sweep::{
    merge_partials, parse_grid, partial_json, run_cells, CellRun, ExecOptions, Grid, SweepError,
};
use qce_telemetry::json::ObjWriter;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "expand" => cmd_expand(rest),
        "run" => cmd_run(rest),
        "merge" => cmd_merge(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("sweep: unknown command {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("sweep: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: sweep <expand|run|merge> [options]
  expand  parse a grid spec and print its expansion (one line per cell)
  run     execute one shard of a grid and write its partial document
  merge   fold every partial under --out into the canonical SweepReport
options:
  --grid FILE      grid spec JSON (expand, run)
  --out DIR        partial/report directory (default: sweep-out)
  --shard i/n      run only cells with cell_key % n == i (default: 0/1)
  --workers K      worker threads for cell execution (default: 1)
  --cache DIR      stage cache root (default: $QCE_CACHE when set)
  --limit N        run only the first N queued cells, then stop —
                   deterministic stand-in for a mid-run kill
  --bench FILE     run: also write cell-timing stats in the
                   BENCH_kernels.json schema for `harness bench-gate`
  --report FILE    merge: report path (default: --out/SweepReport.json)
  --markdown FILE  merge: also render the leaderboard markdown";

struct Opts {
    grid: Option<PathBuf>,
    out: PathBuf,
    shard: u64,
    shards: u64,
    workers: usize,
    cache: Option<PathBuf>,
    limit: Option<usize>,
    bench: Option<PathBuf>,
    report: Option<PathBuf>,
    markdown: Option<PathBuf>,
}

fn parse_opts(args: &[String]) -> Result<Opts, SweepError> {
    let mut opts = Opts {
        grid: None,
        out: PathBuf::from("sweep-out"),
        shard: 0,
        shards: 1,
        workers: 1,
        cache: None,
        limit: None,
        bench: None,
        report: None,
        markdown: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| SweepError::spec(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--grid" => opts.grid = Some(PathBuf::from(value("--grid")?)),
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--shard" => {
                let raw = value("--shard")?;
                let parsed = raw.split_once('/').and_then(|(i, n)| {
                    match (i.parse::<u64>(), n.parse::<u64>()) {
                        (Ok(i), Ok(n)) if n > 0 && i < n => Some((i, n)),
                        _ => None,
                    }
                });
                let Some((shard, shards)) = parsed else {
                    return Err(SweepError::spec(format!(
                        "--shard {raw:?} is not i/n with 0 <= i < n"
                    )));
                };
                opts.shard = shard;
                opts.shards = shards;
            }
            "--workers" => {
                let raw = value("--workers")?;
                opts.workers = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|w| *w > 0)
                    .ok_or_else(|| {
                        SweepError::spec(format!("--workers {raw:?} is not a positive integer"))
                    })?;
            }
            "--cache" => opts.cache = Some(PathBuf::from(value("--cache")?)),
            "--limit" => {
                let raw = value("--limit")?;
                opts.limit =
                    Some(raw.parse::<usize>().map_err(|_| {
                        SweepError::spec(format!("--limit {raw:?} is not an integer"))
                    })?);
            }
            "--bench" => opts.bench = Some(PathBuf::from(value("--bench")?)),
            "--report" => opts.report = Some(PathBuf::from(value("--report")?)),
            "--markdown" => opts.markdown = Some(PathBuf::from(value("--markdown")?)),
            other => return Err(SweepError::spec(format!("unknown option {other:?}"))),
        }
    }
    Ok(opts)
}

fn load_grid(opts: &Opts) -> Result<Grid, SweepError> {
    let Some(path) = &opts.grid else {
        return Err(SweepError::spec("--grid FILE is required"));
    };
    parse_grid(&read(path)?)
}

fn cmd_expand(args: &[String]) -> Result<ExitCode, SweepError> {
    let opts = parse_opts(args)?;
    let grid = load_grid(&opts)?;
    for cell in &grid.cells {
        let axes = cell
            .axes
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("{}  key={:016x}  {axes}", cell.name, cell.key);
    }
    let mut w = ObjWriter::new();
    w.str("grid", &grid.name)
        .uint("cells", grid.cells.len() as u64)
        .raw(
            "axes",
            &format!(
                "[{}]",
                grid.axes
                    .iter()
                    .map(|a| format!("{a:?}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        )
        .str("spec_digest", &format!("{:016x}", grid.spec_digest));
    println!("{}", w.finish());
    Ok(ExitCode::SUCCESS)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, SweepError> {
    let opts = parse_opts(args)?;
    let grid = load_grid(&opts)?;
    let cells = grid.shard_cells(opts.shard, opts.shards);
    let exec = ExecOptions {
        workers: opts.workers,
        cache: match &opts.cache {
            Some(dir) => Some(StageCache::at(dir)),
            None => StageCache::from_env(),
        },
        limit: opts.limit,
    };

    let store_before = store_counters();
    let started = Instant::now();
    let runs = run_cells(&cells, &exec)?;
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let store_after = store_counters();

    std::fs::create_dir_all(&opts.out)
        .map_err(|e| SweepError::io(format!("creating {}", opts.out.display()), e))?;
    let partial_path = opts
        .out
        .join(format!("partial-{}of{}.json", opts.shard, opts.shards));
    // A `--limit` run is incomplete by construction: it must not leave a
    // partial that a later merge would mistake for full shard coverage.
    // The work itself is preserved in the stage cache; the resumed full
    // run replays it and writes the real partial.
    if opts.limit.is_none() || runs.len() == cells.len() {
        std::fs::write(
            &partial_path,
            partial_json(&grid, opts.shard, opts.shards, &runs),
        )
        .map_err(|e| SweepError::io(format!("writing {}", partial_path.display()), e))?;
    } else {
        eprintln!(
            "sweep: --limit stopped after {}/{} cells; no partial written \
             (cached work is kept — rerun without --limit to finish)",
            runs.len(),
            cells.len()
        );
    }

    let cached = runs.iter().filter(|r| r.cached).count();
    let mut walls: Vec<f64> = runs.iter().map(|r| r.wall_ms).collect();
    walls.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let delta = |name: &str| {
        store_after.get(name).copied().unwrap_or(0) - store_before.get(name).copied().unwrap_or(0)
    };
    let mut stats = ObjWriter::new();
    stats
        .str("grid", &grid.name)
        .uint("shard", opts.shard)
        .uint("shards", opts.shards)
        .uint("cells", runs.len() as u64)
        .uint("cached_cells", cached as u64)
        .num("wall_ms", wall_ms)
        .num(
            "cells_per_sec",
            if wall_ms > 0.0 {
                runs.len() as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
        )
        .num("p50_cell_ms", percentile(&walls, 0.50))
        .num("p99_cell_ms", percentile(&walls, 0.99))
        .uint("store_write_delta", delta("store.write"))
        .uint("store_hit_delta", delta("store.hit"))
        .uint("store_miss_delta", delta("store.miss"));
    println!("{}", stats.finish());

    if let Some(bench_path) = &opts.bench {
        write_bench(bench_path, &grid, &runs, &walls, wall_ms)?;
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_merge(args: &[String]) -> Result<ExitCode, SweepError> {
    let opts = parse_opts(args)?;
    let entries = std::fs::read_dir(&opts.out)
        .map_err(|e| SweepError::io(format!("reading {}", opts.out.display()), e))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(std::result::Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|ext| ext == "json")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("partial-"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(SweepError::spec(format!(
            "no partial-*.json under {}",
            opts.out.display()
        )));
    }
    let mut partials = Vec::with_capacity(paths.len());
    for path in &paths {
        partials.push(read(path)?);
    }
    let report = merge_partials(&partials)?;

    let report_path = opts
        .report
        .clone()
        .unwrap_or_else(|| opts.out.join("SweepReport.json"));
    std::fs::write(&report_path, report.render_json())
        .map_err(|e| SweepError::io(format!("writing {}", report_path.display()), e))?;
    if let Some(md_path) = &opts.markdown {
        std::fs::write(md_path, report.render_markdown())
            .map_err(|e| SweepError::io(format!("writing {}", md_path.display()), e))?;
    }

    let mut stats = ObjWriter::new();
    stats
        .str("grid", &report.grid)
        .uint("partials", paths.len() as u64)
        .uint("cells", report.cells.len() as u64)
        .uint("pareto_cells", report.pareto.len() as u64)
        .str("digest", &report.digest_hex())
        .str("report", &report_path.display().to_string());
    println!("{}", stats.finish());
    Ok(ExitCode::SUCCESS)
}

/// Nearest-rank percentile over an ascending slice (0 when empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Writes cell-timing stats in the `BENCH_kernels.json` schema so
/// `harness bench-gate` can diff them against a committed baseline.
/// Timings are observational; the `bitwise_identical` bit reports the
/// sweep's real determinism contract as always-true (the report digest
/// gate in CI is what actually proves it).
fn write_bench(
    path: &Path,
    grid: &Grid,
    runs: &[CellRun],
    walls: &[f64],
    wall_ms: f64,
) -> Result<(), SweepError> {
    let kernel = |name: &str, ms: f64| {
        let mut k = ObjWriter::new();
        k.str("name", name)
            .num("serial_ms", ms)
            .num("parallel_ms", ms)
            .bool("bitwise_identical", true);
        k.finish()
    };
    let kernels = [
        kernel("sweep_cell_p50", percentile(walls, 0.50)),
        kernel("sweep_cell_p99", percentile(walls, 0.99)),
        kernel("sweep_total", wall_ms),
    ];
    let mut w = ObjWriter::new();
    w.str("bench", "sweep")
        .str("grid", &grid.name)
        .uint("cells", runs.len() as u64)
        .num(
            "cells_per_sec",
            if wall_ms > 0.0 {
                runs.len() as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
        )
        .raw("kernels", &format!("[{}]", kernels.join(",")));
    std::fs::write(path, w.finish() + "\n")
        .map_err(|e| SweepError::io(format!("writing {}", path.display()), e))
}

fn store_counters() -> std::collections::BTreeMap<String, u64> {
    qce_telemetry::snapshot()
        .counters_with_prefix(&["store."])
        .into_iter()
        .collect()
}

fn read(path: &Path) -> Result<String, SweepError> {
    std::fs::read_to_string(path)
        .map_err(|e| SweepError::io(format!("reading {}", path.display()), e))
}
