//! Sweep partials, deterministic merging, and the Pareto-frontier
//! report.
//!
//! Every run (whole grid or one shard) writes a **partial**: the cell
//! results it computed, tagged with the grid's spec digest and the
//! shard arithmetic. [`merge_partials`] folds any complete set of
//! partials — one from a single process, or `n` from `--shard i/n`
//! runs — into a [`SweepReport`] whose rendered bytes depend only on
//! the cell *contents*: cells are sorted by expansion index, numbers
//! render through one deterministic writer, and the digest hashes the
//! rendered body. A sweep killed and resumed, or split across
//! machines, therefore merges to the byte-identical report of an
//! uninterrupted single-process run.
//!
//! **Pareto rules** (see `DESIGN.md` §5k): cell `a` dominates cell `b`
//! when `a` is no worse on every objective and strictly better on at
//! least one, over the objectives *maximize accuracy*, *minimize mean
//! MAPE* (a cell with no decoded images counts as infinitely bad),
//! *maximize recovered images*, and *minimize effective bit width*
//! (an unquantized float release counts as 32 bits). The frontier is
//! the set of non-dominated cells, listed by expansion index.

use qce_telemetry::fnv1a;
use qce_telemetry::json::{parse, JsonValue, ObjWriter};

use crate::grid::{render, Cell, Grid};
use crate::{CellRun, Result, SweepError};

/// Format tag of a merged sweep report document.
pub const REPORT_FORMAT: &str = "qce-sweep-report-v1";

/// Format tag of a per-run partial document.
pub const PARTIAL_FORMAT: &str = "qce-sweep-partial-v1";

/// Bit width charged to an unquantized (float) release in the Pareto
/// ordering.
const FLOAT_BITS: u32 = 32;

/// The gateable metrics of one finished cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Accuracy of the float model, when the float stage ran (absent
    /// on fault cells, which skip it).
    pub float_accuracy: Option<f32>,
    /// Task accuracy of the released (final) stage.
    pub accuracy: f32,
    /// Embedded target images the release carries.
    pub images: u32,
    /// Images decoded below the recovery MAPE ceiling.
    pub recovered: u32,
    /// Mean MAPE over decoded images; `None` when nothing decoded.
    pub mean_mape: Option<f32>,
    /// Mean SSIM over decoded images; `None` when nothing decoded.
    pub mean_ssim: Option<f32>,
    /// Released bit width; `0` means an unquantized float release.
    pub bits: u32,
    /// Float-to-released compression ratio, when quantization ran.
    pub compression_ratio: Option<f64>,
}

/// One cell's identity plus its metrics — the unit partials carry.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Expansion index within the grid (report order).
    pub index: usize,
    /// Stable cell name (`c0007`-style).
    pub name: String,
    /// `(axis, value label)` pairs in spec order.
    pub axes: Vec<(String, String)>,
    /// Content-addressed cell key.
    pub cell_key: u64,
    /// The measured metrics.
    pub metrics: CellMetrics,
}

impl CellResult {
    /// Binds `metrics` to `cell`'s identity.
    #[must_use]
    pub fn new(cell: &Cell, metrics: CellMetrics) -> Self {
        CellResult {
            index: cell.index,
            name: cell.name.clone(),
            axes: cell.axes.clone(),
            cell_key: cell.key,
            metrics,
        }
    }

    /// Effective bit width for the Pareto ordering.
    fn pareto_bits(&self) -> u32 {
        if self.metrics.bits == 0 {
            FLOAT_BITS
        } else {
            self.metrics.bits
        }
    }

    /// Mean MAPE for the Pareto ordering; undecodable → +∞.
    fn pareto_mape(&self) -> f64 {
        self.metrics.mean_mape.map_or(f64::INFINITY, f64::from)
    }

    fn render(&self) -> String {
        let mut axes = String::from("[");
        for (i, (axis, label)) in self.axes.iter().enumerate() {
            if i > 0 {
                axes.push(',');
            }
            axes.push_str(&render(&JsonValue::Arr(vec![
                JsonValue::Str(axis.clone()),
                JsonValue::Str(label.clone()),
            ])));
        }
        axes.push(']');

        let m = &self.metrics;
        let mut metrics = ObjWriter::new();
        opt_num(
            &mut metrics,
            "float_accuracy",
            m.float_accuracy.map(f64::from),
        );
        metrics.num("accuracy", f64::from(m.accuracy));
        metrics.uint("images", u64::from(m.images));
        metrics.uint("recovered", u64::from(m.recovered));
        opt_num(&mut metrics, "mean_mape", m.mean_mape.map(f64::from));
        opt_num(&mut metrics, "mean_ssim", m.mean_ssim.map(f64::from));
        metrics.uint("bits", u64::from(m.bits));
        opt_num(&mut metrics, "compression_ratio", m.compression_ratio);

        let mut w = ObjWriter::new();
        w.uint("index", self.index as u64)
            .str("name", &self.name)
            .raw("axes", &axes)
            .str("key", &format!("{:016x}", self.cell_key))
            .raw("metrics", &metrics.finish());
        w.finish()
    }

    fn from_json(doc: &JsonValue) -> Result<CellResult> {
        let bad = |what: &str| SweepError::spec(format!("partial cell: {what}"));
        let index = doc
            .get("index")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad("missing \"index\""))? as usize;
        let name = doc
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing \"name\""))?
            .to_string();
        let Some(JsonValue::Arr(axis_docs)) = doc.get("axes") else {
            return Err(bad("missing \"axes\""));
        };
        let mut axes = Vec::with_capacity(axis_docs.len());
        for pair in axis_docs {
            let JsonValue::Arr(pair) = pair else {
                return Err(bad("axes entries must be [axis, label] pairs"));
            };
            match (
                pair.first().and_then(JsonValue::as_str),
                pair.get(1).and_then(JsonValue::as_str),
            ) {
                (Some(a), Some(l)) if pair.len() == 2 => axes.push((a.to_string(), l.to_string())),
                _ => return Err(bad("axes entries must be [axis, label] pairs")),
            }
        }
        let cell_key = doc
            .get("key")
            .and_then(JsonValue::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| bad("missing or unparsable \"key\""))?;
        let m = doc
            .get("metrics")
            .ok_or_else(|| bad("missing \"metrics\""))?;
        let req = |field: &str| {
            m.get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| SweepError::spec(format!("partial cell: missing \"{field}\"")))
        };
        let opt = |field: &str| match m.get(field) {
            None | Some(JsonValue::Null) => None,
            Some(v) => v.as_f64(),
        };
        let metrics = CellMetrics {
            float_accuracy: opt("float_accuracy").map(|v| v as f32),
            accuracy: req("accuracy")? as f32,
            images: req("images")? as u32,
            recovered: req("recovered")? as u32,
            mean_mape: opt("mean_mape").map(|v| v as f32),
            mean_ssim: opt("mean_ssim").map(|v| v as f32),
            bits: req("bits")? as u32,
            compression_ratio: opt("compression_ratio"),
        };
        Ok(CellResult {
            index,
            name,
            axes,
            cell_key,
            metrics,
        })
    }
}

fn opt_num(w: &mut ObjWriter, key: &str, v: Option<f64>) {
    match v {
        None => {
            w.raw(key, "null");
        }
        Some(v) => {
            w.num(key, v);
        }
    }
}

/// Renders one run's partial document.
///
/// `shard`/`shards` describe which slice of `grid` this run covered;
/// a whole-grid run is shard `0/1`. `runs` must be exactly the cells
/// [`Grid::shard_cells`] assigns to that shard (the merge validates
/// coverage).
#[must_use]
pub fn partial_json(grid: &Grid, shard: u64, shards: u64, runs: &[CellRun]) -> String {
    let mut results: Vec<&CellRun> = runs.iter().collect();
    results.sort_by_key(|r| r.result.index);
    let mut cells = String::from("[");
    for (i, run) in results.iter().enumerate() {
        if i > 0 {
            cells.push(',');
        }
        cells.push_str(&run.result.render());
    }
    cells.push(']');

    let mut w = ObjWriter::new();
    w.str("format", PARTIAL_FORMAT)
        .str("grid", &grid.name)
        .str("spec_digest", &format!("{:016x}", grid.spec_digest))
        .uint("shard", shard)
        .uint("shards", shards)
        .uint("total_cells", grid.cells.len() as u64)
        .raw("cells", &cells);
    let mut out = w.finish();
    out.push('\n');
    out
}

/// A merged sweep: every cell result plus the Pareto frontier.
#[derive(Debug)]
pub struct SweepReport {
    /// Grid name.
    pub grid: String,
    /// Every cell, sorted by expansion index.
    pub cells: Vec<CellResult>,
    /// Expansion indices of the non-dominated cells, ascending.
    pub pareto: Vec<usize>,
}

impl SweepReport {
    /// Builds a report from a complete cell set (sorted internally).
    #[must_use]
    pub fn new(grid: String, mut cells: Vec<CellResult>) -> Self {
        cells.sort_by_key(|c| c.index);
        let pareto = pareto_front(&cells);
        SweepReport {
            grid,
            cells,
            pareto,
        }
    }

    /// The report body without its digest field.
    fn body(&self) -> String {
        let mut cells = String::from("[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                cells.push(',');
            }
            cells.push_str(&cell.render());
        }
        cells.push(']');
        let mut pareto = String::from("[");
        for (i, index) in self.pareto.iter().enumerate() {
            if i > 0 {
                pareto.push(',');
            }
            pareto.push_str(&index.to_string());
        }
        pareto.push(']');
        let mut w = ObjWriter::new();
        w.str("format", REPORT_FORMAT)
            .str("grid", &self.grid)
            .uint("total_cells", self.cells.len() as u64)
            .raw("cells", &cells)
            .raw("pareto", &pareto);
        w.finish()
    }

    /// The report digest: a hash of the rendered body, so two reports
    /// agree exactly when their bytes do.
    #[must_use]
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", fnv1a(&self.body()))
    }

    /// Renders the canonical report document (body + digest).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut body = self.body();
        debug_assert_eq!(body.pop(), Some('}'));
        body.push_str(&format!(",\"digest\":\"{}\"}}\n", self.digest_hex()));
        body
    }

    /// Renders the human leaderboard: cells sorted by released accuracy
    /// (descending, index-stable), frontier members starred.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut order: Vec<&CellResult> = self.cells.iter().collect();
        order.sort_by(|a, b| {
            b.metrics
                .accuracy
                .partial_cmp(&a.metrics.accuracy)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        let mut out = format!(
            "# Sweep `{}` — {} cells, {} on the Pareto frontier\n\n\
             | cell | axes | bits | accuracy | float acc | MAPE % | SSIM | recovered | frontier |\n\
             |---|---|---:|---:|---:|---:|---:|---:|:-:|\n",
            self.grid,
            self.cells.len(),
            self.pareto.len()
        );
        let fmt_opt = |v: Option<f32>| v.map_or("—".to_string(), |v| format!("{v:.3}"));
        for cell in order {
            let axes = cell
                .axes
                .iter()
                .map(|(a, v)| format!("{a}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let m = &cell.metrics;
            out.push_str(&format!(
                "| {} | {} | {} | {:.3} | {} | {} | {} | {}/{} | {} |\n",
                cell.name,
                axes,
                if m.bits == 0 {
                    "float".to_string()
                } else {
                    m.bits.to_string()
                },
                m.accuracy,
                fmt_opt(m.float_accuracy),
                m.mean_mape.map_or("—".to_string(), |v| format!("{v:.1}")),
                fmt_opt(m.mean_ssim),
                m.recovered,
                m.images,
                if self.pareto.contains(&cell.index) {
                    "★"
                } else {
                    ""
                },
            ));
        }
        out
    }
}

/// `a` dominates `b`: no worse on every objective, strictly better on
/// at least one.
fn dominates(a: &CellResult, b: &CellResult) -> bool {
    let ge = a.metrics.accuracy >= b.metrics.accuracy
        && a.pareto_mape() <= b.pareto_mape()
        && a.metrics.recovered >= b.metrics.recovered
        && a.pareto_bits() <= b.pareto_bits();
    let gt = a.metrics.accuracy > b.metrics.accuracy
        || a.pareto_mape() < b.pareto_mape()
        || a.metrics.recovered > b.metrics.recovered
        || a.pareto_bits() < b.pareto_bits();
    ge && gt
}

fn pareto_front(cells: &[CellResult]) -> Vec<usize> {
    cells
        .iter()
        .filter(|c| !cells.iter().any(|other| dominates(other, c)))
        .map(|c| c.index)
        .collect()
}

/// Merges a complete set of partial documents into one report.
///
/// # Errors
///
/// [`SweepError::Spec`] when the partials disagree on grid identity or
/// shard arithmetic, overlap, or fail to cover every cell — a merge
/// never silently drops or double-counts a cell.
pub fn merge_partials(partials: &[String]) -> Result<SweepReport> {
    if partials.is_empty() {
        return Err(SweepError::spec("no partials to merge"));
    }
    let mut grid: Option<(String, String, u64, u64)> = None;
    let mut seen_shards: Vec<u64> = Vec::new();
    let mut cells: Vec<CellResult> = Vec::new();
    for (i, body) in partials.iter().enumerate() {
        let doc = parse(body).map_err(|e| SweepError::spec(format!("partial {i}: {e}")))?;
        let field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| SweepError::spec(format!("partial {i}: missing \"{key}\"")))
        };
        let uint = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| SweepError::spec(format!("partial {i}: missing \"{key}\"")))
        };
        let format = field("format")?;
        if format != PARTIAL_FORMAT {
            return Err(SweepError::spec(format!(
                "partial {i}: format {format:?}, expected {PARTIAL_FORMAT:?}"
            )));
        }
        let identity = (
            field("grid")?,
            field("spec_digest")?,
            uint("shards")?,
            uint("total_cells")?,
        );
        let shards_declared = identity.2;
        match &grid {
            None => grid = Some(identity),
            Some(expected) if *expected == identity => {}
            Some(expected) => {
                return Err(SweepError::spec(format!(
                    "partial {i} belongs to a different sweep: {identity:?} vs {expected:?}"
                )))
            }
        }
        let shard = uint("shard")?;
        if shard >= shards_declared {
            return Err(SweepError::spec(format!(
                "partial {i}: shard {shard} out of range 0..{shards_declared}"
            )));
        }
        if seen_shards.contains(&shard) {
            return Err(SweepError::spec(format!(
                "partial {i}: shard {shard} appears twice"
            )));
        }
        seen_shards.push(shard);
        let Some(JsonValue::Arr(cell_docs)) = doc.get("cells") else {
            return Err(SweepError::spec(format!("partial {i}: missing \"cells\"")));
        };
        for cell_doc in cell_docs {
            cells.push(CellResult::from_json(cell_doc)?);
        }
    }
    let (grid_name, _, shards, total_cells) = grid.expect("at least one partial");
    if seen_shards.len() as u64 != shards {
        return Err(SweepError::spec(format!(
            "have {} partial(s) for a {shards}-shard sweep",
            seen_shards.len()
        )));
    }
    let mut indices: Vec<usize> = cells.iter().map(|c| c.index).collect();
    indices.sort_unstable();
    if indices.windows(2).any(|w| w[0] == w[1]) {
        return Err(SweepError::spec("partials overlap: duplicate cell index"));
    }
    let expected: Vec<usize> = (0..total_cells as usize).collect();
    if indices != expected {
        let missing: Vec<usize> = expected
            .iter()
            .filter(|i| !indices.contains(i))
            .copied()
            .collect();
        return Err(SweepError::spec(format!(
            "partials cover {}/{total_cells} cells (missing indices {missing:?}) — \
             is a shard's run incomplete?",
            indices.len()
        )));
    }
    Ok(SweepReport::new(grid_name, cells))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(
        index: usize,
        accuracy: f32,
        mape: Option<f32>,
        recovered: u32,
        bits: u32,
    ) -> CellResult {
        CellResult {
            index,
            name: format!("c{index:04}"),
            axes: vec![("bits".to_string(), bits.to_string())],
            cell_key: 0x1000 + index as u64,
            metrics: CellMetrics {
                float_accuracy: Some(accuracy + 0.05),
                accuracy,
                images: 4,
                recovered,
                mean_mape: mape,
                mean_ssim: mape.map(|m| 1.0 - m / 100.0),
                bits,
                compression_ratio: (bits > 0).then(|| 32.0 / f64::from(bits)),
            },
        }
    }

    #[test]
    fn pareto_front_drops_dominated_cells_only() {
        // c1 dominates c0 (same accuracy/recovered, better mape+bits);
        // c2 trades accuracy for bits against c1 — both survive. An
        // undecodable cell (mape None) survives only via another axis.
        let cells = vec![
            cell(0, 0.50, Some(20.0), 2, 8),
            cell(1, 0.50, Some(10.0), 2, 4),
            cell(2, 0.60, Some(15.0), 2, 8),
            cell(3, 0.40, None, 1, 2),
        ];
        let report = SweepReport::new("t".to_string(), cells);
        assert_eq!(report.pareto, vec![1, 2, 3]);
    }

    #[test]
    fn report_bytes_are_identical_across_merge_orders() {
        let cells = vec![
            cell(0, 0.5, Some(12.0), 2, 4),
            cell(1, 0.6, Some(30.0), 1, 8),
            cell(2, 0.4, None, 0, 2),
        ];
        let direct = SweepReport::new("t".to_string(), cells.clone()).render_json();
        let reversed: Vec<CellResult> = cells.into_iter().rev().collect();
        let merged = SweepReport::new("t".to_string(), reversed).render_json();
        assert_eq!(direct, merged);
        assert!(direct.contains("\"digest\":\""));
    }

    #[test]
    fn cell_results_round_trip_through_partial_json() {
        let original = cell(7, 0.5, None, 0, 0);
        let doc = parse(&original.render()).unwrap();
        let back = CellResult::from_json(&doc).unwrap();
        assert_eq!(format!("{original:?}"), format!("{back:?}"));
        assert_eq!(back.render(), original.render());
    }

    fn partial_doc(shard: u64, shards: u64, total: u64, cells: &[CellResult]) -> String {
        let mut rendered = String::from("[");
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                rendered.push(',');
            }
            rendered.push_str(&c.render());
        }
        rendered.push(']');
        let mut w = ObjWriter::new();
        w.str("format", PARTIAL_FORMAT)
            .str("grid", "t")
            .str("spec_digest", "00000000deadbeef")
            .uint("shard", shard)
            .uint("shards", shards)
            .uint("total_cells", total)
            .raw("cells", &rendered);
        w.finish()
    }

    #[test]
    fn merge_validates_coverage_and_identity() {
        let c0 = cell(0, 0.5, Some(10.0), 1, 4);
        let c1 = cell(1, 0.6, Some(20.0), 2, 8);
        let merged = merge_partials(&[
            partial_doc(1, 2, 2, std::slice::from_ref(&c1)),
            partial_doc(0, 2, 2, std::slice::from_ref(&c0)),
        ])
        .unwrap();
        assert_eq!(merged.cells.len(), 2);
        assert_eq!(merged.cells[0].index, 0);

        // Missing a shard.
        let err = merge_partials(&[partial_doc(0, 2, 2, std::slice::from_ref(&c0))])
            .unwrap_err()
            .to_string();
        assert!(err.contains("1 partial(s) for a 2-shard"), "{err}");

        // Duplicate shard.
        let err = merge_partials(&[
            partial_doc(0, 2, 2, std::slice::from_ref(&c0)),
            partial_doc(0, 2, 2, std::slice::from_ref(&c1)),
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("appears twice"), "{err}");

        // Duplicate cell across shards.
        let err = merge_partials(&[
            partial_doc(0, 2, 2, std::slice::from_ref(&c0)),
            partial_doc(1, 2, 2, std::slice::from_ref(&c0)),
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("duplicate cell index"), "{err}");

        // Incomplete coverage (shard counts right, a cell missing).
        let err = merge_partials(&[partial_doc(0, 1, 2, std::slice::from_ref(&c0))])
            .unwrap_err()
            .to_string();
        assert!(err.contains("missing indices"), "{err}");
    }

    #[test]
    fn markdown_leaderboard_stars_the_frontier() {
        let report = SweepReport::new(
            "t".to_string(),
            vec![
                cell(0, 0.5, Some(10.0), 2, 4),
                cell(1, 0.4, Some(30.0), 1, 4),
            ],
        );
        let md = report.render_markdown();
        assert!(md.contains("| c0000 |") && md.contains("★"), "{md}");
        let starred: Vec<&str> = md.lines().filter(|l| l.contains('★')).collect();
        assert_eq!(starred.len(), 1);
        assert!(starred[0].contains("c0000"));
    }
}
