//! Grid specs: declarative axis lists cross-expanded into sweep cells.
//!
//! A grid spec is a JSON document:
//!
//! ```json
//! {"name": "bits-x-lambda",
//!  "max_cells": 128,
//!  "base": {"dataset": {"kind": "cifar", "size": 8, "classes": 4,
//!                       "count": 96, "seed": 5},
//!           "flow": {"epochs": 1,
//!                    "quant": {"method": "kmeans", "bits": 4}}},
//!  "axes": [{"axis": "bits", "values": [2, 4, 6]},
//!           {"axis": "lambda", "values": [3, 5, 10]}]}
//! ```
//!
//! `base` is a [`Scenario`](qce_harness::Scenario) body without a name;
//! each axis names a knob from the registry ([`AXIS_NAMES`]) and lists
//! the values it sweeps. Expansion is the cross product in listed order
//! (the last axis varies fastest); cell `i` overlays its combination
//! onto `base`, parses the result through the harness scenario schema,
//! and takes the *canonical* scenario JSON as its identity — the cell
//! key is a hash of content, not position, so editing one axis value
//! leaves every other cell's key (and its cached work) untouched.

use std::collections::BTreeMap;

use qce_harness::Scenario;
use qce_telemetry::fnv1a;
use qce_telemetry::json::{parse, write_escaped, write_num, JsonValue};

use crate::{Result, SweepError};

/// Default expansion ceiling when the spec does not set `max_cells`.
pub const MAX_CELLS_DEFAULT: usize = 512;

/// Hard expansion ceiling; `max_cells` cannot raise it further.
pub const MAX_CELLS_CEILING: usize = 4096;

/// The axis registry: every name a grid spec may sweep.
pub const AXIS_NAMES: &[&str] = &[
    "bits",
    "quant_method",
    "quant",
    "lambda",
    "lambda_schedule",
    "channel",
    "defense",
    "fault",
    "dataset_count",
    "dataset_size",
    "seed",
    "epochs",
];

/// Version tag folded into every cell key; bump when cell semantics
/// change incompatibly so stale cached cell results are not reused.
const CELL_KEY_VERSION: &str = "qce-sweep-cell-v1";

/// One expanded sweep cell: a concrete scenario plus the axis labels
/// that produced it.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Position in row-major expansion order (also the report order).
    pub index: usize,
    /// Stable cell name (`c0007`-style, from the index).
    pub name: String,
    /// `(axis, value label)` pairs in spec order.
    pub axes: Vec<(String, String)>,
    /// The fully-resolved scenario this cell runs.
    pub scenario: Scenario,
    /// Canonical scenario JSON ([`Scenario::to_json`]) — the cell's
    /// content identity.
    pub canonical: String,
    /// Content-addressed cell key: FNV-1a over the versioned canonical
    /// form. Drives shard assignment and the cell-result cache entry.
    pub key: u64,
}

/// A parsed, fully-expanded grid.
#[derive(Debug)]
pub struct Grid {
    /// Grid name (also names the merged report).
    pub name: String,
    /// Swept axis names in spec order.
    pub axes: Vec<String>,
    /// Every cell, in expansion order.
    pub cells: Vec<Cell>,
    /// Fingerprint of the whole expansion (name + every cell key);
    /// partials carry it so merges reject mixed-grid inputs.
    pub spec_digest: u64,
}

impl Grid {
    /// The cells assigned to shard `shard` of `shards`: those with
    /// `key % shards == shard`. With `shards == 1` this is every cell.
    #[must_use]
    pub fn shard_cells(&self, shard: u64, shards: u64) -> Vec<Cell> {
        self.cells
            .iter()
            .filter(|c| c.key % shards.max(1) == shard)
            .cloned()
            .collect()
    }
}

/// Parses and fully expands a grid spec.
///
/// # Errors
///
/// [`SweepError::Spec`] for: unknown/duplicate/empty axes, an expansion
/// larger than `max_cells` (or the hard ceiling), duplicate cells,
/// malformed base documents, and axis values a knob cannot accept.
pub fn parse_grid(body: &str) -> Result<Grid> {
    let doc = parse(body).map_err(|e| SweepError::spec(format!("grid JSON: {e}")))?;
    let name = doc
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| SweepError::spec("grid needs a string \"name\""))?
        .to_string();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(SweepError::spec(format!(
            "grid name {name:?} must be non-empty and filesystem-safe ([A-Za-z0-9_-])"
        )));
    }
    let max_cells = match doc.get("max_cells") {
        None => MAX_CELLS_DEFAULT,
        Some(v) => {
            let n = v
                .as_u64()
                .ok_or_else(|| SweepError::spec("\"max_cells\" must be a non-negative integer"))?
                as usize;
            if n == 0 || n > MAX_CELLS_CEILING {
                return Err(SweepError::spec(format!(
                    "\"max_cells\" {n} outside 1..={MAX_CELLS_CEILING}"
                )));
            }
            n
        }
    };

    let base = doc
        .get("base")
        .ok_or_else(|| SweepError::spec("grid needs a \"base\" object"))?;
    let JsonValue::Obj(base_map) = base else {
        return Err(SweepError::spec("\"base\" must be an object"));
    };
    for key in ["dataset", "flow"] {
        if !matches!(base_map.get(key), Some(JsonValue::Obj(_))) {
            return Err(SweepError::spec(format!("\"base\" needs a {key:?} object")));
        }
    }

    let Some(JsonValue::Arr(axis_docs)) = doc.get("axes") else {
        return Err(SweepError::spec("grid needs an \"axes\" array"));
    };
    let mut axes: Vec<(String, Vec<JsonValue>)> = Vec::with_capacity(axis_docs.len());
    for axis_doc in axis_docs {
        let axis = axis_doc
            .get("axis")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| SweepError::spec("each axis needs a string \"axis\" name"))?
            .to_string();
        if !AXIS_NAMES.contains(&axis.as_str()) {
            return Err(SweepError::spec(format!(
                "unknown axis {axis:?} (known: {})",
                AXIS_NAMES.join(", ")
            )));
        }
        if axes.iter().any(|(a, _)| *a == axis) {
            return Err(SweepError::spec(format!("duplicate axis {axis:?}")));
        }
        let Some(JsonValue::Arr(values)) = axis_doc.get("values") else {
            return Err(SweepError::spec(format!(
                "axis {axis:?} needs a \"values\" array"
            )));
        };
        if values.is_empty() {
            return Err(SweepError::spec(format!(
                "axis {axis:?} has an empty \"values\" list"
            )));
        }
        axes.push((axis, values.clone()));
    }

    let mut total: usize = 1;
    for (axis, values) in &axes {
        total = total.checked_mul(values.len()).ok_or_else(|| {
            SweepError::spec(format!("grid size overflows while expanding axis {axis:?}"))
        })?;
    }
    if total > max_cells {
        return Err(SweepError::spec(format!(
            "grid expands to {total} cells, over the limit of {max_cells} \
             (raise \"max_cells\", up to {MAX_CELLS_CEILING})"
        )));
    }

    // Row-major odometer over the axes: the last axis varies fastest.
    let mut cells = Vec::with_capacity(total);
    let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
    for index in 0..total {
        let mut remainder = index;
        let mut picks: Vec<(usize, &JsonValue)> = Vec::with_capacity(axes.len());
        for (pos, (_, values)) in axes.iter().enumerate().rev() {
            picks.push((pos, &values[remainder % values.len()]));
            remainder /= values.len();
        }
        picks.reverse();

        let name = format!("c{index:04}");
        let mut cell_doc = base_map.clone();
        // Canonicalize under a fixed placeholder name: the cell key must
        // be a function of *content* only, so the same combination keeps
        // its key (and its cached work) when the grid around it changes
        // and it lands at a different index.
        cell_doc.insert("name".to_string(), JsonValue::Str("cell".to_string()));
        let mut labels = Vec::with_capacity(axes.len());
        for (pos, value) in picks {
            let axis = axes[pos].0.as_str();
            apply_axis(&mut cell_doc, axis, value)?;
            labels.push((axis.to_string(), value_label(value)));
        }
        let rendered = render(&JsonValue::Obj(cell_doc));
        let mut scenario = Scenario::from_json(&rendered).map_err(|e| {
            SweepError::spec(format!("cell {name} ({}): {e}", label_summary(&labels)))
        })?;
        let canonical = scenario.to_json();
        let key = fnv1a(&format!("{CELL_KEY_VERSION}\u{0}{canonical}"));
        scenario.name = name.clone();
        if let Some(&other) = seen.get(&key) {
            return Err(SweepError::spec(format!(
                "duplicate cells: index {other} and {index} expand to the same scenario \
                 ({})",
                label_summary(&labels)
            )));
        }
        seen.insert(key, index);
        cells.push(Cell {
            index,
            name,
            axes: labels,
            scenario,
            canonical,
            key,
        });
    }

    let mut digest_input = format!("qce-sweep-grid-v1\u{0}{name}");
    for cell in &cells {
        digest_input.push('\u{0}');
        digest_input.push_str(&format!("{:016x}", cell.key));
    }
    Ok(Grid {
        name,
        axes: axes.into_iter().map(|(a, _)| a).collect(),
        cells,
        spec_digest: fnv1a(&digest_input),
    })
}

/// Overlays one axis value onto a cell document.
fn apply_axis(doc: &mut BTreeMap<String, JsonValue>, axis: &str, value: &JsonValue) -> Result<()> {
    let bad = |what: &str| SweepError::spec(format!("axis {axis:?}: {what}"));
    match axis {
        "bits" => {
            let bits = value
                .as_u64()
                .ok_or_else(|| bad("values must be integers"))?;
            let quant = obj_entry(doc, "flow")?
                .get_mut("quant")
                .ok_or_else(|| bad("base flow needs a \"quant\" object to sweep bits"))?;
            let JsonValue::Obj(quant) = quant else {
                return Err(bad("base flow \"quant\" must be an object to sweep bits"));
            };
            quant.insert("bits".to_string(), JsonValue::Num(bits as f64));
        }
        "quant_method" => {
            let method = value
                .as_str()
                .ok_or_else(|| bad("values must be method-name strings"))?;
            let quant = obj_entry(doc, "flow")?
                .get_mut("quant")
                .ok_or_else(|| bad("base flow needs a \"quant\" object to sweep the method"))?;
            let JsonValue::Obj(quant) = quant else {
                return Err(bad("base flow \"quant\" must be an object"));
            };
            quant.insert("method".to_string(), JsonValue::Str(method.to_string()));
        }
        "quant" => {
            // A whole quant config (or null for a float release point).
            obj_entry(doc, "flow")?.insert("quant".to_string(), value.clone());
        }
        "lambda" => {
            let lambda = value
                .as_f64()
                .ok_or_else(|| bad("values must be numbers"))?;
            let flow = obj_entry(doc, "flow")?;
            let grouping = flow.entry("grouping".to_string()).or_insert_with(|| {
                // The flow default is the paper's layer-wise [0, 0, λ].
                let mut g = BTreeMap::new();
                g.insert("kind".to_string(), JsonValue::Str("layer_wise".into()));
                g.insert(
                    "lambdas".to_string(),
                    JsonValue::Arr(vec![
                        JsonValue::Num(0.0),
                        JsonValue::Num(0.0),
                        JsonValue::Num(0.0),
                    ]),
                );
                JsonValue::Obj(g)
            });
            let JsonValue::Obj(grouping) = grouping else {
                return Err(bad("base flow \"grouping\" must be an object"));
            };
            match grouping.get("kind").and_then(JsonValue::as_str) {
                Some("uniform") => {
                    grouping.insert("lambda".to_string(), JsonValue::Num(lambda));
                }
                Some("layer_wise") => {
                    let Some(JsonValue::Arr(lambdas)) = grouping.get_mut("lambdas") else {
                        return Err(bad("layer_wise grouping needs \"lambdas\""));
                    };
                    let Some(last) = lambdas.last_mut() else {
                        return Err(bad("layer_wise \"lambdas\" is empty"));
                    };
                    *last = JsonValue::Num(lambda);
                }
                Some("benign") => {
                    return Err(bad("a benign base grouping has no λ to sweep"));
                }
                _ => return Err(bad("base grouping has an unknown \"kind\"")),
            }
        }
        "lambda_schedule" => {
            let schedule = value
                .as_str()
                .ok_or_else(|| bad("values must be \"warmup\" or \"constant\""))?;
            obj_entry(doc, "flow")?.insert(
                "lambda_schedule".to_string(),
                JsonValue::Str(schedule.to_string()),
            );
        }
        "channel" => {
            let resolved = match value {
                JsonValue::Str(kind) => {
                    let mut c = BTreeMap::new();
                    c.insert("kind".to_string(), JsonValue::Str(kind.clone()));
                    JsonValue::Obj(c)
                }
                JsonValue::Obj(_) => value.clone(),
                _ => return Err(bad("values must be channel names or objects")),
            };
            obj_entry(doc, "flow")?.insert("channel".to_string(), resolved);
        }
        "defense" => match value {
            JsonValue::Null | JsonValue::Str(_) if value_label(value) == "none" => {
                obj_entry(doc, "flow")?.remove("defense");
            }
            JsonValue::Obj(_) => {
                obj_entry(doc, "flow")?.insert("defense".to_string(), value.clone());
            }
            _ => {
                return Err(bad(
                    "values must be null, \"none\", or a defense plan object",
                ))
            }
        },
        "fault" => match value {
            JsonValue::Null | JsonValue::Str(_) if value_label(value) == "none" => {
                doc.remove("fault");
            }
            JsonValue::Obj(_) => {
                doc.insert("fault".to_string(), value.clone());
            }
            _ => return Err(bad("values must be null, \"none\", or a fault plan object")),
        },
        "dataset_count" | "dataset_size" => {
            let n = value
                .as_u64()
                .ok_or_else(|| bad("values must be integers"))?;
            let field = if axis == "dataset_count" {
                "count"
            } else {
                "size"
            };
            obj_entry(doc, "dataset")?.insert(field.to_string(), JsonValue::Num(n as f64));
        }
        "seed" => {
            let seed = value
                .as_u64()
                .ok_or_else(|| bad("values must be integers"))?;
            obj_entry(doc, "flow")?.insert("seed".to_string(), JsonValue::Num(seed as f64));
        }
        "epochs" => {
            let epochs = value
                .as_u64()
                .ok_or_else(|| bad("values must be integers"))?;
            obj_entry(doc, "flow")?.insert("epochs".to_string(), JsonValue::Num(epochs as f64));
        }
        other => {
            return Err(SweepError::spec(format!(
                "unknown axis {other:?} (known: {})",
                AXIS_NAMES.join(", ")
            )))
        }
    }
    Ok(())
}

/// Mutable access to a top-level object member that parse-time
/// validation already guaranteed exists.
fn obj_entry<'a>(
    doc: &'a mut BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<&'a mut BTreeMap<String, JsonValue>> {
    match doc.get_mut(key) {
        Some(JsonValue::Obj(map)) => Ok(map),
        _ => Err(SweepError::spec(format!("\"{key}\" must be an object"))),
    }
}

/// A short human label for an axis value, used in reports: strings
/// verbatim, numbers compact, `null` as `none`, objects by their `name`
/// or `kind` (falling back to `seed`), arrays rendered.
fn value_label(value: &JsonValue) -> String {
    match value {
        JsonValue::Null => "none".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => {
            let mut s = String::new();
            write_num(&mut s, *n);
            s
        }
        JsonValue::Str(s) => s.clone(),
        JsonValue::Obj(map) => {
            for key in ["name", "kind"] {
                if let Some(JsonValue::Str(s)) = map.get(key) {
                    return s.clone();
                }
            }
            if let Some(seed) = map.get("seed").and_then(JsonValue::as_u64) {
                return format!("seed{seed}");
            }
            render(value)
        }
        JsonValue::Arr(_) => render(value),
    }
}

fn label_summary(labels: &[(String, String)]) -> String {
    labels
        .iter()
        .map(|(a, v)| format!("{a}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders a [`JsonValue`] back to compact JSON. Object keys come out in
/// `BTreeMap` order; the canonical cell form is [`Scenario::to_json`],
/// not this, so render order only needs to be *stable*, which it is.
pub(crate) fn render(value: &JsonValue) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => write_num(out, *n),
        JsonValue::Str(s) => write_escaped(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                render_into(v, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) const TINY_BASE: &str = r#"
        "base": {"dataset": {"kind": "cifar", "size": 8, "classes": 2,
                             "count": 32, "seed": 5},
                 "flow": {"epochs": 1, "batch_size": 16,
                          "grouping": {"kind": "uniform", "lambda": 5},
                          "band": {"kind": "first_n"},
                          "quant": {"method": "kmeans", "bits": 4,
                                    "finetune_epochs": 0}}}"#;

    fn grid_json(axes: &str) -> String {
        format!(r#"{{"name": "t", {TINY_BASE}, "axes": {axes}}}"#)
    }

    #[test]
    fn expansion_is_row_major_with_last_axis_fastest() {
        let grid = parse_grid(&grid_json(
            r#"[{"axis": "bits", "values": [2, 4]},
                {"axis": "lambda", "values": [3, 5, 10]}]"#,
        ))
        .unwrap();
        assert_eq!(grid.cells.len(), 6);
        assert_eq!(grid.axes, ["bits", "lambda"]);
        let labels: Vec<String> = grid.cells.iter().map(|c| label_summary(&c.axes)).collect();
        assert_eq!(
            labels,
            [
                "bits=2 lambda=3",
                "bits=2 lambda=5",
                "bits=2 lambda=10",
                "bits=4 lambda=3",
                "bits=4 lambda=5",
                "bits=4 lambda=10"
            ]
        );
        assert_eq!(grid.cells[0].name, "c0000");
        assert_eq!(grid.cells[5].name, "c0005");
        assert_eq!(grid.cells[3].scenario.flow.quant.unwrap().bits, 4);
        assert_eq!(
            grid.cells[2].scenario.flow.grouping,
            qce::Grouping::Uniform(10.0)
        );
    }

    #[test]
    fn invalid_axis_name_is_rejected() {
        let err = parse_grid(&grid_json(r#"[{"axis": "temperature", "values": [1]}]"#))
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("unknown axis") && err.contains("temperature"),
            "{err}"
        );
    }

    #[test]
    fn empty_axis_is_rejected() {
        let err = parse_grid(&grid_json(r#"[{"axis": "bits", "values": []}]"#))
            .unwrap_err()
            .to_string();
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn duplicate_axis_and_duplicate_cells_are_rejected() {
        let err = parse_grid(&grid_json(
            r#"[{"axis": "bits", "values": [2]}, {"axis": "bits", "values": [4]}]"#,
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("duplicate axis"), "{err}");

        let err = parse_grid(&grid_json(r#"[{"axis": "bits", "values": [2, 2]}]"#))
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate cells"), "{err}");
    }

    #[test]
    fn oversized_grids_are_rejected() {
        let values: Vec<String> = (1..=30).map(|v| v.to_string()).collect();
        let axes = format!(
            r#"[{{"axis": "seed", "values": [{}]}},
                {{"axis": "epochs", "values": [1, 2]}},
                {{"axis": "bits", "values": [2, 3, 4, 5, 6, 7, 8, 9, 10]}}]"#,
            values.join(",")
        );
        let err = parse_grid(&format!(
            r#"{{"name": "big", "max_cells": 256, {TINY_BASE}, "axes": {axes}}}"#
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("over the limit of 256"), "{err}");
        // The default ceiling applies when max_cells is absent…
        let err = parse_grid(&grid_json(&axes)).unwrap_err().to_string();
        assert!(err.contains("over the limit of 512"), "{err}");
        // …and max_cells cannot exceed the hard ceiling.
        let err = parse_grid(&format!(
            r#"{{"name": "big", "max_cells": 100000, {TINY_BASE}, "axes": {axes}}}"#
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("max_cells"), "{err}");
    }

    #[test]
    fn cell_keys_are_content_addressed_not_positional() {
        let a = parse_grid(&grid_json(r#"[{"axis": "bits", "values": [2, 4]}]"#)).unwrap();
        let b = parse_grid(&grid_json(r#"[{"axis": "bits", "values": [3, 2, 4]}]"#)).unwrap();
        // bits=2 sits at index 0 in grid a and index 1 in grid b, with
        // the same key either way.
        assert_eq!(a.cells[0].key, b.cells[1].key);
        assert_eq!(a.cells[1].key, b.cells[2].key);
        assert_ne!(a.spec_digest, b.spec_digest);
    }

    #[test]
    fn fault_defense_and_schedule_axes_resolve() {
        let grid = parse_grid(&grid_json(
            r#"[{"axis": "lambda_schedule", "values": ["warmup", "constant"]},
                {"axis": "fault", "values": [null, {"seed": 3, "faults":
                    [{"kind": "bit_flip", "rate": 0.001}]}]},
                {"axis": "defense", "values": ["none"]}]"#,
        ))
        .unwrap();
        assert_eq!(grid.cells.len(), 4);
        assert!(grid.cells[0].scenario.fault.is_none());
        assert!(grid.cells[1].scenario.fault.is_some());
        assert_eq!(
            grid.cells[2].scenario.flow.lambda_schedule,
            qce::LambdaSchedule::Constant
        );
        assert_eq!(grid.cells[1].axes[1].1, "seed3");
        // All four cells get distinct keys (the fault axis lives outside
        // FlowConfig but inside the scenario canonical form).
        let mut keys: Vec<u64> = grid.cells.iter().map(|c| c.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn shards_partition_the_grid() {
        let grid = parse_grid(&grid_json(
            r#"[{"axis": "bits", "values": [2, 3, 4, 5]},
                {"axis": "lambda", "values": [3, 5, 8]}]"#,
        ))
        .unwrap();
        for shards in 1..=5u64 {
            let mut union: Vec<usize> = (0..shards)
                .flat_map(|s| grid.shard_cells(s, shards))
                .map(|c| c.index)
                .collect();
            union.sort_unstable();
            let full: Vec<usize> = (0..grid.cells.len()).collect();
            assert_eq!(union, full, "shards={shards}");
        }
    }

    #[test]
    fn malformed_cells_name_their_axes() {
        // Sweeping bits without a base quant config is a spec error.
        let err = parse_grid(
            r#"{"name": "t",
                 "base": {"dataset": {"kind": "cifar", "size": 8, "classes": 2,
                                        "count": 32, "seed": 5},
                           "flow": {"quant": null}},
                 "axes": [{"axis": "bits", "values": [2]}]}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("quant"), "{err}");
    }
}
