//! End-to-end sweep properties — the acceptance surface of the sweep
//! orchestrator:
//!
//! * a ≥64-cell sweep killed mid-run (via `limit`) and resumed merges
//!   to the byte-identical report of an uninterrupted run;
//! * `--shard 0/2` + `--shard 1/2` partials merge to the byte-identical
//!   single-process report, from a cold cache and at different worker
//!   counts;
//! * shard assignment partitions the grid exactly (proptest);
//! * every cell's content-addressed key is distinct — including cells
//!   that differ only in swept-axis state living *outside* `FlowConfig`
//!   (fault plans) or added to it this release (λ schedules), the
//!   regression surface of stage-cache key collisions.

use std::path::PathBuf;

use proptest::prelude::*;
use qce_store::StageCache;
use qce_sweep::{merge_partials, parse_grid, partial_json, run_cells, ExecOptions, Grid};

/// 64 cells over five axes; 2·2 = 4 distinct trainings (λ × schedule),
/// everything else reuses their checkpoints. The dataset is the
/// smallest geometry the flow accepts so the whole matrix stays fast.
const GRID_64: &str = r#"{
  "name": "resume-proof",
  "base": {
    "dataset": {"kind": "cifar", "size": 8, "classes": 2, "count": 32, "seed": 5},
    "flow": {"epochs": 1, "batch_size": 16,
             "grouping": {"kind": "uniform", "lambda": 5},
             "band": {"kind": "first_n"},
             "quant": {"method": "kmeans", "bits": 4, "finetune_epochs": 0}}
  },
  "axes": [
    {"axis": "lambda", "values": [3, 5]},
    {"axis": "lambda_schedule", "values": ["warmup", "constant"]},
    {"axis": "bits", "values": [2, 4]},
    {"axis": "quant_method", "values": ["kmeans", "linear"]},
    {"axis": "fault", "values": [null,
        {"seed": 3, "faults": [{"kind": "bit_flip", "rate": 0.002}]},
        {"seed": 3, "faults": [{"kind": "prune", "fraction": 0.25}]},
        {"seed": 4, "faults": [{"kind": "gaussian_noise", "fraction": 0.05}]}]}
  ]
}"#;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qce-sweep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn exec(cache: &StageCache, workers: usize, limit: Option<usize>) -> ExecOptions {
    ExecOptions {
        workers,
        cache: Some(cache.clone()),
        limit,
    }
}

/// Runs one shard and renders its partial document.
fn shard_partial(
    grid: &Grid,
    shard: u64,
    shards: u64,
    cache: &StageCache,
    workers: usize,
) -> String {
    let cells = grid.shard_cells(shard, shards);
    let runs = run_cells(&cells, &exec(cache, workers, None)).expect("shard run");
    partial_json(grid, shard, shards, &runs)
}

#[test]
fn grid_expands_to_64_distinct_cells() {
    let grid = parse_grid(GRID_64).expect("grid");
    assert_eq!(grid.cells.len(), 64);
    let mut keys: Vec<u64> = grid.cells.iter().map(|c| c.key).collect();
    keys.sort_unstable();
    keys.dedup();
    // Distinct keys even for cells that differ only in the λ schedule
    // (new FlowConfig field) or the fault plan (outside FlowConfig) —
    // the stage-cache collision regression this release fixes.
    assert_eq!(keys.len(), 64, "cell keys must be pairwise distinct");
}

#[test]
fn killed_and_resumed_sweep_merges_byte_identical_to_uninterrupted() {
    let grid = parse_grid(GRID_64).expect("grid");

    // Reference: uninterrupted single-process run, 4 workers.
    let cache_a = StageCache::at(tmp_dir("uninterrupted"));
    let reference = merge_partials(&[shard_partial(&grid, 0, 1, &cache_a, 4)])
        .expect("merge")
        .render_json();

    // Killed mid-run: only the first 13 cells complete, then the
    // process "dies". The resumed run (different worker count on
    // purpose) replays those 13 from the whole-cell cache and computes
    // the rest.
    let cache_b = StageCache::at(tmp_dir("resumed"));
    let first = run_cells(&grid.cells, &exec(&cache_b, 2, Some(13))).expect("limited run");
    assert_eq!(first.len(), 13);
    assert!(first.iter().all(|r| !r.cached), "cold cache must not hit");

    let resumed = run_cells(&grid.cells, &exec(&cache_b, 1, None)).expect("resumed run");
    assert_eq!(resumed.len(), 64);
    assert_eq!(
        resumed.iter().filter(|r| r.cached).count(),
        13,
        "exactly the killed run's finished cells replay from cache"
    );
    let report_b = merge_partials(&[partial_json(&grid, 0, 1, &resumed)])
        .expect("merge")
        .render_json();
    assert_eq!(reference, report_b, "resumed report must be byte-identical");

    // Warm re-run: everything answers from the whole-cell cache and the
    // report bytes still hold.
    let warm = run_cells(&grid.cells, &exec(&cache_b, 4, None)).expect("warm run");
    assert!(
        warm.iter().all(|r| r.cached),
        "warm re-run must be all hits"
    );
    let report_warm = merge_partials(&[partial_json(&grid, 0, 1, &warm)])
        .expect("merge")
        .render_json();
    assert_eq!(reference, report_warm);

    for dir in [cache_a.dir(), cache_b.dir()] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn sharded_runs_merge_byte_identical_to_single_process() {
    let grid = parse_grid(GRID_64).expect("grid");

    let cache_single = StageCache::at(tmp_dir("single"));
    let single = merge_partials(&[shard_partial(&grid, 0, 1, &cache_single, 2)])
        .expect("merge")
        .render_json();

    // Two shards, separate cold caches (nothing shared but the spec),
    // different worker counts, merged in reverse order.
    let cache_s0 = StageCache::at(tmp_dir("shard0"));
    let cache_s1 = StageCache::at(tmp_dir("shard1"));
    let p0 = shard_partial(&grid, 0, 2, &cache_s0, 1);
    let p1 = shard_partial(&grid, 1, 2, &cache_s1, 3);
    let merged = merge_partials(&[p1, p0]).expect("merge").render_json();

    assert_eq!(single, merged, "sharded merge must be byte-identical");
    assert!(merged.contains("\"digest\":\""));

    for dir in [cache_single.dir(), cache_s0.dir(), cache_s1.dir()] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

// Shard assignment is a pure function of cell content: for any shard
// count the shards are disjoint and their union is the whole grid, and
// membership never depends on expansion order.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn shards_partition_the_grid_for_any_shard_count(shards in 1u64..9) {
        let grid = parse_grid(GRID_64).expect("grid");
        let mut union: Vec<usize> = Vec::new();
        for shard in 0..shards {
            let cells = grid.shard_cells(shard, shards);
            for cell in &cells {
                prop_assert_eq!(cell.key % shards, shard);
            }
            union.extend(cells.iter().map(|c| c.index));
        }
        let mut sorted = union.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), union.len(), "shards must not overlap");
        prop_assert_eq!(sorted, (0..grid.cells.len()).collect::<Vec<_>>());
    }
}
