//! Strict JSONL trace validation — the promoted successor of the old
//! `trace_check` example, with structural checks the schema-only
//! checker could not make:
//!
//! - dangling parent ids (a `span_start` naming a parent that never
//!   started),
//! - non-monotonic ordering (`seq` must strictly ascend, `t_us` must
//!   never decrease),
//! - duplicate ids (a `span_start` reusing a still-open id, or a
//!   `span_end` for a span that is not open),
//! - spans that never close, empty traces, and files cut mid-line.
//!
//! [`ValidateOptions::partial`] relaxes exactly the two abort artifacts
//! (open spans, missing trailing newline) so the analyzable prefix of a
//! killed run still validates.

use std::collections::{BTreeMap, BTreeSet};

use qce_telemetry::json::{parse, JsonValue};

use crate::{ObsError, Result};

/// Validation knobs.
#[derive(Debug, Clone, Default)]
pub struct ValidateOptions {
    /// Accept the trace an aborted run leaves behind: open spans and a
    /// missing trailing newline are tolerated; every other rule still
    /// applies to the readable prefix.
    pub partial: bool,
    /// Span names that must appear as both `span_start` and `span_end`.
    pub expected_spans: Vec<String>,
}

/// What a successful validation saw.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationSummary {
    /// Parseable events.
    pub events: usize,
    /// Distinct span names started.
    pub started: usize,
    /// Distinct span names ended.
    pub ended: usize,
    /// Spans still open at end of stream (only non-zero in partial
    /// mode).
    pub open: usize,
    /// Whether a `manifest` event was present.
    pub has_manifest: bool,
}

fn need(n: usize, ev: &str, v: &JsonValue, keys: &[&str]) -> Result<()> {
    for k in keys {
        if v.get(k).is_none() {
            return Err(ObsError::Invalid(format!(
                "line {n}: {ev} event missing \"{k}\""
            )));
        }
    }
    Ok(())
}

/// Validates a trace body against the full rule set.
pub fn validate(body: &str, opts: &ValidateOptions) -> Result<ValidationSummary> {
    if !body.is_empty() && !body.ends_with('\n') && !opts.partial {
        return Err(ObsError::Invalid(
            "does not end in a newline — truncated trace (interrupted write?)".to_string(),
        ));
    }
    let mut started: BTreeSet<String> = BTreeSet::new();
    let mut ended: BTreeSet<String> = BTreeSet::new();
    let mut seen_ids: BTreeSet<u64> = BTreeSet::new();
    let mut open: BTreeMap<u64, String> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;
    let mut last_t: Option<u64> = None;
    let mut summary = ValidationSummary::default();
    let complete_lines: usize = body.lines().count();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = i + 1;
        let v = match parse(line) {
            Ok(v) => v,
            // In partial mode the final line may be a cut-off tail.
            Err(_) if opts.partial && n == complete_lines => continue,
            Err(e) => {
                return Err(ObsError::Invalid(format!(
                    "line {n}: {e} (truncated trace?)"
                )))
            }
        };
        summary.events += 1;
        if let Some(seq) = v.get("seq").and_then(JsonValue::as_u64) {
            if let Some(prev) = last_seq {
                if seq <= prev {
                    return Err(ObsError::Invalid(format!(
                        "line {n}: seq went {prev} -> {seq} (non-monotonic event order)"
                    )));
                }
            }
            last_seq = Some(seq);
        }
        if let Some(t) = v.get("t_us").and_then(JsonValue::as_u64) {
            if let Some(prev) = last_t {
                if t < prev {
                    return Err(ObsError::Invalid(format!(
                        "line {n}: t_us went {prev} -> {t} (non-monotonic timestamps)"
                    )));
                }
            }
            last_t = Some(t);
        }
        let ev = v
            .get("ev")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ObsError::Invalid(format!("line {n}: missing \"ev\"")))?
            .to_string();
        match ev.as_str() {
            "init" => need(n, &ev, &v, &["level", "pid"])?,
            "log" => need(n, &ev, &v, &["level", "msg", "t_us"])?,
            "span_start" => {
                need(n, &ev, &v, &["id", "name", "thread", "t_us"])?;
                let id = v.get("id").and_then(JsonValue::as_u64).ok_or_else(|| {
                    ObsError::Invalid(format!("line {n}: span_start id is not an integer"))
                })?;
                if open.contains_key(&id) {
                    return Err(ObsError::Invalid(format!(
                        "line {n}: span_start reuses still-open id {id}"
                    )));
                }
                if let Some(p) = v.get("parent").and_then(JsonValue::as_u64) {
                    if !seen_ids.contains(&p) {
                        return Err(ObsError::Invalid(format!(
                            "line {n}: span_start id {id} has dangling parent id {p} \
                             (never started)"
                        )));
                    }
                }
                let name = v
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string();
                started.insert(name.clone());
                seen_ids.insert(id);
                open.insert(id, name);
            }
            "span_end" => {
                need(n, &ev, &v, &["id", "name", "dur_us", "t_us"])?;
                let id = v.get("id").and_then(JsonValue::as_u64).ok_or_else(|| {
                    ObsError::Invalid(format!("line {n}: span_end id is not an integer"))
                })?;
                let Some(open_name) = open.remove(&id) else {
                    return Err(ObsError::Invalid(format!(
                        "line {n}: span_end for id {id} which is not open"
                    )));
                };
                let name = v
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default();
                if name != open_name {
                    return Err(ObsError::Invalid(format!(
                        "line {n}: span_end id {id} is named {name:?} but started as \
                         {open_name:?}"
                    )));
                }
                ended.insert(name.to_string());
            }
            "manifest" => {
                need(
                    n,
                    &ev,
                    &v,
                    &["config_hash", "seed", "threads", "stages", "metrics"],
                )?;
                summary.has_manifest = true;
            }
            other => {
                return Err(ObsError::Invalid(format!(
                    "line {n}: unknown event kind {other:?}"
                )))
            }
        }
    }
    if summary.events == 0 {
        return Err(ObsError::Invalid("empty trace".to_string()));
    }
    if !open.is_empty() && !opts.partial {
        let (id, name) = open.iter().next().expect("non-empty");
        return Err(ObsError::Invalid(format!(
            "{} span(s) started but never ended (first: {name:?} id {id}) — truncated trace",
            open.len()
        )));
    }
    for name in &opts.expected_spans {
        if !started.contains(name) {
            return Err(ObsError::Invalid(format!(
                "expected span {name:?} never started"
            )));
        }
        if !ended.contains(name) {
            return Err(ObsError::Invalid(format!(
                "expected span {name:?} never ended"
            )));
        }
    }
    summary.started = started.len();
    summary.ended = ended.len();
    summary.open = open.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict() -> ValidateOptions {
        ValidateOptions::default()
    }

    const GOOD: &str = concat!(
        r#"{"ev":"init","level":"progress","pid":1,"seq":0,"t_us":0}"#,
        "\n",
        r#"{"ev":"span_start","id":1,"name":"flow.run","thread":"main","seq":1,"t_us":10}"#,
        "\n",
        r#"{"ev":"span_start","id":2,"parent":1,"name":"flow.train","thread":"main","seq":2,"t_us":20}"#,
        "\n",
        r#"{"ev":"log","level":"progress","msg":"hi","seq":3,"t_us":25}"#,
        "\n",
        r#"{"ev":"span_end","id":2,"name":"flow.train","dur_us":30,"seq":4,"t_us":50}"#,
        "\n",
        r#"{"ev":"span_end","id":1,"name":"flow.run","dur_us":90,"seq":5,"t_us":100}"#,
        "\n",
    );

    #[test]
    fn accepts_a_complete_trace() {
        let s = validate(GOOD, &strict()).unwrap();
        assert_eq!(s.events, 6);
        assert_eq!(s.started, 2);
        assert_eq!(s.ended, 2);
        assert_eq!(s.open, 0);
        assert!(!s.has_manifest);
    }

    #[test]
    fn expected_spans_are_enforced() {
        let mut opts = strict();
        opts.expected_spans = vec!["flow.run".to_string()];
        assert!(validate(GOOD, &opts).is_ok());
        opts.expected_spans = vec!["flow.quantize".to_string()];
        let e = validate(GOOD, &opts).unwrap_err().to_string();
        assert!(e.contains("never started"), "{e}");
    }

    #[test]
    fn rejects_empty_and_mid_line_truncation() {
        assert!(validate("", &strict()).is_err());
        let cut = &GOOD[..GOOD.len() - 5];
        let e = validate(cut, &strict()).unwrap_err().to_string();
        assert!(e.contains("newline"), "{e}");
        // Partial mode tolerates the cut tail line.
        let mut partial = strict();
        partial.partial = true;
        assert!(validate(cut, &partial).is_ok());
    }

    #[test]
    fn rejects_dangling_parent() {
        let body = concat!(
            r#"{"ev":"span_start","id":5,"parent":99,"name":"x","thread":"t","seq":0,"t_us":1}"#,
            "\n",
            r#"{"ev":"span_end","id":5,"name":"x","dur_us":1,"seq":1,"t_us":2}"#,
            "\n",
        );
        let e = validate(body, &strict()).unwrap_err().to_string();
        assert!(e.contains("dangling parent id 99"), "{e}");
    }

    #[test]
    fn rejects_non_monotonic_seq_and_t_us() {
        let bad_seq = concat!(
            r#"{"ev":"log","level":"off","msg":"a","seq":5,"t_us":1}"#,
            "\n",
            r#"{"ev":"log","level":"off","msg":"b","seq":4,"t_us":2}"#,
            "\n",
        );
        let e = validate(bad_seq, &strict()).unwrap_err().to_string();
        assert!(e.contains("non-monotonic event order"), "{e}");
        let bad_t = concat!(
            r#"{"ev":"log","level":"off","msg":"a","seq":1,"t_us":50}"#,
            "\n",
            r#"{"ev":"log","level":"off","msg":"b","seq":2,"t_us":10}"#,
            "\n",
        );
        let e = validate(bad_t, &strict()).unwrap_err().to_string();
        assert!(e.contains("non-monotonic timestamps"), "{e}");
    }

    #[test]
    fn rejects_never_closed_spans_unless_partial() {
        let body = concat!(
            r#"{"ev":"span_start","id":1,"name":"flow.run","thread":"main","seq":0,"t_us":1}"#,
            "\n",
        );
        let e = validate(body, &strict()).unwrap_err().to_string();
        assert!(e.contains("never ended"), "{e}");
        let mut partial = strict();
        partial.partial = true;
        let s = validate(body, &partial).unwrap();
        assert_eq!(s.open, 1);
    }

    #[test]
    fn rejects_id_reuse_and_unmatched_ends() {
        let reuse = concat!(
            r#"{"ev":"span_start","id":1,"name":"a","thread":"t","seq":0,"t_us":1}"#,
            "\n",
            r#"{"ev":"span_start","id":1,"name":"b","thread":"t","seq":1,"t_us":2}"#,
            "\n",
        );
        let e = validate(reuse, &strict()).unwrap_err().to_string();
        assert!(e.contains("reuses still-open id"), "{e}");
        let unmatched = concat!(
            r#"{"ev":"span_end","id":9,"name":"ghost","dur_us":1,"seq":0,"t_us":1}"#,
            "\n",
        );
        let e = validate(unmatched, &strict()).unwrap_err().to_string();
        assert!(e.contains("not open"), "{e}");
    }

    #[test]
    fn rejects_unknown_event_kinds_and_missing_fields() {
        let unknown = "{\"ev\":\"mystery\",\"seq\":0}\n";
        assert!(validate(unknown, &strict()).is_err());
        let missing = "{\"ev\":\"log\",\"level\":\"off\",\"seq\":0,\"t_us\":1}\n";
        let e = validate(missing, &strict()).unwrap_err().to_string();
        assert!(e.contains("missing \"msg\""), "{e}");
    }
}
