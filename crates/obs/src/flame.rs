//! Hand-rolled flamegraph rendering: folded stacks (the
//! `semicolon;separated;stack count` interchange format) and a
//! self-contained flame-chart SVG.
//!
//! The SVG is a *flame chart*, not a collapsed flamegraph: x position
//! is proportional to a span's start timestamp and width to its
//! duration, one row per nesting depth, so concurrency and stage order
//! stay visible. Colors are FNV-hashed from the span label, which keeps
//! them stable across renders and traces.

use std::collections::BTreeMap;

use qce_telemetry::fnv1a;

use crate::profile::self_time_us;
use crate::trace::Trace;

/// Collapses the trace into folded stacks: one `(stack, self_us)` pair
/// per distinct root-to-span path, stacks joined with `;`, weighted by
/// self-time so the leaf frames carry the time they actually burned.
/// Sorted by stack string for deterministic output.
#[must_use]
pub fn folded_stacks(trace: &Trace) -> Vec<(String, u64)> {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut stack: Vec<(usize, String)> = trace
        .roots
        .iter()
        .map(|&r| (r, trace.spans[r].name.clone()))
        .collect();
    while let Some((idx, path)) = stack.pop() {
        let own = self_time_us(trace, idx);
        if own > 0 {
            *folded.entry(path.clone()).or_insert(0) += own;
        }
        for &c in &trace.spans[idx].children {
            stack.push((c, format!("{path};{}", trace.spans[c].name)));
        }
    }
    folded.into_iter().collect()
}

fn color_for(name: &str) -> (u8, u8, u8) {
    // Warm flame palette: hash steers hue within red-orange-yellow.
    let h = fnv1a(name);
    let r = 200 + (h % 56) as u8;
    let g = 80 + ((h >> 8) % 120) as u8;
    let b = ((h >> 16) % 60) as u8;
    (r, g, b)
}

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders the trace as a self-contained flame-chart SVG.
#[must_use]
pub fn flamegraph_svg(trace: &Trace) -> String {
    const WIDTH: f64 = 1200.0;
    const ROW: f64 = 18.0;
    const PAD: f64 = 2.0;
    let t0 = trace.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    let t1 = trace
        .spans
        .iter()
        .enumerate()
        .map(|(i, s)| s.start_us.saturating_add(trace.effective_dur_us(i)))
        .max()
        .unwrap_or(t0 + 1)
        .max(t0 + 1);
    let scale = WIDTH / (t1 - t0) as f64;
    let depth_max = trace.spans.iter().map(|s| s.depth).max().unwrap_or(0);
    let height = (depth_max + 1) as f64 * ROW + 2.0 * PAD + 16.0;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         font-family=\"monospace\" font-size=\"11\">\n",
        WIDTH as u64 + 4,
        height as u64
    );
    svg.push_str(&format!(
        "<text x=\"2\" y=\"12\">qce trace flame chart — {} spans, {:.1} ms</text>\n",
        trace.spans.len(),
        (t1 - t0) as f64 / 1e3
    ));
    for (i, s) in trace.spans.iter().enumerate() {
        let dur = trace.effective_dur_us(i);
        let x = (s.start_us - t0) as f64 * scale + PAD;
        let w = (dur as f64 * scale).max(0.5);
        let y = s.depth as f64 * ROW + PAD + 16.0;
        let (r, g, b) = color_for(&s.name);
        let title = format!(
            "{} — {:.3} ms (self {:.3} ms){}",
            s.name,
            dur as f64 / 1e3,
            self_time_us(trace, i) as f64 / 1e3,
            if s.dur_us.is_none() {
                " [never closed]"
            } else {
                ""
            },
        );
        svg.push_str(&format!(
            "<g><title>{}</title><rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" \
             height=\"{:.1}\" fill=\"rgb({r},{g},{b})\" stroke=\"white\" stroke-width=\"0.4\"/>",
            xml_escape(&title),
            ROW - 2.0,
        ));
        if w >= 40.0 {
            svg.push_str(&format!(
                "<text x=\"{:.2}\" y=\"{:.1}\" fill=\"black\">{}</text>",
                x + 2.0,
                y + ROW - 6.0,
                xml_escape(&s.name),
            ));
        }
        svg.push_str("</g>\n");
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let body = concat!(
            r#"{"ev":"span_start","id":1,"name":"flow.run","thread":"main","seq":0,"t_us":0}"#,
            "\n",
            r#"{"ev":"span_start","id":2,"parent":1,"name":"flow.train","thread":"main","seq":1,"t_us":10}"#,
            "\n",
            r#"{"ev":"span_start","id":3,"parent":2,"name":"train.epoch","thread":"main","seq":2,"t_us":20}"#,
            "\n",
            r#"{"ev":"span_end","id":3,"name":"train.epoch","dur_us":50,"seq":3,"t_us":70}"#,
            "\n",
            r#"{"ev":"span_end","id":2,"name":"flow.train","dur_us":70,"seq":4,"t_us":80}"#,
            "\n",
            r#"{"ev":"span_end","id":1,"name":"flow.run","dur_us":100,"seq":5,"t_us":100}"#,
            "\n",
        );
        Trace::parse(body).unwrap()
    }

    #[test]
    fn folded_stacks_weight_by_self_time() {
        let t = sample();
        let folded = folded_stacks(&t);
        let as_map: std::collections::BTreeMap<&str, u64> =
            folded.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        assert_eq!(as_map["flow.run"], 30); // 100 − 70 child cover
        assert_eq!(as_map["flow.run;flow.train"], 20); // 70 − 50
        assert_eq!(as_map["flow.run;flow.train;train.epoch"], 50);
    }

    #[test]
    fn svg_is_well_formed_and_mentions_every_span() {
        let t = sample();
        let svg = flamegraph_svg(&t);
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect ").count(), 3);
        assert!(svg.contains("flow.train"));
        // Balanced groups.
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
    }

    #[test]
    fn colors_are_stable_per_label() {
        assert_eq!(color_for("flow.train"), color_for("flow.train"));
    }
}
