//! Trace diffing: pairs two traces label-by-label and ranks the deltas
//! so a regression report can name the specific span that moved.
//!
//! Labels are compared on **total** duration (sum over all spans with
//! that label), which is robust to count changes (e.g. more
//! `train.epoch` spans after a config change shows up as a delta on the
//! label, exactly what a regression hunt wants). Labels present in only
//! one trace are flagged rather than silently dropped — a disappeared
//! stage is as significant as a slowed one.

use std::collections::BTreeMap;

use crate::profile::profile;
use crate::trace::Trace;

/// Where a label appeared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Present in both traces.
    Common,
    /// Only in the baseline trace (stage disappeared).
    OnlyBaseline,
    /// Only in the fresh trace (stage appeared).
    OnlyFresh,
}

/// One label's movement between two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelDelta {
    /// Span label.
    pub name: String,
    /// Total milliseconds in the baseline trace (0 when absent).
    pub baseline_ms: f64,
    /// Total milliseconds in the fresh trace (0 when absent).
    pub fresh_ms: f64,
    /// `fresh_ms - baseline_ms`; positive means the label got slower.
    pub delta_ms: f64,
    /// `fresh_ms / baseline_ms` when the baseline is non-zero.
    pub ratio: Option<f64>,
    /// Span count in the baseline trace.
    pub baseline_count: usize,
    /// Span count in the fresh trace.
    pub fresh_count: usize,
    /// Presence classification.
    pub status: DeltaStatus,
}

/// Diffs two traces; sorted by `delta_ms` descending, so the top entry
/// is the label that regressed the most (improvements sink to the
/// bottom). Works on disjoint span sets: every label from either side
/// appears exactly once.
#[must_use]
pub fn diff_traces(baseline: &Trace, fresh: &Trace) -> Vec<LabelDelta> {
    let base: BTreeMap<String, (f64, usize)> = profile(baseline)
        .into_iter()
        .map(|p| (p.name, (p.total_ms, p.count)))
        .collect();
    let new: BTreeMap<String, (f64, usize)> = profile(fresh)
        .into_iter()
        .map(|p| (p.name, (p.total_ms, p.count)))
        .collect();
    let mut names: Vec<&String> = base.keys().chain(new.keys()).collect();
    names.sort();
    names.dedup();
    let mut out: Vec<LabelDelta> = names
        .into_iter()
        .map(|name| {
            let b = base.get(name);
            let f = new.get(name);
            let (b_ms, b_n) = b.copied().unwrap_or((0.0, 0));
            let (f_ms, f_n) = f.copied().unwrap_or((0.0, 0));
            LabelDelta {
                name: name.clone(),
                baseline_ms: b_ms,
                fresh_ms: f_ms,
                delta_ms: f_ms - b_ms,
                ratio: (b_ms > 0.0).then(|| f_ms / b_ms),
                baseline_count: b_n,
                fresh_count: f_n,
                status: match (b.is_some(), f.is_some()) {
                    (true, true) => DeltaStatus::Common,
                    (true, false) => DeltaStatus::OnlyBaseline,
                    _ => DeltaStatus::OnlyFresh,
                },
            }
        })
        .collect();
    out.sort_by(|a, b| b.delta_ms.total_cmp(&a.delta_ms).then(a.name.cmp(&b.name)));
    out
}

/// Renders a human-readable attribution report for the top `top`
/// movers. `harness bench-gate` prints this when a gate fails so the
/// failure names the span whose duration moved, not just a percentage.
#[must_use]
pub fn attribution_report(baseline: &Trace, fresh: &Trace, top: usize) -> String {
    let deltas = diff_traces(baseline, fresh);
    let mut out = String::from("span-level attribution (fresh vs baseline):\n");
    for d in deltas.iter().take(top.max(1)) {
        let line = match d.status {
            DeltaStatus::OnlyBaseline => format!(
                "  {:<28} {:>9.1} ms -> (absent)      [removed]",
                d.name, d.baseline_ms
            ),
            DeltaStatus::OnlyFresh => format!(
                "  {:<28} (absent)   -> {:>9.1} ms   [added]",
                d.name, d.fresh_ms
            ),
            DeltaStatus::Common => {
                let pct = d.ratio.map_or(String::from("   n/a"), |r| {
                    format!("{:+6.1}%", (r - 1.0) * 100.0)
                });
                format!(
                    "  {:<28} {:>9.1} ms -> {:>9.1} ms  ({:+.1} ms, {pct})",
                    d.name, d.baseline_ms, d.fresh_ms, d.delta_ms
                )
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    if let Some(worst) = deltas.first().filter(|d| d.delta_ms > 0.0) {
        out.push_str(&format!(
            "top regression: {} ({:+.1} ms)\n",
            worst.name, worst.delta_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with(stages: &[(&str, u64)]) -> Trace {
        // One root per label, sequential, closed.
        let mut body = String::new();
        let mut t = 0u64;
        for (i, (name, dur)) in stages.iter().enumerate() {
            let id = i as u64 + 1;
            body += &format!(
                "{{\"ev\":\"span_start\",\"id\":{id},\"name\":\"{name}\",\"thread\":\"main\",\"seq\":{},\"t_us\":{t}}}\n",
                2 * i
            );
            t += dur;
            body += &format!(
                "{{\"ev\":\"span_end\",\"id\":{id},\"name\":\"{name}\",\"dur_us\":{dur},\"seq\":{},\"t_us\":{t}}}\n",
                2 * i + 1
            );
        }
        Trace::parse(&body).unwrap()
    }

    #[test]
    fn doctored_trace_names_slowed_stage_as_top_regression() {
        let baseline = trace_with(&[
            ("flow.select", 1_000),
            ("flow.train", 50_000),
            ("flow.quantize", 5_000),
            ("flow.evaluate", 8_000),
        ]);
        // Doctored: quantize slowed 5 ms → 45 ms, train slightly faster.
        let fresh = trace_with(&[
            ("flow.select", 1_000),
            ("flow.train", 49_000),
            ("flow.quantize", 45_000),
            ("flow.evaluate", 8_000),
        ]);
        let deltas = diff_traces(&baseline, &fresh);
        assert_eq!(deltas[0].name, "flow.quantize");
        assert!((deltas[0].delta_ms - 40.0).abs() < 1e-9);
        assert_eq!(deltas[0].status, DeltaStatus::Common);
        let report = attribution_report(&baseline, &fresh, 3);
        assert!(
            report.contains("top regression: flow.quantize"),
            "report:\n{report}"
        );
    }

    #[test]
    fn disjoint_span_sets_flag_added_and_removed() {
        let baseline = trace_with(&[("old.stage", 10_000)]);
        let fresh = trace_with(&[("new.stage", 12_000)]);
        let deltas = diff_traces(&baseline, &fresh);
        assert_eq!(deltas.len(), 2);
        let added = deltas.iter().find(|d| d.name == "new.stage").unwrap();
        let removed = deltas.iter().find(|d| d.name == "old.stage").unwrap();
        assert_eq!(added.status, DeltaStatus::OnlyFresh);
        assert_eq!(added.baseline_count, 0);
        assert_eq!(added.ratio, None);
        assert_eq!(removed.status, DeltaStatus::OnlyBaseline);
        assert!((removed.delta_ms + 10.0).abs() < 1e-9);
        let report = attribution_report(&baseline, &fresh, 5);
        assert!(report.contains("[added]"), "{report}");
        assert!(report.contains("[removed]"), "{report}");
    }

    #[test]
    fn improvements_sink_and_do_not_claim_top_regression() {
        let baseline = trace_with(&[("a", 30_000), ("b", 20_000)]);
        let fresh = trace_with(&[("a", 10_000), ("b", 20_000)]);
        let deltas = diff_traces(&baseline, &fresh);
        assert_eq!(deltas.last().unwrap().name, "a");
        let report = attribution_report(&baseline, &fresh, 2);
        assert!(!report.contains("top regression"), "{report}");
    }
}
