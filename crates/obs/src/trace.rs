//! Trace model: parses a `QCE_TRACE` JSONL stream into a span forest.
//!
//! Parsing here is deliberately tolerant — unreadable lines are counted
//! and skipped, open spans are kept with an unknown duration — so the
//! profile/flame/diff layers work on the analyzable prefix an aborted
//! run leaves behind. Strictness lives in [`mod@crate::validate`].

use std::collections::HashMap;
use std::path::Path;

use qce_telemetry::json::{parse, JsonValue};

use crate::{ObsError, Result};

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Stable span id from the trace.
    pub id: u64,
    /// Parent span id, when the span was nested.
    pub parent: Option<u64>,
    /// Span label (e.g. `flow.train`).
    pub name: String,
    /// Thread attribution string from the emitting thread.
    pub thread: String,
    /// Start timestamp, microseconds since telemetry init.
    pub start_us: u64,
    /// Closed duration in microseconds; `None` when the span never
    /// ended (aborted run).
    pub dur_us: Option<u64>,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Indices into [`Trace::spans`] of direct children, in start order.
    pub children: Vec<usize>,
}

impl SpanRec {
    /// End timestamp for closed spans.
    #[must_use]
    pub fn end_us(&self) -> Option<u64> {
        self.dur_us.map(|d| self.start_us.saturating_add(d))
    }
}

/// A parsed trace: the span forest plus stream-level bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Every span seen, in `span_start` order.
    pub spans: Vec<SpanRec>,
    /// Indices of spans with no (resolvable) parent.
    pub roots: Vec<usize>,
    /// Total parseable events in the stream (all kinds).
    pub events: usize,
    /// `log` events seen.
    pub logs: usize,
    /// Lines that failed to parse and were skipped (truncation tail).
    pub skipped: usize,
    /// The `manifest` event, when the run completed far enough to
    /// emit one.
    pub manifest: Option<JsonValue>,
    /// Largest `t_us` observed anywhere in the stream; open spans are
    /// assumed to have lasted until here.
    pub end_us: u64,
}

impl Trace {
    /// Parses a JSONL trace body.
    pub fn parse(body: &str) -> Result<Trace> {
        let mut t = Trace::default();
        let mut by_id: HashMap<u64, usize> = HashMap::new();
        for line in body.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(v) = parse(line) else {
                t.skipped += 1;
                continue;
            };
            t.events += 1;
            if let Some(ts) = v.get("t_us").and_then(JsonValue::as_u64) {
                t.end_us = t.end_us.max(ts);
            }
            match v.get("ev").and_then(JsonValue::as_str) {
                Some("span_start") => {
                    let (Some(id), Some(name)) = (
                        v.get("id").and_then(JsonValue::as_u64),
                        v.get("name").and_then(JsonValue::as_str),
                    ) else {
                        t.skipped += 1;
                        continue;
                    };
                    let idx = t.spans.len();
                    by_id.insert(id, idx);
                    t.spans.push(SpanRec {
                        id,
                        parent: v.get("parent").and_then(JsonValue::as_u64),
                        name: name.to_string(),
                        thread: v
                            .get("thread")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("?")
                            .to_string(),
                        start_us: v.get("t_us").and_then(JsonValue::as_u64).unwrap_or(0),
                        dur_us: None,
                        depth: 0,
                        children: Vec::new(),
                    });
                }
                Some("span_end") => {
                    if let (Some(id), Some(dur)) = (
                        v.get("id").and_then(JsonValue::as_u64),
                        v.get("dur_us").and_then(JsonValue::as_u64),
                    ) {
                        if let Some(&idx) = by_id.get(&id) {
                            t.spans[idx].dur_us = Some(dur);
                        }
                    }
                }
                Some("log") => t.logs += 1,
                Some("manifest") => t.manifest = Some(v),
                _ => {}
            }
        }
        if t.events == 0 {
            return Err(ObsError::Invalid("empty trace".to_string()));
        }
        // Link children; a parent id that never started (dropped prefix)
        // demotes the span to a root so the tree stays connected.
        for idx in 0..t.spans.len() {
            match t.spans[idx].parent.and_then(|p| by_id.get(&p).copied()) {
                Some(p_idx) if p_idx != idx => t.spans[p_idx].children.push(idx),
                _ => t.roots.push(idx),
            }
        }
        // Depths by iterative DFS from each root.
        let mut stack: Vec<(usize, usize)> = t.roots.iter().map(|&r| (r, 0)).collect();
        while let Some((idx, depth)) = stack.pop() {
            t.spans[idx].depth = depth;
            for &c in &t.spans[idx].children.clone() {
                stack.push((c, depth + 1));
            }
        }
        Ok(t)
    }

    /// Reads and parses a trace file.
    pub fn load(path: &Path) -> Result<Trace> {
        let body = std::fs::read_to_string(path)
            .map_err(|e| ObsError::Io(path.display().to_string(), e.to_string()))?;
        Trace::parse(&body)
    }

    /// Duration to charge a span with: its closed duration, or — for a
    /// span cut off by an abort — the stretch from its start to the
    /// last timestamp in the stream.
    #[must_use]
    pub fn effective_dur_us(&self, idx: usize) -> u64 {
        let s = &self.spans[idx];
        s.dur_us
            .unwrap_or_else(|| self.end_us.saturating_sub(s.start_us))
    }

    /// Index of the span with this id.
    #[must_use]
    pub fn index_of(&self, id: u64) -> Option<usize> {
        self.spans.iter().position(|s| s.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built trace: root (id 1) with two children (2, 3); 3 never
    /// closes; plus a log line and an unparseable tail.
    pub(crate) const SAMPLE: &str = concat!(
        r#"{"ev":"init","level":"progress","pid":1,"seq":0,"t_us":0}"#,
        "\n",
        r#"{"ev":"span_start","id":1,"name":"flow.run","thread":"main","seq":1,"t_us":10}"#,
        "\n",
        r#"{"ev":"span_start","id":2,"parent":1,"name":"flow.train","thread":"main","seq":2,"t_us":20}"#,
        "\n",
        r#"{"ev":"log","level":"progress","msg":"hi","seq":3,"t_us":25}"#,
        "\n",
        r#"{"ev":"span_end","id":2,"name":"flow.train","dur_us":30,"seq":4,"t_us":50}"#,
        "\n",
        r#"{"ev":"span_start","id":3,"parent":1,"name":"flow.evaluate","thread":"main","seq":5,"t_us":60}"#,
        "\n",
        r#"{"ev":"span_end","id":1,"name":"flow.run","dur_us":90,"seq":6,"t_us":100}"#,
        "\n",
        "{\"ev\":\"log\",\"level\"",
        "\n",
    );

    #[test]
    fn parses_forest_with_open_spans_and_skips_garbage() {
        let t = Trace::parse(SAMPLE).unwrap();
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.roots, vec![0]);
        assert_eq!(t.skipped, 1);
        assert_eq!(t.logs, 1);
        assert_eq!(t.end_us, 100);
        let root = &t.spans[0];
        assert_eq!(root.name, "flow.run");
        assert_eq!(root.children, vec![1, 2]);
        assert_eq!(root.depth, 0);
        assert_eq!(t.spans[1].depth, 1);
        assert_eq!(t.spans[1].dur_us, Some(30));
        // The open span is charged up to the last observed timestamp.
        assert_eq!(t.spans[2].dur_us, None);
        assert_eq!(t.effective_dur_us(2), 40);
        assert_eq!(t.index_of(3), Some(2));
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("\n\n").is_err());
    }

    #[test]
    fn dangling_parent_becomes_root() {
        let body = concat!(
            r#"{"ev":"span_start","id":7,"parent":99,"name":"orphan","thread":"t","seq":0,"t_us":5}"#,
            "\n",
            r#"{"ev":"span_end","id":7,"name":"orphan","dur_us":1,"seq":1,"t_us":6}"#,
            "\n",
        );
        let t = Trace::parse(body).unwrap();
        assert_eq!(t.roots, vec![0]);
        assert_eq!(t.spans[0].depth, 0);
    }
}
