//! `obs` — trace profiling CLI for `QCE_TRACE` JSONL streams.
//!
//! ```text
//! obs check <trace.jsonl> [--partial] [expected-span ...]
//! obs profile <trace.jsonl> [--top N]
//! obs critical <trace.jsonl>
//! obs flame <trace.jsonl> [--out chart.svg | --folded]
//! obs diff <baseline.jsonl> <fresh.jsonl> [--top N]
//! ```
//!
//! `check` also validates the sibling `*.manifest.json` when present
//! (mirroring the retired `trace_check` example). Exit codes: 0 ok,
//! 1 validation/regression evidence, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qce_obs::{
    attribution_report, critical_path, diff_traces, flamegraph_svg, folded_stacks, profile,
    validate, DeltaStatus, Trace, ValidateOptions,
};
use qce_telemetry::json::parse;

const USAGE: &str = "usage:
  obs check <trace.jsonl> [--partial] [expected-span ...]
  obs profile <trace.jsonl> [--top N]
  obs critical <trace.jsonl>
  obs flame <trace.jsonl> [--out chart.svg | --folded]
  obs diff <baseline.jsonl> <fresh.jsonl> [--top N]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("obs: {msg}");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Trace, String> {
    Trace::load(Path::new(path)).map_err(|e| e.to_string())
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut opts = ValidateOptions::default();
    let mut trace_path: Option<String> = None;
    for a in args {
        match a.as_str() {
            "--partial" => opts.partial = true,
            other if trace_path.is_none() => trace_path = Some(other.to_string()),
            other => opts.expected_spans.push(other.to_string()),
        }
    }
    let Some(trace_path) = trace_path else {
        return fail(USAGE);
    };
    let body = match std::fs::read_to_string(&trace_path) {
        Ok(b) => b,
        Err(e) => return fail(&format!("{trace_path}: {e}")),
    };
    let summary = match validate(&body, &opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs check: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Sibling manifest, when the run wrote one.
    let manifest = qce_telemetry::manifest_path_for(Path::new(&trace_path));
    if manifest.exists() {
        match std::fs::read_to_string(&manifest) {
            Ok(body) => match parse(body.trim()) {
                Ok(v) => {
                    for k in ["config_hash", "seed", "threads", "stages", "metrics"] {
                        if v.get(k).is_none() {
                            eprintln!(
                                "obs check: {}: manifest missing \"{k}\"",
                                manifest.display()
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                    println!("manifest ok: {}", manifest.display());
                }
                Err(e) => {
                    eprintln!("obs check: {}: {e}", manifest.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => return fail(&format!("{}: {e}", manifest.display())),
        }
    }
    println!(
        "trace ok: {} events, {} span labels started, {} ended{}{}",
        summary.events,
        summary.started,
        summary.ended,
        if summary.open > 0 {
            format!(", {} still open (partial)", summary.open)
        } else {
            String::new()
        },
        if summary.has_manifest {
            ", manifest event present"
        } else {
            ""
        },
    );
    ExitCode::SUCCESS
}

/// Parses `--top N` out of an argument list; returns remaining args.
fn take_top(args: &[String], default: usize) -> Result<(Vec<String>, usize), String> {
    let mut rest = Vec::new();
    let mut top = default;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--top" {
            let v = it.next().ok_or("--top needs a value")?;
            top = v.parse().map_err(|_| format!("--top: bad count {v:?}"))?;
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, top))
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let (rest, top) = match take_top(args, 20) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let [path] = rest.as_slice() else {
        return fail(USAGE);
    };
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let rows = profile(&trace);
    println!(
        "{:<28} {:>5} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "span", "count", "total_ms", "self_ms", "p50_ms", "p90_ms", "p99_ms"
    );
    for r in rows.iter().take(top) {
        println!(
            "{:<28} {:>5} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>9.2}{}",
            r.name,
            r.count,
            r.total_ms,
            r.self_ms,
            r.p50_ms,
            r.p90_ms,
            r.p99_ms,
            if r.open > 0 {
                format!("  ({} open)", r.open)
            } else {
                String::new()
            },
        );
    }
    ExitCode::SUCCESS
}

fn cmd_critical(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail(USAGE);
    };
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let path_entries = critical_path(&trace);
    if path_entries.is_empty() {
        eprintln!("obs critical: no spans in trace");
        return ExitCode::FAILURE;
    }
    println!("critical path ({} hops):", path_entries.len());
    for e in &path_entries {
        println!(
            "{:indent$}{} — {:.2} ms (self {:.2} ms)",
            "",
            e.name,
            e.dur_ms,
            e.self_ms,
            indent = 2 * e.depth,
        );
    }
    ExitCode::SUCCESS
}

fn cmd_flame(args: &[String]) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut folded = false;
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return fail("--out needs a path"),
            },
            "--folded" => folded = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return fail(&format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    let Some(path) = path else {
        return fail(USAGE);
    };
    let trace = match load(&path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    if folded {
        for (stack, us) in folded_stacks(&trace) {
            println!("{stack} {us}");
        }
        return ExitCode::SUCCESS;
    }
    let svg = flamegraph_svg(&trace);
    match out {
        Some(out) => match std::fs::write(&out, svg) {
            Ok(()) => {
                println!("wrote {} ({} spans)", out.display(), trace.spans.len());
                ExitCode::SUCCESS
            }
            Err(e) => fail(&format!("{}: {e}", out.display())),
        },
        None => {
            print!("{svg}");
            ExitCode::SUCCESS
        }
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let (rest, top) = match take_top(args, 10) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let [baseline, fresh] = rest.as_slice() else {
        return fail(USAGE);
    };
    let (base_t, fresh_t) = match (load(baseline), load(fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    print!("{}", attribution_report(&base_t, &fresh_t, top));
    let deltas = diff_traces(&base_t, &fresh_t);
    let moved = deltas
        .iter()
        .any(|d| d.delta_ms.abs() > 0.0 || d.status != DeltaStatus::Common);
    if !moved {
        println!("no movement: traces agree on every span label");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return fail(USAGE);
    };
    match cmd.as_str() {
        "check" => cmd_check(rest),
        "profile" => cmd_profile(rest),
        "critical" => cmd_critical(rest),
        "flame" => cmd_flame(rest),
        "diff" => cmd_diff(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command {other:?}\n{USAGE}")),
    }
}
