//! Per-label profiling and critical-path attribution.
//!
//! **Self-time** is a span's duration minus the union of its direct
//! children's intervals, with every child interval clamped into the
//! parent's own interval first — a child that outlives its parent (a
//! guard moved across scopes, or an abort that closed the parent early)
//! can therefore never drive self-time negative.
//!
//! **Percentiles** here are exact (computed over the sorted per-span
//! durations of a label), unlike the bucketed estimates
//! `qce_telemetry::HistogramSnapshot::percentile` gives for streaming
//! metrics.

use crate::trace::Trace;

/// Aggregated timing for one span label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelProfile {
    /// Span label.
    pub name: String,
    /// Number of spans with this label (open spans included).
    pub count: usize,
    /// Spans with this label that never closed.
    pub open: usize,
    /// Sum of durations, milliseconds.
    pub total_ms: f64,
    /// Sum of self-times (duration minus child cover), milliseconds.
    pub self_ms: f64,
    /// Exact median span duration, milliseconds.
    pub p50_ms: f64,
    /// Exact 90th-percentile span duration, milliseconds.
    pub p90_ms: f64,
    /// Exact 99th-percentile span duration, milliseconds.
    pub p99_ms: f64,
}

/// One hop of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathEntry {
    /// Span label.
    pub name: String,
    /// Nesting depth along the path (root = 0).
    pub depth: usize,
    /// The span's full duration, milliseconds.
    pub dur_ms: f64,
    /// The span's self-time, milliseconds.
    pub self_ms: f64,
}

/// Exact `q`-quantile of an **ascending-sorted** slice by linear
/// interpolation between the surrounding order statistics. `None` when
/// empty; a single sample (or an all-equal population) is returned
/// exactly for every `q`.
#[must_use]
pub fn percentile_exact(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Self-time of span `idx` in microseconds: effective duration minus
/// the union of its direct children's intervals clamped into the
/// span's own interval.
#[must_use]
pub fn self_time_us(trace: &Trace, idx: usize) -> u64 {
    let s = &trace.spans[idx];
    let dur = trace.effective_dur_us(idx);
    let (lo, hi) = (s.start_us, s.start_us.saturating_add(dur));
    let mut intervals: Vec<(u64, u64)> = s
        .children
        .iter()
        .map(|&c| {
            let cs = &trace.spans[c];
            let c_end = cs.start_us.saturating_add(trace.effective_dur_us(c));
            (cs.start_us.clamp(lo, hi), c_end.clamp(lo, hi))
        })
        .filter(|(a, b)| b > a)
        .collect();
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = lo;
    for (a, b) in intervals {
        let a = a.max(cursor);
        if b > a {
            covered += b - a;
            cursor = b;
        }
    }
    dur.saturating_sub(covered)
}

/// Aggregates every span by label; sorted by `self_ms` descending (the
/// label actually burning the time first), ties broken by name.
#[must_use]
pub fn profile(trace: &Trace) -> Vec<LabelProfile> {
    use std::collections::BTreeMap;
    struct Acc {
        durs_ms: Vec<f64>,
        self_ms: f64,
        open: usize,
    }
    let mut by_label: BTreeMap<&str, Acc> = BTreeMap::new();
    for idx in 0..trace.spans.len() {
        let s = &trace.spans[idx];
        let acc = by_label.entry(s.name.as_str()).or_insert(Acc {
            durs_ms: Vec::new(),
            self_ms: 0.0,
            open: 0,
        });
        acc.durs_ms.push(trace.effective_dur_us(idx) as f64 / 1e3);
        acc.self_ms += self_time_us(trace, idx) as f64 / 1e3;
        if s.dur_us.is_none() {
            acc.open += 1;
        }
    }
    let mut out: Vec<LabelProfile> = by_label
        .into_iter()
        .map(|(name, mut acc)| {
            acc.durs_ms.sort_by(f64::total_cmp);
            LabelProfile {
                name: name.to_string(),
                count: acc.durs_ms.len(),
                open: acc.open,
                total_ms: acc.durs_ms.iter().sum(),
                self_ms: acc.self_ms,
                p50_ms: percentile_exact(&acc.durs_ms, 0.50).unwrap_or(0.0),
                p90_ms: percentile_exact(&acc.durs_ms, 0.90).unwrap_or(0.0),
                p99_ms: percentile_exact(&acc.durs_ms, 0.99).unwrap_or(0.0),
            }
        })
        .collect();
    out.sort_by(|a, b| b.self_ms.total_cmp(&a.self_ms).then(a.name.cmp(&b.name)));
    out
}

/// Extracts the critical path: starting from the longest root span,
/// repeatedly descend into the longest child. Ties break on earlier
/// start then lower id, so the path is deterministic for a given trace.
#[must_use]
pub fn critical_path(trace: &Trace) -> Vec<CriticalPathEntry> {
    let longest = |candidates: &[usize]| -> Option<usize> {
        candidates.iter().copied().max_by(|&a, &b| {
            trace
                .effective_dur_us(a)
                .cmp(&trace.effective_dur_us(b))
                .then(trace.spans[b].start_us.cmp(&trace.spans[a].start_us))
                .then(trace.spans[b].id.cmp(&trace.spans[a].id))
        })
    };
    let mut path = Vec::new();
    let mut cur = longest(&trace.roots);
    while let Some(idx) = cur {
        path.push(CriticalPathEntry {
            name: trace.spans[idx].name.clone(),
            depth: path.len(),
            dur_ms: trace.effective_dur_us(idx) as f64 / 1e3,
            self_ms: self_time_us(trace, idx) as f64 / 1e3,
        });
        cur = longest(&trace.spans[idx].children);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(id: u64, parent: Option<u64>, name: &str, t: u64, seq: u64) -> String {
        let p = parent.map_or(String::new(), |p| format!("\"parent\":{p},"));
        format!(
            "{{\"ev\":\"span_start\",\"id\":{id},{p}\"name\":\"{name}\",\"thread\":\"main\",\"seq\":{seq},\"t_us\":{t}}}\n"
        )
    }

    fn end_line(id: u64, name: &str, dur: u64, t: u64, seq: u64) -> String {
        format!(
            "{{\"ev\":\"span_end\",\"id\":{id},\"name\":\"{name}\",\"dur_us\":{dur},\"seq\":{seq},\"t_us\":{t}}}\n"
        )
    }

    #[test]
    fn percentile_exact_edge_cases() {
        assert_eq!(percentile_exact(&[], 0.5), None);
        assert_eq!(percentile_exact(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile_exact(&[7.0], 0.5), Some(7.0));
        assert_eq!(percentile_exact(&[7.0], 1.0), Some(7.0));
        let equal = vec![3.0; 10];
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(percentile_exact(&equal, q), Some(3.0), "q={q}");
        }
        let v: Vec<f64> = (1..=101).map(f64::from).collect();
        assert_eq!(percentile_exact(&v, 0.5), Some(51.0));
        assert_eq!(percentile_exact(&v, 1.0), Some(101.0));
        assert_eq!(percentile_exact(&v, 0.0), Some(1.0));
    }

    #[test]
    fn self_time_with_children_overlapping_parent_end() {
        // Parent [0, 100]; child A [10, 40]; child B [80, 130] — B's
        // last 30 µs fall outside the parent and must be clamped away.
        let mut body = String::new();
        body += &span_line(1, None, "parent", 0, 0);
        body += &span_line(2, Some(1), "a", 10, 1);
        body += &end_line(2, "a", 30, 40, 2);
        body += &span_line(3, Some(1), "b", 80, 3);
        body += &end_line(1, "parent", 100, 100, 4);
        body += &end_line(3, "b", 50, 130, 5);
        let t = crate::Trace::parse(&body).unwrap();
        // parent self = 100 − (30 from A + 20 clamped from B) = 50.
        assert_eq!(self_time_us(&t, 0), 50);
        // Children fully cover themselves.
        assert_eq!(self_time_us(&t, 1), 30);
        assert_eq!(self_time_us(&t, 2), 50);
    }

    #[test]
    fn self_time_with_overlapping_children_counts_union_once() {
        // Parent [0, 100]; children [10, 60] and [40, 90] overlap by 20.
        let mut body = String::new();
        body += &span_line(1, None, "parent", 0, 0);
        body += &span_line(2, Some(1), "a", 10, 1);
        body += &span_line(3, Some(1), "b", 40, 2);
        body += &end_line(2, "a", 50, 60, 3);
        body += &end_line(3, "b", 50, 90, 4);
        body += &end_line(1, "parent", 100, 100, 5);
        let t = crate::Trace::parse(&body).unwrap();
        // union cover = [10, 90] = 80 → self = 20 (not 100 − 50 − 50).
        assert_eq!(self_time_us(&t, 0), 20);
    }

    #[test]
    fn profile_aggregates_and_ranks_by_self_time() {
        let mut body = String::new();
        body += &span_line(1, None, "flow.run", 0, 0);
        body += &span_line(2, Some(1), "train.epoch", 10, 1);
        body += &end_line(2, "train.epoch", 40, 50, 2);
        body += &span_line(3, Some(1), "train.epoch", 50, 3);
        body += &end_line(3, "train.epoch", 40, 90, 4);
        body += &end_line(1, "flow.run", 200, 200, 5);
        let t = crate::Trace::parse(&body).unwrap();
        let p = profile(&t);
        assert_eq!(p.len(), 2);
        // flow.run self = 200 − 80 = 120 µs → ranks first.
        assert_eq!(p[0].name, "flow.run");
        assert!((p[0].self_ms - 0.120).abs() < 1e-9);
        assert_eq!(p[1].name, "train.epoch");
        assert_eq!(p[1].count, 2);
        assert!((p[1].total_ms - 0.080).abs() < 1e-9);
        assert!((p[1].p50_ms - 0.040).abs() < 1e-9);
        assert_eq!(p[1].open, 0);
    }

    #[test]
    fn critical_path_descends_longest_children() {
        let mut body = String::new();
        body += &span_line(1, None, "flow.run", 0, 0);
        body += &span_line(2, Some(1), "flow.train", 10, 1);
        body += &span_line(3, Some(2), "train.epoch", 20, 2);
        body += &end_line(3, "train.epoch", 60, 80, 3);
        body += &end_line(2, "flow.train", 80, 90, 4);
        body += &span_line(4, Some(1), "flow.evaluate", 90, 5);
        body += &end_line(4, "flow.evaluate", 10, 100, 6);
        body += &end_line(1, "flow.run", 110, 110, 7);
        let t = crate::Trace::parse(&body).unwrap();
        let path = critical_path(&t);
        let names: Vec<&str> = path.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["flow.run", "flow.train", "train.epoch"]);
        assert_eq!(path[2].depth, 2);
    }
}
