//! Trace profiling for the qce workspace: turns raw `QCE_TRACE` JSONL
//! streams into actionable profiles.
//!
//! The analysis layers, bottom to top:
//!
//! - [`trace`] — parses a JSONL stream into a [`Trace`]: the span
//!   forest (parent links from the per-thread span stacks), log and
//!   manifest events, and per-span timing.
//! - [`mod@validate`] — a strict schema/structure validator (the promoted
//!   successor of the old `trace_check` example): per-event required
//!   fields plus dangling parent ids, non-monotonic `seq`/`t_us`, and
//!   spans that never close. A `partial` mode accepts the analyzable
//!   prefix an aborted run leaves behind.
//! - [`mod@profile`] — per-label aggregation (count, total, **self-time**
//!   with child intervals clamped to the parent, exact p50/p90/p99)
//!   and critical-path extraction.
//! - [`diff`] — pairs two traces label-by-label and ranks the deltas,
//!   naming the specific span whose duration moved; used by
//!   `harness bench-gate` to explain failures.
//! - [`flame`] — folded stacks and a hand-rolled flame-chart SVG
//!   (x = start time, width = duration, row = depth).
//!
//! Everything is std-only on top of `qce_telemetry::json`, matching the
//! workspace's zero-dependency rule. The `obs` binary fronts the same
//! code as a CLI (`obs check|profile|critical|flame|diff`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diff;
pub mod flame;
pub mod profile;
pub mod trace;
pub mod validate;

pub use diff::{attribution_report, diff_traces, DeltaStatus, LabelDelta};
pub use flame::{flamegraph_svg, folded_stacks};
pub use profile::{critical_path, profile, CriticalPathEntry, LabelProfile};
pub use trace::{SpanRec, Trace};
pub use validate::{validate, ValidateOptions, ValidationSummary};

/// Errors surfaced by trace loading, validation, and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// I/O failure reading a trace (path, message).
    Io(String, String),
    /// The trace body failed to parse or is structurally invalid.
    Invalid(String),
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Io(path, e) => write!(f, "{path}: {e}"),
            ObsError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ObsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ObsError>;
