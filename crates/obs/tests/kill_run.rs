//! Kill-mid-run trace resilience (the trace-side sibling of the
//! `qce-store` kill/resume test): a run that dies mid-flow — panic,
//! `process::exit`, or a hard kill — must still leave an analyzable
//! trace prefix on disk. The `QCE_TRACE` sink writes line-atomically,
//! and the telemetry panic hook plus [`qce_telemetry::FlushGuard`]
//! flush anything a buffering sink holds before the stack disappears.
//!
//! The aborted run is a real subprocess: this test binary re-executes
//! itself with `--exact` targeting the helper below, which only acts
//! when the `QCE_OBS_KILL_HELPER` marker is set and exits with spans
//! still open.

use std::process::Command;

use qce_obs::{validate, Trace, ValidateOptions};
use qce_telemetry::{span, FlushGuard};

const MARKER: &str = "QCE_OBS_KILL_HELPER";

/// Subprocess body — inert in a normal test run. Exits through
/// `process::exit` (the early-exit path: destructors are skipped, so
/// the open spans never emit `span_end`), after a flush via the guard.
#[test]
fn helper_panics_mid_span() {
    if std::env::var_os(MARKER).is_none() {
        return;
    }
    let guard = FlushGuard::new();
    let _root = span!("flow.run");
    for epoch in 0..5usize {
        let _e = span!("train.epoch", epoch = epoch);
        qce_telemetry::progress!("epoch {epoch} done");
    }
    let _open = span!("flow.quantize", bits = 4usize);
    // An aborting run flushes what it has (here explicitly via the
    // guard; a panicking run reaches the same flush through the panic
    // hook) and dies without closing `_root`/`_open`.
    drop(guard);
    std::process::exit(3);
}

#[test]
fn killed_run_leaves_analyzable_trace_prefix() {
    let dir = std::env::temp_dir().join(format!("qce-obs-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("aborted.jsonl");

    let exe = std::env::current_exe().unwrap();
    let out = Command::new(exe)
        .args(["--exact", "helper_panics_mid_span", "--nocapture"])
        .env(MARKER, "1")
        .env("QCE_TRACE", &trace_path)
        .env("QCE_LOG", "off")
        .env_remove("QCE_ALLOC")
        .output()
        .expect("spawn helper subprocess");
    assert!(
        !out.status.success(),
        "helper was supposed to die mid-run; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let body = std::fs::read_to_string(&trace_path).expect("aborted trace exists");

    // The strict validator must reject it — spans never closed.
    let strict = validate(&body, &ValidateOptions::default());
    let err = strict
        .expect_err("aborted trace is not a complete trace")
        .to_string();
    assert!(err.contains("never ended"), "unexpected rejection: {err}");

    // Partial mode accepts the prefix and sees the open spans.
    let opts = ValidateOptions {
        partial: true,
        ..ValidateOptions::default()
    };
    let summary = validate(&body, &opts).expect("analyzable prefix");
    assert!(summary.open >= 1, "open spans survived: {summary:?}");

    // Every completed epoch reached disk despite the abort, and the
    // span open at panic time is visible as such.
    let trace = Trace::parse(&body).unwrap();
    let closed_epochs = trace
        .spans
        .iter()
        .filter(|s| s.name == "train.epoch" && s.dur_us.is_some())
        .count();
    assert_eq!(closed_epochs, 5, "completed epochs lost from the prefix");
    assert!(
        trace
            .spans
            .iter()
            .any(|s| s.name == "flow.quantize" && s.dur_us.is_none()),
        "the span open at panic time is missing"
    );
    assert_eq!(trace.logs, 5, "log events lost from the prefix");

    let _ = std::fs::remove_dir_all(&dir);
}
