//! Determinism property tests for the parallel compute backend.
//!
//! The repo's reproducibility contract is that every kernel produces
//! **bit-for-bit identical** output for every thread count. These tests
//! drive the blocked/parallel kernels over odd, non-tile-aligned shapes
//! with `Pool::with_threads(t)` for t ∈ {1, 2, 3, 8} and assert bitwise
//! equality (`f32::to_bits`) against the `Pool::serial()` reference —
//! approximate comparison would hide exactly the accumulation-order bugs
//! this suite exists to catch.

use proptest::prelude::*;
use qce_tensor::conv::{conv2d_backward_with, conv2d_with, max_pool2d_with, ConvGeometry};
use qce_tensor::linalg::{matmul_a_t_with, matmul_b_t_with, matmul_with, transpose};
use qce_tensor::par::{self, Pool};
use qce_tensor::Tensor;

const THREADS: [usize; 4] = [1, 2, 3, 8];

/// Attach a telemetry sink once so `collect_enabled()` is true and the
/// pool's timing instrumentation is active — determinism must hold with
/// tracing on (telemetry is strictly observational).
fn enable_tracing() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        qce_telemetry::add_sink(qce_telemetry::MemorySink::shared());
    });
}

fn assert_bits_eq(got: &Tensor, want: &Tensor, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.dims(), want.dims(), "{} dims", ctx);
    for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} elem {} ({} vs {})",
            ctx,
            i,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_bitwise_equal_across_pools(
        m in 1usize..34,
        k in 1usize..20,
        n in 1usize..34,
        seed in any::<u64>(),
    ) {
        enable_tracing();
        let a = seeded_tensor(&[m, k], seed);
        let b = seeded_tensor(&[k, n], seed ^ 0x9e37_79b9);
        let reference = matmul_with(&Pool::serial(), &a, &b).unwrap();
        for t in THREADS {
            let got = matmul_with(&Pool::with_threads(t), &a, &b).unwrap();
            assert_bits_eq(&got, &reference, &format!("matmul t={t}"))?;
        }
    }

    #[test]
    fn matmul_variants_bitwise_equal_across_pools(
        m in 1usize..18,
        k in 1usize..14,
        n in 1usize..18,
        seed in any::<u64>(),
    ) {
        enable_tracing();
        let a = seeded_tensor(&[m, k], seed);
        let b = seeded_tensor(&[k, n], seed ^ 0x51ed_270b);
        let b_t = transpose(&b).unwrap();
        let a_col = seeded_tensor(&[k, m], seed ^ 0x2545_f491);
        let serial = Pool::serial();
        let bt_ref = matmul_b_t_with(&serial, &a, &b_t).unwrap();
        let at_ref = matmul_a_t_with(&serial, &a_col, &b).unwrap();
        for t in THREADS {
            let pool = Pool::with_threads(t);
            let bt = matmul_b_t_with(&pool, &a, &b_t).unwrap();
            assert_bits_eq(&bt, &bt_ref, &format!("matmul_b_t t={t}"))?;
            let at = matmul_a_t_with(&pool, &a_col, &b).unwrap();
            assert_bits_eq(&at, &at_ref, &format!("matmul_a_t t={t}"))?;
        }
    }

    #[test]
    fn conv2d_bitwise_equal_across_pools(
        batch in 1usize..6,
        c in 1usize..4,
        o in 1usize..4,
        h in 3usize..9,
        w in 3usize..9,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in any::<u64>(),
    ) {
        enable_tracing();
        let geom = ConvGeometry::new(stride, padding);
        let input = seeded_tensor(&[batch, c, h, w], seed);
        let weight = seeded_tensor(&[o, c, 3, 3], seed ^ 0xdead_beef);
        let bias = seeded_tensor(&[o], seed ^ 0x0bad_cafe);
        let serial = Pool::serial();
        let fwd_ref = conv2d_with(&serial, &input, &weight, Some(&bias), geom).unwrap();
        let grad = seeded_tensor(fwd_ref.dims(), seed ^ 0x1234_5678);
        let bwd_ref = conv2d_backward_with(&serial, &input, &weight, &grad, geom).unwrap();
        for t in THREADS {
            let pool = Pool::with_threads(t);
            let fwd = conv2d_with(&pool, &input, &weight, Some(&bias), geom).unwrap();
            assert_bits_eq(&fwd, &fwd_ref, &format!("conv2d t={t}"))?;
            let bwd = conv2d_backward_with(&pool, &input, &weight, &grad, geom).unwrap();
            assert_bits_eq(&bwd.input, &bwd_ref.input, &format!("conv2d_backward input t={t}"))?;
            assert_bits_eq(&bwd.weight, &bwd_ref.weight, &format!("conv2d_backward weight t={t}"))?;
            assert_bits_eq(&bwd.bias, &bwd_ref.bias, &format!("conv2d_backward bias t={t}"))?;
        }
    }

    #[test]
    fn max_pool_bitwise_equal_across_pools(
        batch in 1usize..5,
        c in 1usize..4,
        h in 4usize..10,
        w in 4usize..10,
        seed in any::<u64>(),
    ) {
        enable_tracing();
        let geom = ConvGeometry::new(2, 0);
        let input = seeded_tensor(&[batch, c, h, w], seed);
        let reference = max_pool2d_with(&Pool::serial(), &input, 2, geom).unwrap();
        for t in THREADS {
            let got = max_pool2d_with(&Pool::with_threads(t), &input, 2, geom).unwrap();
            assert_bits_eq(&got.output, &reference.output, &format!("max_pool t={t}"))?;
            prop_assert_eq!(&got.argmax, &reference.argmax, "max_pool argmax t={}", t);
        }
    }

    #[test]
    fn sort_f32_bitwise_equal_across_pools(
        raw in proptest::collection::vec(-8.0f32..8.0, 1..12_000),
        specials in proptest::collection::vec(0usize..12_000, 0..6),
    ) {
        enable_tracing();
        let mut data = raw;
        // Sprinkle in signed zeros and a NaN to exercise total-order ties.
        for (i, &pos) in specials.iter().enumerate() {
            if !data.is_empty() {
                let pos = pos % data.len();
                data[pos] = match i % 3 {
                    0 => -0.0,
                    1 => 0.0,
                    _ => f32::NAN,
                };
            }
        }
        let mut reference = data.clone();
        par::sort_f32(&Pool::serial(), &mut reference);
        for t in THREADS {
            let mut got = data.clone();
            par::sort_f32(&Pool::with_threads(t), &mut got);
            let same = got.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "sort_f32 t={}", t);
        }
    }
}

/// Deterministic tensor from a proptest-provided seed, so the strategy
/// space stays small while values remain varied.
fn seeded_tensor(dims: &[usize], seed: u64) -> Tensor {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let len: usize = dims.iter().product();
    Tensor::from_vec(
        (0..len).map(|_| rng.random_range(-2.0..2.0)).collect(),
        dims,
    )
    .unwrap()
}
