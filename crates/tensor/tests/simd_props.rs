//! SIMD-vs-scalar determinism property tests.
//!
//! The dispatch module promises that every vector kernel performs the
//! same IEEE-754 operations in the same per-element order as its scalar
//! reference, so flipping `QCE_SIMD` can never change output bytes.
//! These tests drive the public kernels (matmul in all three transpose
//! flavours, conv2d forward/backward, dot) at every available dispatch
//! level **crossed with** thread counts {1, 2, 4}, over shapes chosen to
//! exercise non-lane-aligned tails (1..=2·lane-width remainders in every
//! dimension), and assert bitwise equality against the scalar serial
//! reference.
//!
//! On hosts without AVX2 the level loop degenerates to scalar-only and
//! the tests still pass — they then only prove thread invariance.

use proptest::prelude::*;
use qce_tensor::conv::{conv2d_backward_with, conv2d_with, ConvGeometry};
use qce_tensor::linalg::{matmul_a_t_with, matmul_b_t_with, matmul_with};
use qce_tensor::par::Pool;
use qce_tensor::simd::{self, Level};
use qce_tensor::Tensor;

const THREADS: [usize; 3] = [1, 2, 4];

/// The dispatch level is process-global state; tests that flip it must
/// not interleave (proptest itself is single-threaded per test, but the
/// test binary runs tests concurrently).
static LEVEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Every level available on this host, scalar first.
fn levels() -> Vec<Level> {
    if simd::detect() == Level::Avx2 {
        vec![Level::Scalar, Level::Avx2]
    } else {
        vec![Level::Scalar]
    }
}

/// Runs `f` under every (level, threads) combination and asserts all
/// outputs are bitwise equal to the first (scalar, serial) run.
fn assert_invariant<F>(ctx: &str, mut f: F) -> Result<(), TestCaseError>
where
    F: FnMut(&Pool) -> Vec<f32>,
{
    let _guard = LEVEL_LOCK.lock().unwrap();
    let mut reference: Option<Vec<u32>> = None;
    for level in levels() {
        let prev = simd::set_active(level);
        for threads in THREADS {
            let out = f(&Pool::with_threads(threads));
            let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(want) => {
                    if &bits != want {
                        simd::set_active(prev);
                        return Err(TestCaseError::Fail(format!(
                            "{ctx}: level={} threads={threads} diverged from scalar serial",
                            level.name()
                        )));
                    }
                }
            }
        }
        simd::set_active(prev);
    }
    Ok(())
}

fn seeded(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = qce_tensor::init::seeded_rng(seed);
    qce_tensor::init::uniform(dims, -2.0, 2.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Dimension ranges 1..=17 cover every remainder class of the 8-wide
    // AVX2 lane, the 4-wide dot half-step and the 4x8 microkernel tile
    // (1..=2*lane_width + 1).
    #[test]
    fn matmul_bits_invariant_across_levels_and_threads(
        m in 1usize..18,
        k in 1usize..18,
        n in 1usize..18,
        seed in 0u64..500,
    ) {
        let a = seeded(&[m, k], seed);
        let b = seeded(&[k, n], seed ^ 0xa5a5);
        assert_invariant("matmul", |pool| {
            matmul_with(pool, &a, &b).unwrap().as_slice().to_vec()
        })?;
    }

    #[test]
    fn matmul_transposed_bits_invariant(
        m in 1usize..14,
        k in 1usize..14,
        n in 1usize..14,
        seed in 0u64..500,
    ) {
        let a = seeded(&[m, k], seed);
        let bt = seeded(&[n, k], seed ^ 0x11);
        let at = seeded(&[k, m], seed ^ 0x22);
        let b = seeded(&[k, n], seed ^ 0x33);
        assert_invariant("matmul_b_t", |pool| {
            matmul_b_t_with(pool, &a, &bt).unwrap().as_slice().to_vec()
        })?;
        assert_invariant("matmul_a_t", |pool| {
            matmul_a_t_with(pool, &at, &b).unwrap().as_slice().to_vec()
        })?;
    }

    #[test]
    fn conv2d_fwd_bwd_bits_invariant(
        n in 1usize..4,
        c in 1usize..4,
        h in 3usize..12,
        w in 3usize..12,
        o in 1usize..5,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..500,
    ) {
        let geom = ConvGeometry::new(stride, padding);
        let kh = 3.min(h + 2 * padding);
        let kw = 3.min(w + 2 * padding);
        let input = seeded(&[n, c, h, w], seed);
        let weight = seeded(&[o, c, kh, kw], seed ^ 0x77);
        let bias = seeded(&[o], seed ^ 0x88);
        let ho = geom.output_extent(h, kh).unwrap();
        let wo = geom.output_extent(w, kw).unwrap();
        let grad = seeded(&[n, o, ho, wo], seed ^ 0x99);
        assert_invariant("conv2d forward", |pool| {
            conv2d_with(pool, &input, &weight, Some(&bias), geom)
                .unwrap()
                .as_slice()
                .to_vec()
        })?;
        assert_invariant("conv2d backward", |pool| {
            let g = conv2d_backward_with(pool, &input, &weight, &grad, geom).unwrap();
            let mut flat = g.input.as_slice().to_vec();
            flat.extend_from_slice(g.weight.as_slice());
            flat.extend_from_slice(g.bias.as_slice());
            flat
        })?;
    }

    // Tail-focused: dot and matvec over every length in 1..=2*8+1, the
    // exact remainder classes where a vector kernel could mishandle the
    // scalar tail.
    #[test]
    fn dot_bits_invariant_on_all_tail_lengths(seed in 0u64..500) {
        for len in 1..=17usize {
            let a = seeded(&[len], seed.wrapping_add(len as u64));
            let b = seeded(&[len], seed.wrapping_add(len as u64) ^ 0xbeef);
            let _guard = LEVEL_LOCK.lock().unwrap();
            let mut got = Vec::new();
            for level in levels() {
                let prev = simd::set_active(level);
                got.push(qce_tensor::linalg::dot(&a, &b).unwrap().to_bits());
                simd::set_active(prev);
            }
            prop_assert!(
                got.windows(2).all(|w| w[0] == w[1]),
                "dot len={len}: {got:?}"
            );
        }
    }
}
