//! Property-based tests of the tensor substrate's invariants.

use proptest::prelude::*;
use qce_tensor::conv::{conv2d, ConvGeometry};
use qce_tensor::{linalg, stats, Tensor};

fn small_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shape_offsets_are_a_bijection(dims in prop::collection::vec(1usize..5, 1..4)) {
        let shape = qce_tensor::Shape::new(&dims);
        let volume = shape.volume();
        let mut seen = std::collections::HashSet::new();
        let mut index = vec![0usize; dims.len()];
        for _ in 0..volume {
            let off = shape.offset(&index);
            prop_assert!(off < volume);
            prop_assert!(seen.insert(off));
            // Odometer increment.
            for d in (0..dims.len()).rev() {
                index[d] += 1;
                if index[d] < dims[d] {
                    break;
                }
                index[d] = 0;
            }
        }
        prop_assert_eq!(seen.len(), volume);
    }

    #[test]
    fn matmul_identity_is_identity(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        let a = qce_tensor::init::uniform(&[rows, cols], -10.0, 10.0, &mut rng);
        let c = linalg::matmul(&a, &Tensor::eye(cols)).unwrap();
        prop_assert_eq!(c, a);
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..1000) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        let a = qce_tensor::init::uniform(&[4, 5], -2.0, 2.0, &mut rng);
        let b = qce_tensor::init::uniform(&[5, 3], -2.0, 2.0, &mut rng);
        let c = qce_tensor::init::uniform(&[5, 3], -2.0, 2.0, &mut rng);
        let lhs = linalg::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = linalg::matmul(&a, &b).unwrap().add(&linalg::matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..10, cols in 1usize..10, seed in 0u64..1000) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        let a = qce_tensor::init::uniform(&[rows, cols], -5.0, 5.0, &mut rng);
        let tt = linalg::transpose(&linalg::transpose(&a).unwrap()).unwrap();
        prop_assert_eq!(tt, a);
    }

    #[test]
    fn pearson_is_affine_invariant(xs in small_vec(64), scale in 0.1f32..10.0, shift in -50.0f32..50.0) {
        prop_assume!(stats::std_dev(&xs) > 1e-3);
        let ys: Vec<f32> = xs.iter().map(|&x| scale * x + shift).collect();
        let rho = stats::pearson(&xs, &ys);
        prop_assert!((rho - 1.0).abs() < 1e-3, "rho = {rho}");
    }

    #[test]
    fn pearson_bounded(seed in 0u64..2000, n in 2usize..128) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        let a: Vec<f32> = (0..n).map(|_| qce_tensor::init::standard_normal(&mut rng)).collect();
        let b: Vec<f32> = (0..n).map(|_| qce_tensor::init::standard_normal(&mut rng)).collect();
        let rho = stats::pearson(&a, &b);
        prop_assert!((-1.0001..=1.0001).contains(&rho));
    }

    #[test]
    fn histogram_conserves_mass(xs in small_vec(200), bins in 1usize..32) {
        let h = stats::Histogram::from_values(&xs, bins, -100.0, 100.0);
        prop_assert_eq!(h.total() as usize, xs.len());
        let p: f64 = h.probabilities().iter().sum();
        prop_assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone_and_bounded(xs in small_vec(100), q1 in 0.0f32..1.0, q2 in 0.0f32..1.0) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = stats::quantile(&xs, lo).unwrap();
        let b = stats::quantile(&xs, hi).unwrap();
        prop_assert!(a <= b);
        let (min, max) = stats::min_max(&xs).unwrap();
        prop_assert!(a >= min && b <= max);
    }

    #[test]
    fn conv_output_geometry_consistent(
        h in 3usize..12, w in 3usize..12, k in 1usize..4,
        stride in 1usize..3, padding in 0usize..2,
    ) {
        let geom = ConvGeometry::new(stride, padding);
        prop_assume!(geom.output_extent(h, k).is_ok() && geom.output_extent(w, k).is_ok());
        let input = Tensor::ones(&[1, 1, h, w]);
        let weight = Tensor::ones(&[1, 1, k, k]);
        let out = conv2d(&input, &weight, None, geom).unwrap();
        prop_assert_eq!(out.dims()[2], geom.output_extent(h, k).unwrap());
        prop_assert_eq!(out.dims()[3], geom.output_extent(w, k).unwrap());
        // Every output value is the count of covered input cells, bounded
        // by the kernel area.
        for &v in out.as_slice() {
            prop_assert!(v >= 0.0 && v <= (k * k) as f32 + 1e-5);
        }
    }

    #[test]
    fn tensor_add_commutes(xs in small_vec(64), seed in 0u64..100) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        let a = Tensor::from_slice(&xs);
        let b = qce_tensor::init::uniform(&[xs.len()], -1.0, 1.0, &mut rng);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }
}
