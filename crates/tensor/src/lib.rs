//! Minimal dense `f32` tensor library underpinning the `qce` workspace.
//!
//! This crate provides exactly the numerical substrate the DAC'20
//! *quantized correlation encoding attack* reproduction needs:
//!
//! * [`Tensor`] — a contiguous, row-major, n-dimensional `f32` array with
//!   elementwise arithmetic, reductions and reshaping.
//! * [`linalg`] — 2-D matrix multiplication and transposition.
//! * [`conv`] — im2col-based 2-D convolution and pooling with full
//!   backward passes (the building blocks of `qce-nn` layers).
//! * [`init`] — deterministic, seeded weight initializers (Kaiming,
//!   Xavier, uniform) built on a Box–Muller normal sampler.
//! * [`stats`] — scalar statistics (mean/std/histogram) shared by the
//!   data-preprocessing and quantization stages of the attack flow.
//! * [`par`] — a zero-dependency scoped thread pool whose static work
//!   partitioning keeps every kernel **bit-for-bit identical across
//!   thread counts** (`QCE_THREADS` selects the worker count).
//!
//! * [`simd`] — runtime-dispatched SIMD micro-kernels (AVX2 behind a
//!   one-time CPUID check, `QCE_SIMD=off|auto` override) whose vector
//!   paths perform the same IEEE-754 operations in the same per-element
//!   order as the scalar reference.
//! * [`tune`] — a startup probe of the cache hierarchy that sizes
//!   cache blocks and parallel work chunks, fixed for the life of the
//!   process.
//!
//! Everything is deterministic given explicit seeds: the blocked,
//! parallel and SIMD kernels all fix their floating-point accumulation
//! order independently of the thread count *and* of the vector width,
//! so `QCE_THREADS=1` and `QCE_THREADS=8` — with `QCE_SIMD=off` or
//! `auto` — produce the same bytes. `unsafe` is denied crate-wide and
//! granted only to the [`simd`] module, where every intrinsic call sits
//! behind the runtime feature check.
//!
//! # Examples
//!
//! ```
//! use qce_tensor::Tensor;
//!
//! # fn main() -> Result<(), qce_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = qce_tensor::linalg::matmul(&a, &b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod axis;
pub mod conv;
pub mod init;
pub mod linalg;
pub mod par;
pub mod simd;
pub mod stats;
pub mod tune;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
