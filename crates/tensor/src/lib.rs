//! Minimal dense `f32` tensor library underpinning the `qce` workspace.
//!
//! This crate provides exactly the numerical substrate the DAC'20
//! *quantized correlation encoding attack* reproduction needs:
//!
//! * [`Tensor`] — a contiguous, row-major, n-dimensional `f32` array with
//!   elementwise arithmetic, reductions and reshaping.
//! * [`linalg`] — 2-D matrix multiplication and transposition.
//! * [`conv`] — im2col-based 2-D convolution and pooling with full
//!   backward passes (the building blocks of `qce-nn` layers).
//! * [`init`] — deterministic, seeded weight initializers (Kaiming,
//!   Xavier, uniform) built on a Box–Muller normal sampler.
//! * [`stats`] — scalar statistics (mean/std/histogram) shared by the
//!   data-preprocessing and quantization stages of the attack flow.
//! * [`par`] — a zero-dependency scoped thread pool whose static work
//!   partitioning keeps every kernel **bit-for-bit identical across
//!   thread counts** (`QCE_THREADS` selects the worker count).
//!
//! Everything is deterministic given explicit seeds: the blocked and
//! parallel kernels fix their floating-point accumulation order
//! independently of the thread count, so `QCE_THREADS=1` and
//! `QCE_THREADS=8` produce the same bytes. No unsafe, no SIMD
//! intrinsics — clarity and reproducibility first, then speed.
//!
//! # Examples
//!
//! ```
//! use qce_tensor::Tensor;
//!
//! # fn main() -> Result<(), qce_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = qce_tensor::linalg::matmul(&a, &b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod axis;
pub mod conv;
pub mod init;
pub mod linalg;
pub mod par;
pub mod stats;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
