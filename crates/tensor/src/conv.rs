//! 2-D convolution and pooling kernels with full backward passes.
//!
//! Layout convention is `NCHW` for activations and `OIHW` for convolution
//! weights, matching the layer definitions in `qce-nn`. The convolution is
//! implemented with an explicit im2col lowering followed by the blocked
//! [`matmul`](crate::linalg::matmul) kernel, and the backward pass reverses
//! the lowering with a col2im scatter-add — the textbook formulation, easy
//! to verify against finite differences (see the crate's property tests).
//!
//! Forward and backward are **batch-parallel**: samples are distributed
//! over the [`crate::par::Pool`] (falling back to an in-sample parallel
//! matmul when the batch is smaller than the pool), each worker reuses one
//! im2col scratch buffer across its samples, and per-sample weight/bias
//! gradients land in disjoint partial buffers that are reduced serially in
//! ascending sample order — so gradients are bit-for-bit identical for
//! every thread count.

use crate::par::{self, Pool};
use crate::{linalg, simd, Result, Tensor, TensorError};

/// Stride/padding geometry of a convolution or pooling window.
///
/// # Examples
///
/// ```
/// use qce_tensor::conv::ConvGeometry;
///
/// let g = ConvGeometry::new(1, 1);
/// assert_eq!(g.output_extent(32, 3).unwrap(), 32); // "same" conv for 3x3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Window step, identical in both spatial dimensions.
    pub stride: usize,
    /// Zero padding added to every spatial border.
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry from stride and padding.
    pub fn new(stride: usize, padding: usize) -> Self {
        ConvGeometry { stride, padding }
    }

    /// Unit-stride, zero-padding geometry.
    pub fn unit() -> Self {
        ConvGeometry {
            stride: 1,
            padding: 0,
        }
    }

    /// Output extent along one spatial dimension for input extent `n` and
    /// kernel extent `k`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the stride is zero or
    /// the kernel does not fit in the padded input.
    pub fn output_extent(&self, n: usize, k: usize) -> Result<usize> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "stride must be non-zero".to_string(),
            });
        }
        let padded = n + 2 * self.padding;
        if k == 0 || k > padded {
            return Err(TensorError::InvalidGeometry {
                reason: format!("kernel extent {k} does not fit padded input {padded}"),
            });
        }
        Ok((padded - k) / self.stride + 1)
    }
}

impl Default for ConvGeometry {
    fn default() -> Self {
        ConvGeometry::unit()
    }
}

fn check_rank4(op: &'static str, t: &Tensor) -> Result<()> {
    if t.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 4,
            actual: t.shape().rank(),
        });
    }
    Ok(())
}

/// Lowers one `[C, H, W]` image (given as a flat slice) into an im2col
/// matrix of shape `[C*kh*kw, ho*wo]`, stored row-major into `col`.
#[allow(clippy::too_many_arguments)]
fn im2col(
    img: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    geom: ConvGeometry,
    ho: usize,
    wo: usize,
    col: &mut [f32],
) {
    let pad = geom.padding as isize;
    let stride = geom.stride;
    debug_assert_eq!(col.len(), c * kh * kw * ho * wo);
    if stride == 1 {
        // Unit stride makes every output row a shifted window of one input
        // row: zero-fill the out-of-image borders and bulk-copy the valid
        // span instead of testing bounds per element. Pure data movement —
        // the produced values are identical to the general path below.
        let mut row = 0usize;
        for ch in 0..c {
            let img_ch = &img[ch * h * w..(ch + 1) * h * w];
            for ky in 0..kh {
                for kx in 0..kw {
                    let out_row = &mut col[row * ho * wo..(row + 1) * ho * wo];
                    let shift = kx as isize - pad; // ix = ox + shift
                    let lo = (-shift).clamp(0, wo as isize) as usize;
                    let hi = (w as isize - shift).clamp(lo as isize, wo as isize) as usize;
                    for oy in 0..ho {
                        let iy = oy as isize + ky as isize - pad;
                        let dst = &mut out_row[oy * wo..(oy + 1) * wo];
                        if iy < 0 || iy >= h as isize {
                            dst.fill(0.0);
                            continue;
                        }
                        dst[..lo].fill(0.0);
                        if lo < hi {
                            let src0 = iy as usize * w + (lo as isize + shift) as usize;
                            dst[lo..hi].copy_from_slice(&img_ch[src0..src0 + (hi - lo)]);
                        }
                        dst[hi..].fill(0.0);
                    }
                    row += 1;
                }
            }
        }
        return;
    }
    let mut row = 0usize;
    for ch in 0..c {
        let img_ch = &img[ch * h * w..(ch + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let out_row = &mut col[row * ho * wo..(row + 1) * ho * wo];
                let mut idx = 0usize;
                for oy in 0..ho {
                    let iy = (oy * stride) as isize + ky as isize - pad;
                    for ox in 0..wo {
                        let ix = (ox * stride) as isize + kx as isize - pad;
                        out_row[idx] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            img_ch[iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Reverses [`im2col`]: scatter-adds a `[C*kh*kw, ho*wo]` column matrix back
/// into a `[C, H, W]` image buffer.
#[allow(clippy::too_many_arguments)]
fn col2im(
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    geom: ConvGeometry,
    ho: usize,
    wo: usize,
    img: &mut [f32],
) {
    let pad = geom.padding as isize;
    let stride = geom.stride;
    if stride == 1 {
        // Mirror of the unit-stride im2col fast path: each (row, oy) pair
        // touches a contiguous image span exactly once, so the scatter-add
        // becomes one vectorised segment add per output row. Loop order —
        // and therefore the accumulation order onto each image element —
        // matches the general path exactly.
        let mut row = 0usize;
        for ch in 0..c {
            let img_ch = &mut img[ch * h * w..(ch + 1) * h * w];
            for ky in 0..kh {
                for kx in 0..kw {
                    let in_row = &col[row * ho * wo..(row + 1) * ho * wo];
                    let shift = kx as isize - pad; // ix = ox + shift
                    let lo = (-shift).clamp(0, wo as isize) as usize;
                    let hi = (w as isize - shift).clamp(lo as isize, wo as isize) as usize;
                    if lo < hi {
                        for oy in 0..ho {
                            let iy = oy as isize + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst0 = iy as usize * w + (lo as isize + shift) as usize;
                            simd::add_assign(
                                &mut img_ch[dst0..dst0 + (hi - lo)],
                                &in_row[oy * wo + lo..oy * wo + hi],
                            );
                        }
                    }
                    row += 1;
                }
            }
        }
        return;
    }
    let mut row = 0usize;
    for ch in 0..c {
        let img_ch = &mut img[ch * h * w..(ch + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let in_row = &col[row * ho * wo..(row + 1) * ho * wo];
                let mut idx = 0usize;
                for oy in 0..ho {
                    let iy = (oy * stride) as isize + ky as isize - pad;
                    for ox in 0..wo {
                        let ix = (ox * stride) as isize + kx as isize - pad;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            img_ch[iy as usize * w + ix as usize] += in_row[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// 2-D convolution forward pass.
///
/// `input` is `[N, C, H, W]`, `weight` is `[O, C, kh, kw]`, optional `bias`
/// is `[O]`; the result is `[N, O, Ho, Wo]`.
///
/// # Errors
///
/// Returns an error if ranks, channel counts, bias length or geometry are
/// inconsistent.
///
/// # Examples
///
/// ```
/// use qce_tensor::conv::{conv2d, ConvGeometry};
/// use qce_tensor::Tensor;
///
/// # fn main() -> Result<(), qce_tensor::TensorError> {
/// let input = Tensor::ones(&[1, 1, 4, 4]);
/// let weight = Tensor::ones(&[1, 1, 3, 3]);
/// let out = conv2d(&input, &weight, None, ConvGeometry::new(1, 1))?;
/// assert_eq!(out.dims(), &[1, 1, 4, 4]);
/// assert_eq!(out.at(&[0, 0, 1, 1]), 9.0); // fully covered window
/// # Ok(())
/// # }
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    geom: ConvGeometry,
) -> Result<Tensor> {
    conv2d_with(Pool::global(), input, weight, bias, geom)
}

/// [`conv2d`] on an explicit pool (`Pool::serial()` is the scalar reference).
///
/// Samples are split over the pool when the batch is at least as wide as
/// the pool; otherwise the per-sample matmul is parallelised instead.
/// Both placements run identical per-sample arithmetic, so the output is
/// the same bytes either way.
///
/// # Errors
///
/// Same contract as [`conv2d`].
pub fn conv2d_with(
    pool: &Pool,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    geom: ConvGeometry,
) -> Result<Tensor> {
    check_rank4("conv2d input", input)?;
    check_rank4("conv2d weight", weight)?;
    let (n, c, h, w) = dims4(input);
    let (o, ci, kh, kw) = dims4(weight);
    if c != ci {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: input.dims().to_vec(),
            rhs: weight.dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.len() != o {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d bias",
                lhs: vec![o],
                rhs: b.dims().to_vec(),
            });
        }
    }
    let ho = geom.output_extent(h, kh)?;
    let wo = geom.output_extent(w, kw)?;

    let csize = c * h * w;
    let osize = o * ho * wo;
    let ckk = c * kh * kw;
    let howo = ho * wo;
    // OIHW weights are already the [o, c*kh*kw] matrix, row-major.
    let wv = weight.as_slice();
    let iv = input.as_slice();
    let bslice = bias.map(Tensor::as_slice);
    let mut out = vec![0.0f32; n * osize];
    let serial = Pool::serial();
    let (outer, inner) = if n >= pool.threads() {
        (pool, &serial)
    } else {
        (&serial, pool)
    };
    par::for_each_chunk(
        outer,
        &mut out,
        osize,
        || vec![0.0f32; ckk * howo],
        |col, s, dst| {
            let img = &iv[s * csize..(s + 1) * csize];
            im2col(img, c, h, w, kh, kw, geom, ho, wo, col);
            linalg::matmul_into(inner, wv, col, dst, o, ckk, howo);
            if let Some(b) = bslice {
                for (oc, &bv) in b.iter().enumerate() {
                    simd::add_scalar(&mut dst[oc * howo..(oc + 1) * howo], bv);
                }
            }
        },
    );
    Tensor::from_vec(out, &[n, o, ho, wo])
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, C, H, W]`.
    pub input: Tensor,
    /// Gradient w.r.t. the weight, `[O, C, kh, kw]`.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias, `[O]`.
    pub bias: Tensor,
}

/// 2-D convolution backward pass.
///
/// Given the forward operands and the gradient of the loss w.r.t. the
/// convolution output, computes gradients w.r.t. input, weight and bias.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with a forward call of the
/// same geometry.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geom: ConvGeometry,
) -> Result<Conv2dGrads> {
    conv2d_backward_with(Pool::global(), input, weight, grad_out, geom)
}

/// [`conv2d_backward`] on an explicit pool.
///
/// Each sample writes its weight/bias contribution into a disjoint
/// partial buffer; the partials are reduced serially in ascending sample
/// order afterwards, so no floating-point sum ever crosses a thread
/// boundary and gradients match the serial reference bit-for-bit.
///
/// When [`Pool::effective_workers`] reports that the batch cannot
/// actually run concurrently (a one-worker pool, a single detected core,
/// or a single sample), the per-sample partial buffers are skipped
/// entirely: one scratch gradient is accumulated in ascending sample
/// order. That is the same left-fold the partial reduction performs —
/// element `e` sees `((dw_0[e] + dw_1[e]) + dw_2[e]) + …` either way —
/// so the lean path changes allocation and zeroing cost, never bits.
/// (This fallback is what fixed the conv2d-backward slowdown the kernel
/// bench used to show on few-core hosts: `N × O × C × kh × kw` partials
/// were allocated, zeroed and re-read for a pool that ran inline.)
///
/// # Errors
///
/// Same contract as [`conv2d_backward`].
pub fn conv2d_backward_with(
    pool: &Pool,
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geom: ConvGeometry,
) -> Result<Conv2dGrads> {
    check_rank4("conv2d_backward input", input)?;
    check_rank4("conv2d_backward weight", weight)?;
    check_rank4("conv2d_backward grad", grad_out)?;
    let (n, c, h, w) = dims4(input);
    let (o, _ci, kh, kw) = dims4(weight);
    let ho = geom.output_extent(h, kh)?;
    let wo = geom.output_extent(w, kw)?;
    if grad_out.dims() != [n, o, ho, wo] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: vec![n, o, ho, wo],
            rhs: grad_out.dims().to_vec(),
        });
    }

    let ckk = c * kh * kw;
    let howo = ho * wo;
    let csize = c * h * w;
    let osize = o * howo;
    let wv = weight.as_slice();
    let mut wmat_t = vec![0.0f32; o * ckk];
    linalg::transpose_into(wv, &mut wmat_t, o, ckk);
    let wmat_t = &wmat_t;
    let iv = input.as_slice();
    let gv = grad_out.as_slice();

    let mut grad_in = vec![0.0f32; n * csize];
    let mut grad_w = vec![0.0f32; o * ckk];
    let mut grad_b = vec![0.0f32; o];
    let serial = Pool::serial();
    let (outer, inner) = if n >= pool.threads() {
        (pool, &serial)
    } else {
        (&serial, pool)
    };
    if outer.effective_workers(n) <= 1 {
        // Lean inline path: no per-sample partials. One dW_s scratch is
        // reused across samples and folded into grad_w/grad_b in
        // ascending sample order — the identical reduction the partial
        // buffers would have produced, without allocating or zeroing
        // `n` of them.
        let mut col = vec![0.0f32; ckk * howo];
        let mut dcol = vec![0.0f32; ckk * howo];
        let mut dw_s = vec![0.0f32; o * ckk];
        for (s, gin) in grad_in.chunks_mut(csize).enumerate() {
            let img = &iv[s * csize..(s + 1) * csize];
            im2col(img, c, h, w, kh, kw, geom, ho, wo, &mut col);
            let g_s = &gv[s * osize..(s + 1) * osize];
            // dW_s = g_s · colᵀ — col rows are exactly the (col)ᵀ columns.
            linalg::matmul_b_t_into(inner, g_s, &col, &mut dw_s, o, howo, ckk);
            simd::add_assign(&mut grad_w, &dw_s);
            for (oc, gb) in grad_b.iter_mut().enumerate() {
                *gb += g_s[oc * howo..(oc + 1) * howo].iter().sum::<f32>();
            }
            // dInput_s via col2im(Wᵀ · g_s).
            linalg::matmul_into(inner, wmat_t, g_s, &mut dcol, ckk, o, howo);
            col2im(&dcol, c, h, w, kh, kw, geom, ho, wo, gin);
        }
        return Ok(Conv2dGrads {
            input: Tensor::from_vec(grad_in, &[n, c, h, w])?,
            weight: Tensor::from_vec(grad_w, &[o, c, kh, kw])?,
            bias: Tensor::from_vec(grad_b, &[o])?,
        });
    }
    let mut dw_part = vec![0.0f32; n * o * ckk];
    let mut db_part = vec![0.0f32; n * o];
    let items: Vec<(&mut [f32], &mut [f32], &mut [f32])> = grad_in
        .chunks_mut(csize)
        .zip(dw_part.chunks_mut(o * ckk))
        .zip(db_part.chunks_mut(o))
        .map(|((gin, dw), db)| (gin, dw, db))
        .collect();
    par::for_each_item(
        outer,
        items,
        || (vec![0.0f32; ckk * howo], vec![0.0f32; ckk * howo]),
        |(col, dcol), s, (gin, dw, db)| {
            let img = &iv[s * csize..(s + 1) * csize];
            im2col(img, c, h, w, kh, kw, geom, ho, wo, col);
            let g_s = &gv[s * osize..(s + 1) * osize];
            // dW_s = g_s · colᵀ — col rows are exactly the (col)ᵀ columns.
            linalg::matmul_b_t_into(inner, g_s, col, dw, o, howo, ckk);
            for (oc, gb) in db.iter_mut().enumerate() {
                *gb = g_s[oc * howo..(oc + 1) * howo].iter().sum::<f32>();
            }
            // dInput_s via col2im(Wᵀ · g_s).
            linalg::matmul_into(inner, wmat_t, g_s, dcol, ckk, o, howo);
            col2im(dcol, c, h, w, kh, kw, geom, ho, wo, gin);
        },
    );

    for dw in dw_part.chunks_exact(o * ckk) {
        simd::add_assign(&mut grad_w, dw);
    }
    for db in db_part.chunks_exact(o) {
        simd::add_assign(&mut grad_b, db);
    }

    Ok(Conv2dGrads {
        input: Tensor::from_vec(grad_in, &[n, c, h, w])?,
        weight: Tensor::from_vec(grad_w, &[o, c, kh, kw])?,
        bias: Tensor::from_vec(grad_b, &[o])?,
    })
}

/// Output of [`max_pool2d`]: the pooled tensor plus the linear index (into
/// the flattened input) of every selected maximum, which
/// [`max_pool2d_backward`] uses to route gradients.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled activations, `[N, C, Ho, Wo]`.
    pub output: Tensor,
    /// For each output element, the flat input index of its source maximum.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling with a square `k`×`k` window.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or infeasible geometry.
pub fn max_pool2d(input: &Tensor, k: usize, geom: ConvGeometry) -> Result<MaxPoolOutput> {
    max_pool2d_with(Pool::global(), input, k, geom)
}

/// [`max_pool2d`] on an explicit pool.
///
/// Pooling planes (one per sample×channel) are independent, so they are
/// distributed over the pool; the max scan within a window is a fixed
/// serial order, making the result (including argmax ties) identical for
/// every thread count.
///
/// # Errors
///
/// Same contract as [`max_pool2d`].
pub fn max_pool2d_with(
    pool: &Pool,
    input: &Tensor,
    k: usize,
    geom: ConvGeometry,
) -> Result<MaxPoolOutput> {
    check_rank4("max_pool2d", input)?;
    let (n, c, h, w) = dims4(input);
    let ho = geom.output_extent(h, k)?;
    let wo = geom.output_extent(w, k)?;
    let pad = geom.padding as isize;
    let iv = input.as_slice();
    let mut out = vec![0.0f32; n * c * ho * wo];
    let mut argmax = vec![0usize; n * c * ho * wo];
    let planes: Vec<(&mut [f32], &mut [usize])> = out
        .chunks_mut(ho * wo)
        .zip(argmax.chunks_mut(ho * wo))
        .collect();
    par::for_each_item(
        pool,
        planes,
        || (),
        |(), plane, (ov, av)| {
            let base = plane * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = base;
                    for ky in 0..k {
                        let iy = (oy * geom.stride) as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * geom.stride) as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = base + iy as usize * w + ix as usize;
                            if iv[idx] > best {
                                best = iv[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o_idx = oy * wo + ox;
                    ov[o_idx] = best;
                    av[o_idx] = best_idx;
                }
            }
        },
    );
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(out, &[n, c, ho, wo])?,
        argmax,
    })
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// input position that produced the maximum.
///
/// # Errors
///
/// Returns an error if `grad_out` volume disagrees with `argmax` length.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: grad_out.len(),
        });
    }
    let mut grad_in = Tensor::zeros(input_dims);
    let gi = grad_in.as_mut_slice();
    for (&g, &idx) in grad_out.as_slice().iter().zip(argmax.iter()) {
        gi[idx] += g;
    }
    Ok(grad_in)
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 inputs.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    check_rank4("global_avg_pool", input)?;
    let (n, c, h, w) = dims4(input);
    let area = (h * w) as f32;
    let iv = input.as_slice();
    let mut out = vec![0.0f32; n * c];
    for (i, o) in out.iter_mut().enumerate() {
        *o = iv[i * h * w..(i + 1) * h * w].iter().sum::<f32>() / area;
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward pass of [`global_avg_pool`]: spreads each channel gradient
/// uniformly over the spatial extent.
///
/// # Errors
///
/// Returns an error if `grad_out` is not `[N, C]` for the given input dims.
pub fn global_avg_pool_backward(grad_out: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "global_avg_pool_backward",
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    if grad_out.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            op: "global_avg_pool_backward",
            lhs: vec![n, c],
            rhs: grad_out.dims().to_vec(),
        });
    }
    let inv_area = 1.0 / (h * w) as f32;
    let mut grad_in = vec![0.0f32; n * c * h * w];
    for (i, &g) in grad_out.as_slice().iter().enumerate() {
        let v = g * inv_area;
        for x in &mut grad_in[i * h * w..(i + 1) * h * w] {
            *x = v;
        }
    }
    Tensor::from_vec(grad_in, input_dims)
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    let d = t.dims();
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive direct convolution used as the reference implementation.
    fn naive_conv2d(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        geom: ConvGeometry,
    ) -> Tensor {
        let (n, c, h, w) = dims4(input);
        let (o, _, kh, kw) = dims4(weight);
        let ho = geom.output_extent(h, kh).unwrap();
        let wo = geom.output_extent(w, kw).unwrap();
        let mut out = Tensor::zeros(&[n, o, ho, wo]);
        for s in 0..n {
            for oc in 0..o {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = bias.map_or(0.0, |b| b.as_slice()[oc]);
                        for ch in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy =
                                        (oy * geom.stride + ky) as isize - geom.padding as isize;
                                    let ix =
                                        (ox * geom.stride + kx) as isize - geom.padding as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                        acc += input.at(&[s, ch, iy as usize, ix as usize])
                                            * weight.at(&[oc, ch, ky, kx]);
                                    }
                                }
                            }
                        }
                        out.set(&[s, oc, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    fn random_tensor(dims: &[usize], seed: u64) -> Tensor {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.random_range(-1.0..1.0)).collect(), dims).unwrap()
    }

    #[test]
    fn geometry_output_extent() {
        let g = ConvGeometry::new(2, 1);
        assert_eq!(g.output_extent(8, 3).unwrap(), 4);
        assert!(ConvGeometry::new(0, 0).output_extent(8, 3).is_err());
        assert!(ConvGeometry::new(1, 0).output_extent(2, 5).is_err());
    }

    #[test]
    fn conv2d_matches_naive_various_geometries() {
        for (stride, padding, seed) in [(1, 0, 1u64), (1, 1, 2), (2, 1, 3), (2, 0, 4)] {
            let geom = ConvGeometry::new(stride, padding);
            let input = random_tensor(&[2, 3, 7, 6], seed);
            let weight = random_tensor(&[4, 3, 3, 3], seed + 100);
            let bias = random_tensor(&[4], seed + 200);
            let fast = conv2d(&input, &weight, Some(&bias), geom).unwrap();
            let slow = naive_conv2d(&input, &weight, Some(&bias), geom);
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((a - b).abs() < 1e-4, "stride={stride} pad={padding}");
            }
        }
    }

    #[test]
    fn conv2d_rejects_channel_mismatch() {
        let input = Tensor::zeros(&[1, 3, 4, 4]);
        let weight = Tensor::zeros(&[2, 4, 3, 3]);
        assert!(conv2d(&input, &weight, None, ConvGeometry::unit()).is_err());
    }

    #[test]
    fn conv2d_backward_weight_matches_finite_difference() {
        let geom = ConvGeometry::new(1, 1);
        let input = random_tensor(&[1, 2, 5, 5], 11);
        let mut weight = random_tensor(&[3, 2, 3, 3], 12);
        let out = conv2d(&input, &weight, None, geom).unwrap();
        // Loss = sum of outputs => grad_out = ones.
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, geom).unwrap();
        let eps = 1e-2;
        for probe in [0usize, 7, 17, weight.len() - 1] {
            let orig = weight.as_slice()[probe];
            weight.as_mut_slice()[probe] = orig + eps;
            let hi = conv2d(&input, &weight, None, geom).unwrap().sum();
            weight.as_mut_slice()[probe] = orig - eps;
            let lo = conv2d(&input, &weight, None, geom).unwrap().sum();
            weight.as_mut_slice()[probe] = orig;
            let fd = (hi - lo) / (2.0 * eps);
            let an = grads.weight.as_slice()[probe];
            assert!((fd - an).abs() < 1e-2, "probe {probe}: fd={fd} an={an}");
        }
    }

    #[test]
    fn conv2d_backward_input_matches_finite_difference() {
        let geom = ConvGeometry::new(2, 1);
        let mut input = random_tensor(&[1, 2, 6, 6], 21);
        let weight = random_tensor(&[2, 2, 3, 3], 22);
        let out = conv2d(&input, &weight, None, geom).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, geom).unwrap();
        let eps = 1e-2;
        for probe in [0usize, 13, 40, input.len() - 1] {
            let orig = input.as_slice()[probe];
            input.as_mut_slice()[probe] = orig + eps;
            let hi = conv2d(&input, &weight, None, geom).unwrap().sum();
            input.as_mut_slice()[probe] = orig - eps;
            let lo = conv2d(&input, &weight, None, geom).unwrap().sum();
            input.as_mut_slice()[probe] = orig;
            let fd = (hi - lo) / (2.0 * eps);
            let an = grads.input.as_slice()[probe];
            assert!((fd - an).abs() < 1e-2, "probe {probe}: fd={fd} an={an}");
        }
    }

    #[test]
    fn conv2d_backward_bias_is_grad_sum() {
        let geom = ConvGeometry::unit();
        let input = random_tensor(&[2, 1, 4, 4], 31);
        let weight = random_tensor(&[2, 1, 2, 2], 32);
        let out = conv2d(&input, &weight, None, geom).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, geom).unwrap();
        let per_channel = (out.len() / 2) as f32;
        for &g in grads.bias.as_slice() {
            assert!((g - per_channel).abs() < 1e-4);
        }
    }

    #[test]
    fn max_pool_selects_maxima_and_routes_gradients() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.5, 0.25, //
                -3.0, -4.0, 0.75, 0.125,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let pooled = max_pool2d(&input, 2, ConvGeometry::new(2, 0)).unwrap();
        assert_eq!(pooled.output.as_slice(), &[4.0, 8.0, -1.0, 0.75]);
        let grad_out = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let grad_in = max_pool2d_backward(&grad_out, &pooled.argmax, input.dims()).unwrap();
        assert_eq!(grad_in.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(grad_in.at(&[0, 0, 1, 3]), 2.0);
        assert_eq!(grad_in.at(&[0, 0, 2, 0]), 3.0);
        assert_eq!(grad_in.at(&[0, 0, 3, 2]), 4.0);
        assert_eq!(grad_in.sum(), 10.0);
    }

    #[test]
    fn global_avg_pool_round_trip() {
        let input = random_tensor(&[2, 3, 4, 4], 41);
        let out = global_avg_pool(&input).unwrap();
        assert_eq!(out.dims(), &[2, 3]);
        let manual: f32 = input.as_slice()[..16].iter().sum::<f32>() / 16.0;
        assert!((out.as_slice()[0] - manual).abs() < 1e-5);

        let grad = global_avg_pool_backward(&out, input.dims()).unwrap();
        assert_eq!(grad.dims(), input.dims());
        // Each spatial cell receives channel_grad / area.
        assert!((grad.at(&[0, 0, 0, 0]) - out.as_slice()[0] / 16.0).abs() < 1e-6);
    }

    #[test]
    fn conv2d_pools_agree_bitwise() {
        let geom = ConvGeometry::new(1, 1);
        let input = random_tensor(&[5, 3, 9, 7], 51);
        let weight = random_tensor(&[4, 3, 3, 3], 52);
        let bias = random_tensor(&[4], 53);
        let grad_seed = random_tensor(&[5, 4, 9, 7], 54);
        let serial = Pool::serial();
        let fwd_ref = conv2d_with(&serial, &input, &weight, Some(&bias), geom).unwrap();
        let bwd_ref = conv2d_backward_with(&serial, &input, &weight, &grad_seed, geom).unwrap();
        for threads in [2, 3, 8] {
            let pool = Pool::with_threads(threads);
            let fwd = conv2d_with(&pool, &input, &weight, Some(&bias), geom).unwrap();
            assert!(
                fwd.as_slice()
                    .iter()
                    .zip(fwd_ref.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "fwd threads={threads}"
            );
            let bwd = conv2d_backward_with(&pool, &input, &weight, &grad_seed, geom).unwrap();
            for (got, want) in [
                (&bwd.input, &bwd_ref.input),
                (&bwd.weight, &bwd_ref.weight),
                (&bwd.bias, &bwd_ref.bias),
            ] {
                assert!(
                    got.as_slice()
                        .iter()
                        .zip(want.as_slice())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "bwd threads={threads}"
                );
            }
        }
    }

    #[test]
    fn pool_backward_length_checked() {
        let grad_out = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(max_pool2d_backward(&grad_out, &[0, 1], &[1, 1, 4, 4]).is_err());
    }
}
