use std::fmt;

/// Error type for tensor construction and shape-sensitive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided data length does not match the number of elements the
    /// shape implies.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors participating in an operation have incompatible shapes.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// An operation required a tensor of a specific rank.
    RankMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// A convolution/pooling geometry is invalid (e.g. kernel larger than
    /// the padded input, or zero stride).
    InvalidGeometry {
        /// Description of the offending geometry.
        reason: String,
    },
    /// A shape with zero total elements was supplied where data is required.
    EmptyShape,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op} requires rank {expected}, got rank {actual}"),
            TensorError::InvalidGeometry { reason } => {
                write!(f, "invalid geometry: {reason}")
            }
            TensorError::EmptyShape => write!(f, "shape has zero elements"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(e.to_string(), "data length 3 does not match shape volume 4");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "add",
            lhs: vec![2, 2],
            rhs: vec![3],
        };
        assert!(e.to_string().contains("add"));
        assert!(e.to_string().contains("[2, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
