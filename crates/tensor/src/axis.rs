//! Axis-wise reductions and broadcasts over one tensor dimension.
//!
//! These complement the whole-tensor reductions on
//! [`crate::Tensor`] with per-axis variants (e.g. per-channel
//! statistics for normalization layers and audits).

use crate::{Result, Tensor, TensorError};

fn check_axis(op: &'static str, t: &Tensor, axis: usize) -> Result<()> {
    if axis >= t.shape().rank() {
        return Err(TensorError::RankMismatch {
            op,
            expected: axis + 1,
            actual: t.shape().rank(),
        });
    }
    Ok(())
}

/// Iterates the tensor as `(outer, axis, inner)` index triples where the
/// flat offset is `(outer * axis_len + a) * inner_len + i`.
fn axis_geometry(t: &Tensor, axis: usize) -> (usize, usize, usize) {
    let dims = t.dims();
    let outer: usize = dims[..axis].iter().product();
    let axis_len = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    (outer, axis_len, inner)
}

fn reduced_dims(t: &Tensor, axis: usize) -> Vec<usize> {
    let mut dims = t.dims().to_vec();
    dims.remove(axis);
    if dims.is_empty() {
        dims.push(1);
    }
    dims
}

/// Sums over one axis, removing it (`[2, 3, 4]` summed over axis 1 gives
/// `[2, 4]`; reducing a rank-1 tensor gives `[1]`).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `axis` is out of range.
///
/// # Examples
///
/// ```
/// use qce_tensor::{axis, Tensor};
///
/// # fn main() -> Result<(), qce_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let rows = axis::sum_axis(&t, 1)?;
/// assert_eq!(rows.as_slice(), &[3.0, 7.0]);
/// let cols = axis::sum_axis(&t, 0)?;
/// assert_eq!(cols.as_slice(), &[4.0, 6.0]);
/// # Ok(())
/// # }
/// ```
pub fn sum_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    check_axis("sum_axis", t, axis)?;
    let (outer, axis_len, inner) = axis_geometry(t, axis);
    let tv = t.as_slice();
    let mut out = vec![0.0f32; outer * inner];
    for o in 0..outer {
        for a in 0..axis_len {
            let base = (o * axis_len + a) * inner;
            let dst = &mut out[o * inner..(o + 1) * inner];
            for (d, &v) in dst.iter_mut().zip(&tv[base..base + inner]) {
                *d += v;
            }
        }
    }
    Tensor::from_vec(out, &reduced_dims(t, axis))
}

/// Means over one axis, removing it.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `axis` is out of range or
/// [`TensorError::EmptyShape`] if the axis has zero length.
pub fn mean_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    check_axis("mean_axis", t, axis)?;
    let len = t.dims()[axis];
    if len == 0 {
        return Err(TensorError::EmptyShape);
    }
    let mut out = sum_axis(t, axis)?;
    out.scale_mut(1.0 / len as f32);
    Ok(out)
}

/// Maxima over one axis, removing it.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `axis` is out of range or
/// [`TensorError::EmptyShape`] if the axis has zero length.
pub fn max_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    check_axis("max_axis", t, axis)?;
    let (outer, axis_len, inner) = axis_geometry(t, axis);
    if axis_len == 0 {
        return Err(TensorError::EmptyShape);
    }
    let tv = t.as_slice();
    let mut out = vec![f32::NEG_INFINITY; outer * inner];
    for o in 0..outer {
        for a in 0..axis_len {
            let base = (o * axis_len + a) * inner;
            let dst = &mut out[o * inner..(o + 1) * inner];
            for (d, &v) in dst.iter_mut().zip(&tv[base..base + inner]) {
                *d = d.max(v);
            }
        }
    }
    Tensor::from_vec(out, &reduced_dims(t, axis))
}

/// Argmax over one axis, removing it; ties resolve to the lowest index.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `axis` is out of range or
/// [`TensorError::EmptyShape`] if the axis has zero length.
pub fn argmax_axis(t: &Tensor, axis: usize) -> Result<Vec<usize>> {
    check_axis("argmax_axis", t, axis)?;
    let (outer, axis_len, inner) = axis_geometry(t, axis);
    if axis_len == 0 {
        return Err(TensorError::EmptyShape);
    }
    let tv = t.as_slice();
    let mut out = vec![0usize; outer * inner];
    let mut best = vec![f32::NEG_INFINITY; outer * inner];
    for o in 0..outer {
        for a in 0..axis_len {
            let base = (o * axis_len + a) * inner;
            for i in 0..inner {
                let v = tv[base + i];
                let slot = o * inner + i;
                if v > best[slot] {
                    best[slot] = v;
                    out[slot] = a;
                }
            }
        }
    }
    Ok(out)
}

/// Adds a rank-1 tensor along `axis`, broadcasting it over every other
/// dimension (e.g. a per-channel bias over `[N, C, H, W]` with
/// `axis = 1`).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for a bad axis or
/// [`TensorError::ShapeMismatch`] if `v.len()` differs from the axis
/// length.
pub fn broadcast_add(t: &Tensor, v: &Tensor, axis: usize) -> Result<Tensor> {
    check_axis("broadcast_add", t, axis)?;
    let (outer, axis_len, inner) = axis_geometry(t, axis);
    if v.len() != axis_len {
        return Err(TensorError::ShapeMismatch {
            op: "broadcast_add",
            lhs: t.dims().to_vec(),
            rhs: v.dims().to_vec(),
        });
    }
    let mut out = t.clone();
    let ov = out.as_mut_slice();
    let vv = v.as_slice();
    for o in 0..outer {
        for (a, &add) in vv.iter().enumerate() {
            let base = (o * axis_len + a) * inner;
            for x in &mut ov[base..base + inner] {
                *x += add;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t234() -> Tensor {
        Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap()
    }

    #[test]
    fn sum_axis_each_dimension() {
        let t = t234();
        let s0 = sum_axis(&t, 0).unwrap();
        assert_eq!(s0.dims(), &[3, 4]);
        assert_eq!(s0.as_slice()[0], 0.0 + 12.0);
        let s1 = sum_axis(&t, 1).unwrap();
        assert_eq!(s1.dims(), &[2, 4]);
        assert_eq!(s1.as_slice()[0], 0.0 + 4.0 + 8.0);
        let s2 = sum_axis(&t, 2).unwrap();
        assert_eq!(s2.dims(), &[2, 3]);
        assert_eq!(s2.as_slice()[0], 0.0 + 1.0 + 2.0 + 3.0);
        // Total is preserved by every axis reduction.
        assert_eq!(s0.sum(), t.sum());
        assert_eq!(s1.sum(), t.sum());
        assert_eq!(s2.sum(), t.sum());
    }

    #[test]
    fn mean_axis_divides() {
        let t = t234();
        let m = mean_axis(&t, 1).unwrap();
        assert_eq!(m.as_slice()[0], 4.0);
    }

    #[test]
    fn max_and_argmax_axis() {
        let t = Tensor::from_vec(vec![1.0, 9.0, 5.0, 3.0, 7.0, 2.0], &[2, 3]).unwrap();
        let m = max_axis(&t, 1).unwrap();
        assert_eq!(m.as_slice(), &[9.0, 7.0]);
        assert_eq!(argmax_axis(&t, 1).unwrap(), vec![1, 1]);
        let m0 = max_axis(&t, 0).unwrap();
        assert_eq!(m0.as_slice(), &[3.0, 9.0, 5.0]);
        assert_eq!(argmax_axis(&t, 0).unwrap(), vec![1, 0, 0]);
    }

    #[test]
    fn rank1_reduction_gives_scalar_like() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let s = sum_axis(&t, 0).unwrap();
        assert_eq!(s.dims(), &[1]);
        assert_eq!(s.as_slice(), &[6.0]);
    }

    #[test]
    fn broadcast_add_per_channel() {
        let t = Tensor::zeros(&[2, 3, 2]);
        let bias = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let out = broadcast_add(&t, &bias, 1).unwrap();
        assert_eq!(out.at(&[0, 0, 0]), 1.0);
        assert_eq!(out.at(&[1, 2, 1]), 3.0);
        assert_eq!(out.sum(), 2.0 * 2.0 * (1.0 + 2.0 + 3.0));
    }

    #[test]
    fn errors_on_bad_axis_or_shape() {
        let t = t234();
        assert!(sum_axis(&t, 3).is_err());
        assert!(mean_axis(&t, 9).is_err());
        assert!(broadcast_add(&t, &Tensor::from_slice(&[1.0]), 1).is_err());
    }
}
