//! Deterministic scoped-thread parallelism for the compute kernels.
//!
//! The pool is a zero-dependency wrapper around [`std::thread::scope`]:
//! no worker threads are kept alive between calls, no channels, no
//! work-stealing. Work is **statically partitioned** into contiguous,
//! disjoint ranges, and each range owns a disjoint slice of the output.
//! Because every output element is produced by exactly one thread using
//! a fixed per-element accumulation order, results are bit-for-bit
//! identical for every thread count — there are no cross-thread
//! floating-point reductions anywhere in this crate.
//!
//! The worker count of the global pool comes from the `QCE_THREADS`
//! environment variable when set to a positive integer, and from
//! [`std::thread::available_parallelism`] otherwise. `QCE_THREADS=1`
//! (or [`Pool::serial`]) degrades every kernel to the plain scalar
//! reference path.
//!
//! On machines that expose a single hardware core (see
//! [`detected_cores`]), every pool — however wide — takes the inline
//! path: spawning scoped threads on one core cannot overlap any work,
//! it only adds spawn/join overhead. Since the partition never changes
//! the arithmetic, this fallback is invisible in the outputs.
//!
//! # Examples
//!
//! ```
//! use qce_tensor::par::{self, Pool};
//!
//! let pool = Pool::with_threads(4);
//! let mut data = vec![0.0f32; 10];
//! par::for_each_chunk(&pool, &mut data, 3, || (), |_, idx, chunk| {
//!     for v in chunk.iter_mut() {
//!         *v = idx as f32;
//!     }
//! });
//! assert_eq!(data[0], 0.0);
//! assert_eq!(data[9], 3.0);
//! ```

use std::sync::OnceLock;
use std::time::Instant;

/// Cached handles into the global telemetry registry.
///
/// Telemetry here is strictly observational: the counters never influence
/// partitioning or scheduling, so the determinism contract is unchanged.
struct PoolStats {
    /// `for_each_item` calls that ran entirely on the calling thread.
    inline_runs: qce_telemetry::Counter,
    /// `for_each_item` calls that spawned scoped workers.
    parallel_runs: qce_telemetry::Counter,
    /// Items dispatched across all calls.
    tasks: qce_telemetry::Counter,
    /// Per-worker busy time per parallel call, in microseconds
    /// (recorded only while trace collection is enabled).
    worker_busy_us: qce_telemetry::Histogram,
    /// Total worker busy time across parallel calls, in microseconds
    /// (recorded only while trace collection is enabled).
    busy_us: qce_telemetry::Counter,
    /// Total worker idle time across parallel calls, in microseconds:
    /// `wall × workers − busy`. There is no work-stealing by design
    /// (stealing would make the partition schedule-dependent and break
    /// the determinism contract), so this measures the imbalance of the
    /// static partition — the time workers spent waiting in the join
    /// for the slowest partition to finish.
    idle_us: qce_telemetry::Counter,
}

fn pool_stats() -> &'static PoolStats {
    static STATS: OnceLock<PoolStats> = OnceLock::new();
    STATS.get_or_init(|| PoolStats {
        inline_runs: qce_telemetry::counter("pool.inline_runs"),
        parallel_runs: qce_telemetry::counter("pool.parallel_runs"),
        tasks: qce_telemetry::counter("pool.tasks"),
        worker_busy_us: qce_telemetry::histogram(
            "pool.worker_busy_us",
            &[10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0],
        ),
        busy_us: qce_telemetry::counter("pool.busy_us"),
        idle_us: qce_telemetry::counter("pool.idle_us"),
    })
}

/// A fixed-width scoped thread pool.
///
/// `Pool` holds no threads; it is only a worker-count policy object.
/// Each `for_each_*` call spawns (at most) that many scoped threads and
/// joins them before returning, so borrows of surrounding stack data are
/// safe without `unsafe` or `'static` bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool that never spawns: every kernel runs on the calling thread.
    ///
    /// This is the scalar reference implementation that the determinism
    /// property tests compare every parallel configuration against.
    #[must_use]
    pub fn serial() -> Self {
        Pool { threads: 1 }
    }

    /// A pool with exactly `n` workers (clamped to at least 1).
    #[must_use]
    pub fn with_threads(n: usize) -> Self {
        Pool { threads: n.max(1) }
    }

    /// The process-wide default pool.
    ///
    /// Worker count is read once from `QCE_THREADS` (positive integer),
    /// falling back to [`std::thread::available_parallelism`].
    #[must_use]
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::with_threads(default_threads()))
    }

    /// Number of worker threads this pool will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs everything on the calling thread.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Workers that would actually run concurrently for `items` units of
    /// work: the pool width, clamped by the item count and by the 1-core
    /// inline fallback (see the module docs).
    ///
    /// Kernels use this to decide between their parallel decomposition
    /// (per-item partial buffers, reduced in a fixed order) and a leaner
    /// serial path that produces the same bytes without the partials —
    /// on hosts where the pool cannot win, the amortized serial path is
    /// strictly cheaper.
    #[must_use]
    pub fn effective_workers(&self, items: usize) -> usize {
        if detected_cores() == 1 {
            1
        } else {
            self.threads.min(items.max(1))
        }
    }
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("QCE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    detected_cores()
}

/// Hardware core count reported by
/// [`std::thread::available_parallelism`], read once and cached.
///
/// Unlike [`Pool::global`]'s worker count this ignores `QCE_THREADS`:
/// it answers "can threads actually run concurrently here?", which is
/// what the inline fallback and the bench report need. Returns 1 when
/// the parallelism query fails.
#[must_use]
pub fn detected_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs `f` once per item, distributing items contiguously over the pool.
///
/// Items are moved into the workers: thread `t` of `T` receives the
/// contiguous range of items starting at offset `sum(len_0..len_t)` where
/// the first `n % T` threads take `n / T + 1` items each. `f` is called
/// as `f(&mut state, global_index, item)` with `state` built per-thread
/// by `init`; indices within one thread ascend, so any per-item work is
/// ordered exactly as in the serial loop.
///
/// Determinism: the partition affects only *which thread* runs an item,
/// never the arithmetic performed for it, so outputs are identical for
/// every thread count as long as `f` writes only to state owned by its
/// item (enforced naturally by passing items by value, e.g. disjoint
/// `&mut [f32]` chunks).
pub fn for_each_item<T, S, I, F>(pool: &Pool, items: Vec<T>, init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let stats = pool_stats();
    stats.tasks.incr(n as u64);
    let threads = pool.threads.min(n);
    if threads <= 1 || detected_cores() == 1 {
        // Fast path: a one-worker pool, a single item, or a single
        // hardware core never spawns — the whole batch runs inline on
        // the calling thread.
        stats.inline_runs.incr(1);
        let mut state = init();
        for (idx, item) in items.into_iter().enumerate() {
            f(&mut state, idx, item);
        }
        return;
    }
    stats.parallel_runs.incr(1);
    // Busy-time attribution needs a clock read per worker; only pay for
    // it when a trace sink is attached or logging is at debug.
    let collect = qce_telemetry::collect_enabled();
    let call_t0 = collect.then(Instant::now);
    let busy_total = std::sync::atomic::AtomicU64::new(0);
    let busy_total = &busy_total;
    // Contiguous static partition: thread t takes base + (t < rem) items.
    let base = n / threads;
    let rem = n % threads;
    let mut parts: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
    let mut remaining = items;
    let mut start = 0;
    for t in 0..threads {
        let take = base + usize::from(t < rem);
        let tail = remaining.split_off(take);
        parts.push((start, remaining));
        remaining = tail;
        start += take;
    }
    let f = &f;
    let init = &init;
    let run_part = move |offset: usize, part: Vec<T>| {
        let t0 = collect.then(Instant::now);
        let mut state = init();
        for (i, item) in part.into_iter().enumerate() {
            f(&mut state, offset + i, item);
        }
        if let Some(t0) = t0 {
            let elapsed = t0.elapsed();
            stats.worker_busy_us.record(elapsed.as_secs_f64() * 1e6);
            busy_total.fetch_add(
                u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
                std::sync::atomic::Ordering::Relaxed,
            );
        }
    };
    std::thread::scope(|scope| {
        let mut parts = parts.into_iter();
        // The first partition runs on the calling thread: it would
        // otherwise idle in the join, and one spawn is saved per call.
        let head = parts.next();
        for (offset, part) in parts {
            scope.spawn(move || run_part(offset, part));
        }
        if let Some((offset, part)) = head {
            run_part(offset, part);
        }
    });
    if let Some(t0) = call_t0 {
        let wall_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        let busy = busy_total.load(std::sync::atomic::Ordering::Relaxed);
        let capacity = wall_us.saturating_mul(threads as u64);
        stats.busy_us.incr(busy);
        stats.idle_us.incr(capacity.saturating_sub(busy));
    }
}

/// Splits `data` into chunks of `chunk_len` and runs `f` on each in parallel.
///
/// Chunk boundaries depend only on `chunk_len` (the last chunk may be
/// short), never on the thread count, so a kernel that fixes its work
/// decomposition via `chunk_len` produces bitwise-identical output under
/// any pool. `f` receives `(&mut state, chunk_index, chunk)`.
pub fn for_each_chunk<T, S, I, F>(pool: &Pool, data: &mut [T], chunk_len: usize, init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    let chunks: Vec<&mut [T]> = data.chunks_mut(chunk_len.max(1)).collect();
    for_each_item(pool, chunks, init, f);
}

/// Sorts `data` by IEEE-754 total order, identically for any pool.
///
/// Serial path: `sort_unstable_by(f32::total_cmp)`. Parallel path: each
/// thread sorts a contiguous run, then runs are merged pairwise bottom-up.
/// Because `total_cmp` is a total order over bit patterns, the sorted
/// array is bitwise unique — every schedule yields the same bytes.
pub fn sort_f32(pool: &Pool, data: &mut [f32]) {
    const SERIAL_CUTOFF: usize = 8192;
    let n = data.len();
    if pool.threads <= 1 || n <= SERIAL_CUTOFF || detected_cores() == 1 {
        data.sort_unstable_by(f32::total_cmp);
        return;
    }
    let run = n.div_ceil(pool.threads);
    for_each_chunk(
        pool,
        data,
        run,
        || (),
        |_, _, chunk| {
            chunk.sort_unstable_by(f32::total_cmp);
        },
    );
    // Bottom-up merge of sorted runs, ping-ponging between `data` and `aux`.
    let mut aux = vec![0.0f32; n];
    let mut width = run;
    let mut in_data = true;
    while width < n {
        {
            let (src, dst): (&[f32], &mut [f32]) = if in_data {
                (&*data, &mut aux)
            } else {
                (&aux, data)
            };
            let src = &src[..n];
            for_each_chunk(
                pool,
                dst,
                2 * width,
                || (),
                |_, idx, out| {
                    let lo = idx * 2 * width;
                    let mid = (lo + width).min(n);
                    let hi = (lo + 2 * width).min(n);
                    merge_runs(&src[lo..mid], &src[mid..hi], out);
                },
            );
        }
        width *= 2;
        in_data = !in_data;
    }
    if !in_data {
        data.copy_from_slice(&aux);
    }
}

fn merge_runs(left: &[f32], right: &[f32], out: &mut [f32]) {
    debug_assert_eq!(left.len() + right.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_left = j >= right.len()
            || (i < left.len() && left[i].total_cmp(&right[j]) != std::cmp::Ordering::Greater);
        if take_left {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_pool_is_serial() {
        assert!(Pool::serial().is_serial());
        assert_eq!(Pool::with_threads(0).threads(), 1);
        assert_eq!(Pool::with_threads(6).threads(), 6);
    }

    #[test]
    fn for_each_item_covers_all_indices() {
        for threads in [1, 2, 3, 8, 17] {
            let pool = Pool::with_threads(threads);
            let items: Vec<usize> = (0..23).collect();
            let mut hits = [0u8; 23];
            let slots: Vec<&mut u8> = hits.iter_mut().collect();
            let pairs: Vec<(usize, &mut u8)> = items.into_iter().zip(slots).collect();
            for_each_item(
                &pool,
                pairs,
                || (),
                |_, idx, (item, slot)| {
                    assert_eq!(idx, item);
                    *slot += 1;
                },
            );
            assert!(hits.iter().all(|&h| h == 1), "threads={threads}");
        }
    }

    #[test]
    fn for_each_chunk_indices_match_layout() {
        for threads in [1, 3, 5] {
            let pool = Pool::with_threads(threads);
            let mut data = vec![0.0f32; 1000];
            for_each_chunk(
                &pool,
                &mut data,
                64,
                || (),
                |_, idx, chunk| {
                    for (off, v) in chunk.iter_mut().enumerate() {
                        *v = (idx * 64 + off) as f32;
                    }
                },
            );
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, i as f32);
            }
        }
    }

    #[test]
    fn sort_f32_matches_serial_bitwise() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut base: Vec<f32> = (0..40_000).map(|_| rng.random_range(-4.0..4.0)).collect();
        base[17] = -0.0;
        base[400] = 0.0;
        base[999] = f32::NAN;
        let mut expect = base.clone();
        expect.sort_unstable_by(f32::total_cmp);
        for threads in [1, 2, 3, 8] {
            let mut got = base.clone();
            sort_f32(&Pool::with_threads(threads), &mut got);
            let same = got
                .iter()
                .zip(expect.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "threads={threads}");
        }
    }

    #[test]
    fn inline_fast_path_is_counted() {
        let inline = qce_telemetry::counter("pool.inline_runs");
        let parallel = qce_telemetry::counter("pool.parallel_runs");
        let tasks = qce_telemetry::counter("pool.tasks");
        // Counters are global and tests run concurrently, so assert
        // monotone lower bounds rather than exact deltas.
        let (i0, p0, t0) = (inline.get(), parallel.get(), tasks.get());
        // One worker → inline, regardless of item count.
        for_each_item(&Pool::serial(), vec![1u8, 2, 3], || (), |_, _, _| {});
        // One item → inline even on a wide pool (threads is clamped to n).
        for_each_item(&Pool::with_threads(8), vec![9u8], || (), |_, _, _| {});
        assert!(inline.get() - i0 >= 2);
        assert!(tasks.get() - t0 >= 4);
        // Two workers → parallel, unless the machine has only one core,
        // in which case the 1-core fallback keeps the call inline.
        for_each_item(&Pool::with_threads(2), vec![1u8, 2, 3], || (), |_, _, _| {});
        if detected_cores() > 1 {
            assert!(parallel.get() - p0 >= 1);
        } else {
            assert!(inline.get() - i0 >= 3);
        }
    }

    #[test]
    fn busy_and_idle_are_accounted_under_collection() {
        if detected_cores() == 1 {
            return; // 1-core hosts never take the parallel path
        }
        let busy = qce_telemetry::counter("pool.busy_us");
        let idle = qce_telemetry::counter("pool.idle_us");
        let prev = qce_telemetry::level();
        qce_telemetry::set_level(qce_telemetry::Level::Debug);
        let (b0, i0) = (busy.get(), idle.get());
        // A deliberately imbalanced batch: one heavy item among light
        // ones on a 2-wide pool forces static-partition idle time.
        let items: Vec<u64> = (0..8).collect();
        for_each_item(
            &Pool::with_threads(2),
            items,
            || (),
            |_, _, item| {
                if item == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            },
        );
        qce_telemetry::set_level(prev);
        // Counters are global; assert monotone lower bounds only.
        assert!(busy.get() - b0 >= 5_000, "busy time missing");
        assert!(idle.get() >= i0, "idle counter went backwards");
    }

    #[test]
    fn empty_inputs_are_fine() {
        let pool = Pool::with_threads(4);
        for_each_item(&pool, Vec::<u8>::new(), || (), |_, _, _| {});
        let mut empty: [f32; 0] = [];
        for_each_chunk(&pool, &mut empty, 8, || (), |_, _, _| {});
        sort_f32(&pool, &mut empty);
    }
}
