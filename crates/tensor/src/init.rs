//! Deterministic, seeded weight initializers.
//!
//! All stochastic state in the workspace flows through explicitly seeded
//! [`StdRng`] instances so that every experiment table is reproducible
//! bit-for-bit. Normal samples come from a Box–Muller transform to avoid
//! pulling in `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::Tensor;

/// Draws one standard-normal sample using the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = qce_tensor::init::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + RngExt>(rng: &mut R) -> f32 {
    // Guard u1 away from 0 so ln() stays finite.
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fills a new tensor with `N(0, std^2)` samples.
pub fn normal(dims: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| standard_normal(rng) * std).collect();
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

/// Fills a new tensor with `U(lo, hi)` samples.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    assert!(lo < hi, "uniform requires lo < hi, got [{lo}, {hi})");
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.random_range(lo..hi)).collect();
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

/// Kaiming-He initialization for ReLU networks: `N(0, sqrt(2 / fan_in))`.
///
/// `fan_in` is the number of input connections per output unit (e.g.
/// `C * kh * kw` for a convolution).
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming(dims: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in > 0, "kaiming requires fan_in > 0");
    let std = (2.0 / fan_in as f32).sqrt();
    normal(dims, std, rng)
}

/// Xavier-Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in + fan_out > 0, "xavier requires fan_in + fan_out > 0");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(dims, -a, a, rng)
}

/// Creates a seeded RNG; the single entry point other crates use so that
/// seeds stay explicit at call sites.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_across_identical_seeds() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let ta = normal(&[100], 1.0, &mut a);
        let tb = normal(&[100], 1.0, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let ta = normal(&[100], 1.0, &mut seeded_rng(1));
        let tb = normal(&[100], 1.0, &mut seeded_rng(2));
        assert_ne!(ta, tb);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let t = normal(&[20_000], 1.0, &mut seeded_rng(3));
        let mean = t.mean();
        let var = t
            .as_slice()
            .iter()
            .map(|&x| (x - mean).powi(2))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let t = uniform(&[5_000], -0.25, 0.75, &mut seeded_rng(4));
        assert!(t.as_slice().iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let narrow = kaiming(&[10_000], 8, &mut seeded_rng(5));
        let wide = kaiming(&[10_000], 512, &mut seeded_rng(5));
        let std = |t: &Tensor| {
            let m = t.mean();
            (t.as_slice().iter().map(|&x| (x - m).powi(2)).sum::<f32>() / t.len() as f32).sqrt()
        };
        assert!(std(&narrow) > std(&wide) * 4.0);
    }

    #[test]
    fn xavier_bound_respected() {
        let t = xavier(&[2_000], 30, 70, &mut seeded_rng(6));
        let a = (6.0f32 / 100.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn standard_normal_finite() {
        let mut rng = seeded_rng(7);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
