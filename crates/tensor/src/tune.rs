//! Startup autotuning of cache-block and work-chunk sizes.
//!
//! The kernels in [`crate::linalg`], [`crate::conv`] and the `qce-quant`
//! bulk paths size their parallel work units from a [`TuneProfile`]
//! probed **once** at startup (and cached in a `OnceLock`, so every
//! kernel in a run sees the same numbers — reproducible within a run by
//! construction). The probe reads the cache hierarchy from
//! `/sys/devices/system/cpu/cpu0/cache` on Linux and falls back to
//! conservative defaults elsewhere; core count comes from
//! [`crate::par::detected_cores`].
//!
//! # Why tuning cannot affect results
//!
//! Chunk sizes decide *how work is grouped into tasks*, never the
//! arithmetic performed per output element: every kernel fixes its
//! per-element accumulation order (ascending `p` in the matmul
//! microkernel, ascending sample index in the conv reductions), and no
//! floating-point sum ever crosses a task boundary. Two hosts with
//! different caches produce different task shapes and identical bytes.
//! Crucially the profile is derived from *detected hardware only* —
//! never from `QCE_THREADS` — so the decomposition is also stable across
//! thread-count settings on one machine, which is what the conformance
//! goldens exercise.
//!
//! The register tile itself ([`crate::simd::MR`] × [`crate::simd::NR`])
//! is **not** tuned at runtime: 4×8 is the largest tile where four
//! accumulators, a broadcast and a panel load fit the 16 YMM registers
//! of AVX2 (and the scalar path's locals mirror it), and changing `NR`
//! would change the packed-panel layout. The startup probe validates
//! rather than searches that shape: it sizes the *cache blocking around
//! it* — rows per matmul task bounded by L2, elements per bulk-quantizer
//! chunk — which is where host-to-host variation actually lives.

use std::sync::OnceLock;

use crate::par;
use crate::simd::MR;

/// Cache-hierarchy sizes and derived chunking parameters, probed once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneProfile {
    /// Per-core L1 data cache in bytes.
    pub l1d_bytes: usize,
    /// Per-core L2 cache in bytes.
    pub l2_bytes: usize,
    /// Last-level cache in bytes (0 when the host exposes no L3).
    pub l3_bytes: usize,
    /// Hardware cores, from [`par::detected_cores`].
    pub cores: usize,
    /// Target number of parallel tasks per kernel invocation: a few per
    /// core so static partitioning stays balanced without drowning
    /// few-core hosts in per-task overhead.
    pub target_tasks: usize,
}

/// Fallback sizes for hosts where the sysfs probe is unavailable:
/// 32 KiB L1d / 512 KiB L2 / 8 MiB L3 — conservative for anything the
/// workspace realistically runs on.
const DEFAULT_L1D: usize = 32 * 1024;
const DEFAULT_L2: usize = 512 * 1024;
const DEFAULT_L3: usize = 8 * 1024 * 1024;

/// Tasks per core the chunk heuristics aim for. Small enough that a
/// 1-core host sees only a handful of task dispatches per kernel call
/// (the conv2d-backward regression was exactly this overhead), large
/// enough that an 8-core pool still load-balances.
const TASKS_PER_CORE: usize = 4;

impl TuneProfile {
    /// Rows per parallel matmul task for an `[m, k] x [k, n]` product.
    ///
    /// Balances two pressures: enough tasks to occupy the pool
    /// ([`TuneProfile::target_tasks`] total) and an A-slab per task that
    /// stays within half the L2 so the microkernel streams panels
    /// against cache-resident rows. Always a positive multiple of
    /// [`MR`], so tile boundaries — and therefore per-element
    /// accumulation order — are unchanged by the grouping.
    #[must_use]
    pub fn matmul_rows_per_task(&self, m: usize, k: usize) -> usize {
        let bytes_per_row = k.max(1) * std::mem::size_of::<f32>();
        let cache_cap_rows = (self.l2_bytes / 2 / bytes_per_row).max(MR);
        let balance_rows = m.div_ceil(self.target_tasks).max(MR);
        let rows = balance_rows.min(cache_cap_rows);
        // Round up to the microkernel tile so full 4-row blocks dominate.
        rows.div_ceil(MR) * MR
    }

    /// Elements per task for bulk elementwise passes (codebook
    /// assign/quantize/decode), with `floor` as the minimum granularity
    /// worth dispatching.
    #[must_use]
    pub fn bulk_chunk(&self, len: usize, floor: usize) -> usize {
        len.div_ceil(self.target_tasks).max(floor).max(1)
    }
}

/// The process-wide tuning profile (probed on first call, then fixed).
#[must_use]
pub fn profile() -> &'static TuneProfile {
    static PROFILE: OnceLock<TuneProfile> = OnceLock::new();
    PROFILE.get_or_init(|| {
        let (l1d, l2, l3) = probe_caches();
        let cores = par::detected_cores();
        TuneProfile {
            l1d_bytes: l1d,
            l2_bytes: l2,
            l3_bytes: l3,
            cores,
            target_tasks: TASKS_PER_CORE * cores,
        }
    })
}

/// Reads data/unified cache sizes per level from sysfs, falling back to
/// the defaults when the probe fails (non-Linux, sandboxed, etc.).
fn probe_caches() -> (usize, usize, usize) {
    let (mut l1d, mut l2, mut l3) = (0usize, 0usize, 0usize);
    for index in 0..8 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{index}");
        let read = |leaf: &str| std::fs::read_to_string(format!("{base}/{leaf}"));
        let (Ok(level), Ok(ty), Ok(size)) = (read("level"), read("type"), read("size")) else {
            break;
        };
        let ty = ty.trim();
        if ty != "Data" && ty != "Unified" {
            continue;
        }
        let Some(bytes) = parse_cache_size(size.trim()) else {
            continue;
        };
        match level.trim() {
            "1" => l1d = bytes,
            "2" => l2 = bytes,
            "3" => l3 = bytes,
            _ => {}
        }
    }
    (
        if l1d > 0 { l1d } else { DEFAULT_L1D },
        if l2 > 0 { l2 } else { DEFAULT_L2 },
        if l3 > 0 { l3 } else { DEFAULT_L3 },
    )
}

/// Parses sysfs cache sizes like `32K`, `1M`, `512`.
fn parse_cache_size(s: &str) -> Option<usize> {
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_size_parsing() {
        assert_eq!(parse_cache_size("32K"), Some(32 * 1024));
        assert_eq!(parse_cache_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size("8m"), Some(8 * 1024 * 1024));
        assert_eq!(parse_cache_size(""), None);
        assert_eq!(parse_cache_size("fast"), None);
    }

    #[test]
    fn profile_is_stable_and_positive() {
        let p1 = profile();
        let p2 = profile();
        assert_eq!(p1, p2, "profile must be probed once and cached");
        assert!(p1.l1d_bytes > 0 && p1.l2_bytes > 0);
        assert!(p1.cores >= 1);
        assert!(p1.target_tasks >= TASKS_PER_CORE);
    }

    #[test]
    fn matmul_rows_are_mr_multiples_and_bounded() {
        let p = TuneProfile {
            l1d_bytes: 32 * 1024,
            l2_bytes: 512 * 1024,
            l3_bytes: 0,
            cores: 1,
            target_tasks: 4,
        };
        for (m, k) in [(1, 1), (128, 256), (1000, 3), (3, 100_000), (4096, 64)] {
            let rows = p.matmul_rows_per_task(m, k);
            assert!(rows >= MR, "m={m} k={k}");
            assert_eq!(rows % MR, 0, "m={m} k={k}");
            // The A-slab must fit half the L2 once k is large enough to
            // make that constraint binding.
            if k * 4 * MR <= p.l2_bytes / 2 {
                assert!(rows * k * 4 <= p.l2_bytes / 2 + MR * k * 4, "m={m} k={k}");
            }
        }
        // Balance: 128 rows over 4 target tasks = 32-row chunks.
        assert_eq!(p.matmul_rows_per_task(128, 256), 32);
    }

    #[test]
    fn bulk_chunks_amortize_on_few_cores() {
        let p = TuneProfile {
            l1d_bytes: 32 * 1024,
            l2_bytes: 512 * 1024,
            l3_bytes: 0,
            cores: 1,
            target_tasks: 4,
        };
        assert_eq!(p.bulk_chunk(100_000, 16 * 1024), 25_000);
        // The floor wins for small inputs.
        assert_eq!(p.bulk_chunk(100, 16 * 1024), 16 * 1024);
        assert_eq!(p.bulk_chunk(0, 0), 1);
    }
}
