use std::fmt;

/// Dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// A `Shape` is an immutable list of dimension sizes with helpers for
/// volume and row-major stride computation.
///
/// # Examples
///
/// ```
/// use qce_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates a scalar (rank-0) shape with volume 1.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions; 1 for scalars).
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index into a linear offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds (debug builds assert per-coordinate bounds).
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} != shape rank {}",
            index.len(),
            self.dims.len()
        );
        let strides = self.strides();
        let mut off = 0;
        for (i, (&ix, &stride)) in index.iter().zip(strides.iter()).enumerate() {
            debug_assert!(
                ix < self.dims[i],
                "index {ix} out of bounds for dim {i} of size {}",
                self.dims[i]
            );
            off += ix * stride;
        }
        off
    }

    /// Returns the size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    let off = s.offset(&[a, b, c]);
                    assert!(off < s.volume());
                    assert!(seen.insert(off), "offset {off} duplicated");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2x3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    #[should_panic(expected = "index rank")]
    fn offset_wrong_rank_panics() {
        Shape::new(&[2, 2]).offset(&[1]);
    }
}
