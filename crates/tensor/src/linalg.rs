//! Dense 2-D linear algebra: matrix multiplication and transposition.
//!
//! These are the inner kernels of the `qce-nn` fully-connected and
//! im2col-convolution layers. The matmul uses a cache-friendly i-k-j loop
//! order over contiguous rows; no unsafe, no SIMD intrinsics.

use crate::{Result, Tensor, TensorError};

/// Multiplies two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2,
/// or [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use qce_tensor::{linalg, Tensor};
///
/// # fn main() -> Result<(), qce_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = linalg::matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul", a)?;
    check_rank2("matmul", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            for (o, &bpn) in orow.iter_mut().zip(brow.iter()) {
                *o += aip * bpn;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transposes a rank-2 tensor: `[m, n] -> [n, m]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    check_rank2("transpose", a)?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = av[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// Matrix–vector product: `[m, k] x [k] -> [m]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::ShapeMismatch`]
/// on incompatible operands.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    check_rank2("matvec", a)?;
    if x.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            op: "matvec",
            expected: 1,
            actual: x.shape().rank(),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    if k != x.len() {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let av = a.as_slice();
    let xv = x.as_slice();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &av[i * k..(i + 1) * k];
        *o = row.iter().zip(xv.iter()).map(|(&p, &q)| p * q).sum();
    }
    Tensor::from_vec(out, &[m])
}

/// Dot product of two rank-1 tensors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.len() != b.len() {
        return Err(TensorError::ShapeMismatch {
            op: "dot",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(a.as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(&p, &q)| p * q)
        .sum())
}

fn check_rank2(op: &'static str, t: &Tensor) -> Result<()> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_matches_naive() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Tensor::from_vec(
            (0..12 * 5).map(|_| rng.random_range(-1.0..1.0)).collect(),
            &[12, 5],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..5 * 9).map(|_| rng.random_range(-1.0..1.0)).collect(),
            &[5, 9],
        )
        .unwrap();
        let fast = matmul(&a, &b).unwrap();
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = matmul(&a, &Tensor::eye(2)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            matmul(&a, &v),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        let tt = transpose(&t).unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn matvec_and_dot() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let x = Tensor::from_slice(&[1.0, -1.0]);
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.as_slice(), &[-1.0, -1.0]);
        assert_eq!(dot(&x, &x).unwrap(), 2.0);
        assert!(dot(&x, &Tensor::zeros(&[3])).is_err());
    }
}
