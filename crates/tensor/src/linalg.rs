//! Dense 2-D linear algebra: blocked matrix multiplication and transposition.
//!
//! These are the inner kernels of the `qce-nn` fully-connected and
//! im2col-convolution layers. The matmul is register-tiled (4×8
//! microkernel over a packed B panel) and row-parallel via
//! [`crate::par::Pool`]; rows are grouped into tasks sized by the
//! [`crate::tune`] cache profile, but the per-element accumulation
//! order is fixed by the tile shape — never by the thread count or the
//! task grouping — so every pool produces bit-for-bit identical output.
//! The microkernel and dot kernels dispatch through [`crate::simd`],
//! whose AVX2 paths replicate the scalar operation order exactly
//! (`QCE_SIMD=off` and `auto` agree bitwise).
//!
//! The dense inner loop deliberately has **no zero-skip branch**: on the
//! dense (or magnitude-pruned) weight matrices this workspace multiplies,
//! a data-dependent `if aip == 0.0 { continue; }` mispredicts and starves
//! the FMA pipeline. Sparse inputs belong to a dedicated sparse kernel,
//! not a branch in the dense one; `crates/bench/benches/kernels.rs`
//! carries a dense-vs-pruned comparison guarding this decision.

use crate::par::{self, Pool};
use crate::simd::{self, NR};
use crate::tune;
use crate::{Result, Tensor, TensorError};

/// Square tile edge for the cache-blocked transpose.
const TRANSPOSE_TILE: usize = 32;

/// Multiplies two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
///
/// Uses [`Pool::global`]; see [`matmul_with`] for an explicit pool.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2,
/// or [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use qce_tensor::{linalg, Tensor};
///
/// # fn main() -> Result<(), qce_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = linalg::matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_with(Pool::global(), a, b)
}

/// [`matmul`] on an explicit pool (`Pool::serial()` is the scalar reference).
///
/// # Errors
///
/// Same contract as [`matmul`].
pub fn matmul_with(pool: &Pool, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul", a)?;
    check_rank2("matmul", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    matmul_into(pool, a.as_slice(), b.as_slice(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Multiplies by a pre-transposed right operand: `[m, k] x [n, k]ᵀ -> [m, n]`.
///
/// `b_t` holds Bᵀ row-major, i.e. `b_t[j]` is column `j` of B as a
/// contiguous slice. This is the layout `qce-nn` stores linear weights
/// and conv filter matrices in, so forward passes need no transpose and
/// no packing at all — each output element is one contiguous dot product.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2,
/// or [`TensorError::ShapeMismatch`] if the shared dimension disagrees.
pub fn matmul_b_t(a: &Tensor, b_t: &Tensor) -> Result<Tensor> {
    matmul_b_t_with(Pool::global(), a, b_t)
}

/// [`matmul_b_t`] on an explicit pool.
///
/// # Errors
///
/// Same contract as [`matmul_b_t`].
pub fn matmul_b_t_with(pool: &Pool, a: &Tensor, b_t: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_b_t", a)?;
    check_rank2("matmul_b_t", b_t)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b_t.dims()[0], b_t.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_b_t",
            lhs: a.dims().to_vec(),
            rhs: b_t.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    matmul_b_t_into(pool, a.as_slice(), b_t.as_slice(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Multiplies with a pre-transposed left operand: `[k, m]ᵀ x [k, n] -> [m, n]`.
///
/// Computes Aᵀ·B without materialising Aᵀ — exactly the shape of the
/// weight-gradient product `gradᵀ·x` in linear/conv backward passes,
/// which previously paid a full transpose per step.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2,
/// or [`TensorError::ShapeMismatch`] if the leading dimensions disagree.
pub fn matmul_a_t(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_a_t_with(Pool::global(), a, b)
}

/// [`matmul_a_t`] on an explicit pool.
///
/// # Errors
///
/// Same contract as [`matmul_a_t`].
pub fn matmul_a_t_with(pool: &Pool, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_a_t", a)?;
    check_rank2("matmul_a_t", b)?;
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_t",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    matmul_a_t_into(pool, a.as_slice(), b.as_slice(), &mut out, k, m, n);
    Tensor::from_vec(out, &[m, n])
}

/// Raw-slice matmul into a caller-owned buffer (`out` need not be zeroed).
///
/// Shapes: `av` is `[m, k]`, `bv` is `[k, n]`, `out` is `[m, n]`, all
/// row-major. B is packed once into `NR`-wide column panels, then output
/// rows are processed in fixed `MR`-row blocks distributed over `pool`.
pub(crate) fn matmul_into(
    pool: &Pool,
    av: &[f32],
    bv: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(av.len(), m * k);
    debug_assert_eq!(bv.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let packed = pack_b(bv, k, n);
    let packed = &packed;
    let task_rows = tune::profile().matmul_rows_per_task(m, k);
    par::for_each_chunk(
        pool,
        out,
        task_rows * n,
        || (),
        |(), blk, rows| {
            simd::matmul_block(&av[blk * task_rows * k..], packed, rows, k, n);
        },
    );
}

/// Raw-slice `A·Bᵀ` into a caller-owned buffer (`out` need not be zeroed).
///
/// Shapes: `av` is `[m, k]`, `btv` is `[n, k]`, `out` is `[m, n]`.
pub(crate) fn matmul_b_t_into(
    pool: &Pool,
    av: &[f32],
    btv: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(av.len(), m * k);
    debug_assert_eq!(btv.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let task_rows = tune::profile().matmul_rows_per_task(m, k);
    par::for_each_chunk(
        pool,
        out,
        task_rows * n,
        || (),
        |(), blk, rows| {
            let i0 = blk * task_rows;
            for (r, orow) in rows.chunks_mut(n).enumerate() {
                let arow = &av[(i0 + r) * k..(i0 + r + 1) * k];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = simd::dot(arow, &btv[j * k..(j + 1) * k]);
                }
            }
        },
    );
}

/// Raw-slice `Aᵀ·B` into a caller-owned buffer.
///
/// Shapes: `av` is `[k, m]`, `bv` is `[k, n]`, `out` is `[m, n]`.
/// Accumulation runs over `p = 0..k` in ascending order for every output
/// block, so the result is identical for any pool.
pub(crate) fn matmul_a_t_into(
    pool: &Pool,
    av: &[f32],
    bv: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    debug_assert_eq!(av.len(), k * m);
    debug_assert_eq!(bv.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if out.is_empty() {
        return;
    }
    let task_rows = tune::profile().matmul_rows_per_task(m, k);
    par::for_each_chunk(
        pool,
        out,
        task_rows * n,
        || (),
        |(), blk, rows| {
            let i0 = blk * task_rows;
            let height = rows.len() / n;
            rows.fill(0.0);
            for p in 0..k {
                let acol = &av[p * m + i0..p * m + i0 + height];
                let brow = &bv[p * n..(p + 1) * n];
                for (r, orow) in rows.chunks_mut(n).enumerate() {
                    simd::axpy(acol[r], brow, orow);
                }
            }
        },
    );
}

/// Packs row-major `[k, n]` B into zero-padded `NR`-wide column panels.
///
/// Layout: `packed[(panel * k + p) * NR + lane]` holds `B[p, panel*NR + lane]`
/// (0.0 beyond column `n`), so the microkernel streams one contiguous
/// panel per `NR` output columns.
fn pack_b(bv: &[f32], k: usize, n: usize) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; panels * k * NR];
    for pi in 0..panels {
        let j0 = pi * NR;
        let w = NR.min(n - j0);
        let base = pi * k * NR;
        for p in 0..k {
            let dst = base + p * NR;
            packed[dst..dst + w].copy_from_slice(&bv[p * n + j0..p * n + j0 + w]);
        }
    }
    packed
}

/// Transposes a rank-2 tensor: `[m, n] -> [n, m]`.
///
/// Blocked over `TRANSPOSE_TILE`² (32²) tiles so both the load and store
/// streams stay within a few cache lines — the column-strided scalar
/// store was the worst-case pattern for the large im2col matrices this
/// still serves. A pure permutation, so trivially deterministic.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    check_rank2("transpose", a)?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = vec![0.0f32; m * n];
    transpose_into(a.as_slice(), &mut out, m, n);
    Tensor::from_vec(out, &[n, m])
}

/// Blocked transpose of row-major `[m, n]` `src` into `[n, m]` `dst`.
pub(crate) fn transpose_into(src: &[f32], dst: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(src.len(), m * n);
    debug_assert_eq!(dst.len(), m * n);
    for i0 in (0..m).step_by(TRANSPOSE_TILE) {
        let i1 = (i0 + TRANSPOSE_TILE).min(m);
        for j0 in (0..n).step_by(TRANSPOSE_TILE) {
            let j1 = (j0 + TRANSPOSE_TILE).min(n);
            for i in i0..i1 {
                let row = &src[i * n + j0..i * n + j1];
                for (j, &v) in row.iter().enumerate() {
                    dst[(j0 + j) * m + i] = v;
                }
            }
        }
    }
}

/// Matrix–vector product: `[m, k] x [k] -> [m]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::ShapeMismatch`]
/// on incompatible operands.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    check_rank2("matvec", a)?;
    if x.shape().rank() != 1 {
        return Err(TensorError::RankMismatch {
            op: "matvec",
            expected: 1,
            actual: x.shape().rank(),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    if k != x.len() {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let av = a.as_slice();
    let xv = x.as_slice();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        *o = simd::dot(&av[i * k..(i + 1) * k], xv);
    }
    Tensor::from_vec(out, &[m])
}

/// Dot product of two rank-1 tensors (fixed four-accumulator reduction
/// tree — see [`crate::simd::dot`]).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.len() != b.len() {
        return Err(TensorError::ShapeMismatch {
            op: "dot",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(simd::dot(a.as_slice(), b.as_slice()))
}

fn check_rank2(op: &'static str, t: &Tensor) -> Result<()> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn random_tensor(rng: &mut rand::rngs::StdRng, dims: &[usize]) -> Tensor {
        let len: usize = dims.iter().product();
        Tensor::from_vec(
            (0..len).map(|_| rng.random_range(-1.0..1.0)).collect(),
            dims,
        )
        .unwrap()
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for (m, k, n) in [(12, 5, 9), (4, 8, 8), (1, 1, 1), (5, 3, 17), (33, 16, 31)] {
            let a = random_tensor(&mut rng, &[m, k]);
            let b = random_tensor(&mut rng, &[k, n]);
            let fast = matmul(&a, &b).unwrap();
            let slow = naive_matmul(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn matmul_b_t_matches_matmul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for (m, k, n) in [(7, 13, 5), (4, 8, 8), (1, 9, 2), (21, 6, 19)] {
            let a = random_tensor(&mut rng, &[m, k]);
            let b = random_tensor(&mut rng, &[k, n]);
            let b_t = transpose(&b).unwrap();
            let via_bt = matmul_b_t(&a, &b_t).unwrap();
            let direct = naive_matmul(&a, &b);
            assert_eq!(via_bt.dims(), &[m, n]);
            for (x, y) in via_bt.as_slice().iter().zip(direct.as_slice()) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn matmul_a_t_matches_matmul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for (m, k, n) in [(7, 13, 5), (4, 8, 8), (2, 1, 3), (21, 6, 19)] {
            let a = random_tensor(&mut rng, &[k, m]);
            let b = random_tensor(&mut rng, &[k, n]);
            let a_t = transpose(&a).unwrap();
            let via_at = matmul_a_t(&a, &b).unwrap();
            let direct = naive_matmul(&a_t, &b);
            assert_eq!(via_at.dims(), &[m, n]);
            for (x, y) in via_at.as_slice().iter().zip(direct.as_slice()) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn matmul_handles_zeros_without_skip_path() {
        // Rows of zeros exercised the removed `aip == 0.0` fast path;
        // the dense kernel must produce exact zeros for them regardless.
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[0.0, 0.0, 13.0, 16.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = matmul(&a, &Tensor::eye(2)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            matmul(&a, &v),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            matmul_b_t(&a, &Tensor::zeros(&[2, 4])),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            matmul_a_t(&a, &Tensor::zeros(&[4, 2])),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_pools_agree_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let a = random_tensor(&mut rng, &[37, 19]);
        let b = random_tensor(&mut rng, &[19, 23]);
        let reference = matmul_with(&Pool::serial(), &a, &b).unwrap();
        for threads in [2, 3, 8] {
            let pool = Pool::with_threads(threads);
            let got = matmul_with(&pool, &a, &b).unwrap();
            let same = got
                .as_slice()
                .iter()
                .zip(reference.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "threads={threads}");
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        let tt = transpose(&t).unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn transpose_blocked_matches_scalar() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let (m, n) = (45, 70);
        let a = random_tensor(&mut rng, &[m, n]);
        let t = transpose(&a).unwrap();
        for i in 0..m {
            for j in 0..n {
                assert_eq!(t.at(&[j, i]).to_bits(), a.at(&[i, j]).to_bits());
            }
        }
    }

    #[test]
    fn matvec_and_dot() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let x = Tensor::from_slice(&[1.0, -1.0]);
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.as_slice(), &[-1.0, -1.0]);
        assert_eq!(dot(&x, &x).unwrap(), 2.0);
        assert!(dot(&x, &Tensor::zeros(&[3])).is_err());
    }
}
