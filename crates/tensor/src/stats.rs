//! Scalar statistics over `f32` slices.
//!
//! These helpers are shared by the data-preprocessing stage (per-image
//! pixel standard deviation, §IV-A of the paper), the correlation
//! regularizer (means and centered norms), and the quantizers (histograms
//! of targets and weights).

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance of a slice (0 for an empty slice).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m).powi(2)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns 0 when either slice is constant (zero variance) or empty, which
/// is the convention the correlation-encoding attack needs: a constant
/// weight vector carries no data.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0f64;
    let (mut va, mut vb) = (0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b.iter()) {
        let dx = (x - ma) as f64;
        let dy = (y - mb) as f64;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    (cov / (va.sqrt() * vb.sqrt())) as f32
}

/// A fixed-bin histogram over a closed value range.
///
/// # Examples
///
/// ```
/// use qce_tensor::stats::Histogram;
///
/// let h = Histogram::from_values(&[0.0, 0.4, 0.9, 1.0], 2, 0.0, 1.0);
/// assert_eq!(h.counts(), &[2, 2]);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    lo: f32,
    hi: f32,
}

impl Histogram {
    /// Builds a histogram of `values` with `bins` equal-width bins covering
    /// `[lo, hi]`. Values outside the range are clamped into the edge bins;
    /// the top edge value falls into the last bin.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn from_values(values: &[f32], bins: usize, lo: f32, hi: f32) -> Self {
        assert!(bins > 0, "histogram requires at least one bin");
        assert!(lo < hi, "histogram requires lo < hi, got [{lo}, {hi}]");
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f32;
        for &v in values {
            let idx = (((v - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
            counts[idx] += 1;
        }
        Histogram { counts, lo, hi }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of counted values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The inclusive lower edge of the histogram range.
    pub fn lo(&self) -> f32 {
        self.lo
    }

    /// The inclusive upper edge of the histogram range.
    pub fn hi(&self) -> f32 {
        self.hi
    }

    /// Normalized bin probabilities (all zeros if the histogram is empty).
    pub fn probabilities(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn bin_center(&self, i: usize) -> f32 {
        assert!(i < self.counts.len());
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        self.lo + width * (i as f32 + 0.5)
    }
}

/// Returns `(min, max)` of a slice, or `None` when empty.
pub fn min_max(xs: &[f32]) -> Option<(f32, f32)> {
    if xs.is_empty() {
        return None;
    }
    let mut lo = xs[0];
    let mut hi = xs[0];
    for &x in &xs[1..] {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Some((lo, hi))
}

/// The `q`-th quantile (0 ≤ q ≤ 1) of a slice by linear interpolation on the
/// sorted copy. Returns `None` for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f32], q: f32) -> Option<f32> {
    assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f32::total_cmp);
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(min_max(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_affine_invariance() {
        let a = [0.3, -1.2, 2.4, 0.0, 1.0];
        let b: Vec<f32> = a.iter().map(|&x| 3.0 * x - 7.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn histogram_counts_and_probabilities() {
        let h = Histogram::from_values(&[0.0, 0.1, 0.6, 0.9, 1.0, 2.0, -5.0], 2, 0.0, 1.0);
        // -5 clamps into bin 0, 2.0 and 1.0 into bin 1.
        assert_eq!(h.counts(), &[3, 4]);
        assert_eq!(h.total(), 7);
        let p = h.probabilities();
        assert!((p[0] - 3.0 / 7.0).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bin_center() {
        let h = Histogram::from_values(&[], 4, 0.0, 8.0);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(3), 7.0);
        assert_eq!(h.probabilities(), vec![0.0; 4]);
    }

    #[test]
    fn min_max_and_quantile() {
        let xs = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_eq!(min_max(&xs), Some((1.0, 5.0)));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert_eq!(quantile(&xs, 0.25), Some(2.0));
    }
}
