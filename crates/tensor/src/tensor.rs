use crate::{Result, Shape, TensorError};

/// A contiguous, row-major, n-dimensional array of `f32`.
///
/// `Tensor` is the single numeric container of the workspace: activations,
/// weights, gradients and decoded images all flow through it. It favors a
/// small, predictable API over generality — `f32` only, always contiguous,
/// no views.
///
/// # Examples
///
/// ```
/// use qce_tensor::Tensor;
///
/// # fn main() -> Result<(), qce_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.sum(), 21.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the volume of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or coordinates are out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or coordinates are out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: Shape::new(&[self.data.len()]),
            data: self.data.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Elementwise ops
    // ------------------------------------------------------------------

    /// Elementwise sum of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise difference of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// In-place `self += alpha * other` (the BLAS `axpy` primitive).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a new tensor with every element multiplied by `alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// In-place scalar multiplication.
    pub fn scale_mut(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_mut<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        op: &'static str,
        f: F,
    ) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element, or `None` if the tensor is empty.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Minimum element, or `None` if the tensor is empty.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Index of the maximum element, or `None` if the tensor is empty.
    ///
    /// Ties resolve to the earliest index, matching classifier-argmax
    /// conventions.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Squared L2 norm of all elements.
    pub fn squared_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor.
    fn default() -> Self {
        Tensor {
            shape: Shape::new(&[0]),
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[2, 2]).as_slice().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).as_slice().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[4], 2.5).as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 4], &[2, 2]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 3], &[2, 2]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.0);
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.as_slice()[5], 7.0);
    }

    #[test]
    fn add_sub_mul() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(matches!(
            a.add(&b),
            Err(TensorError::ShapeMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max(), Some(3.0));
        assert_eq!(t.min(), Some(-2.0));
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.squared_norm(), 14.0);
    }

    #[test]
    fn argmax_ties_resolve_first() {
        let t = Tensor::from_slice(&[5.0, 5.0, 1.0]);
        assert_eq!(t.argmax(), Some(0));
    }

    #[test]
    fn empty_tensor_reductions() {
        let t = Tensor::zeros(&[0]);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), None);
        assert_eq!(t.argmax(), None);
        assert!(t.is_empty());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.at(&[1, 0]), 3.0);
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn map_and_scale() {
        let t = Tensor::from_slice(&[1.0, -2.0]);
        assert_eq!(t.map(f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(t.scale(2.0).as_slice(), &[2.0, -4.0]);
        let mut m = t.clone();
        m.scale_mut(-1.0);
        assert_eq!(m.as_slice(), &[-1.0, 2.0]);
        m.fill(0.0);
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }
}
