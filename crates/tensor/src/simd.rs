//! Runtime-dispatched SIMD micro-kernels with a bit-exact scalar fallback.
//!
//! Every hot inner loop of the compute backend (the 4×8 packed-panel
//! matmul microkernel, the fused-transpose dot kernels, the im2col
//! convolution segment ops and the bulk codebook ranking used by
//! `qce-quant`) funnels through this module. Each kernel exists in two
//! forms: a **scalar reference** (the exact code the workspace shipped
//! before SIMD existed) and an **AVX2** variant selected once at startup
//! via [`std::is_x86_feature_detected!`] and the `QCE_SIMD` environment
//! variable (`off` | `auto` | `avx2`).
//!
//! # Determinism contract
//!
//! The repo-wide guarantee — bit-for-bit identical results at any
//! `QCE_THREADS` — extends across SIMD widths: **every vector kernel
//! performs the same IEEE-754 operations on the same values in the same
//! per-element order as its scalar reference.** Concretely:
//!
//! * No FMA. The scalar kernels round after the multiply and again after
//!   the add, so the vector kernels pair `_mm256_mul_ps` with
//!   `_mm256_add_ps` instead of fusing — a fused `vfmadd` would round
//!   once and change low bits.
//! * Fixed lane-reduction trees. [`dot`] keeps the historical contract
//!   of four stride-4 partial accumulators combined as
//!   `(acc0 + acc1) + (acc2 + acc3)` plus a sequential tail; the AVX2
//!   path accumulates into one 4-lane register (lane *j* holds partial
//!   *j*) and extracts lanes for the exact same scalar combine.
//! * Lane-parallel kernels ([`matmul_block`], [`axpy`], [`add_assign`],
//!   [`add_scalar`], [`rank_count`]) never reduce across lanes at all:
//!   each output element is produced by one lane running the scalar
//!   recurrence, so vectorization is invisible in the bits.
//!
//! The conformance goldens therefore pass unchanged with `QCE_SIMD=off`
//! and `QCE_SIMD=auto`, at any thread count, and the property tests in
//! `tests/simd_props.rs` hold the two paths bitwise equal over
//! non-lane-aligned tails.
//!
//! # Safety boundary
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! crate is `#![deny(unsafe_code)]`; intrinsics require it). Every
//! `unsafe` block is a `#[target_feature(enable = "avx2")]` call guarded
//! by the one-time CPUID check in [`detect`] — the dispatcher never
//! calls an AVX2 function on a CPU that did not report the feature.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Microkernel row tile: each matmul work unit covers multiples of `MR`
/// output rows (four broadcast registers in the AVX2 microkernel).
pub const MR: usize = 4;
/// Microkernel column tile: B panels are `NR` floats wide — exactly one
/// 256-bit lane, so the register tile is 4×8 = one YMM accumulator per
/// row.
pub const NR: usize = 8;

/// An instruction-set level the dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Portable scalar reference path (always available).
    Scalar,
    /// 256-bit AVX2 path (x86-64 with the `avx2` CPUID flag).
    Avx2,
}

impl Level {
    /// Stable lowercase name, as accepted by `QCE_SIMD` and reported in
    /// `BENCH_kernels.json`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Avx2 => "avx2",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Level::Scalar => 0,
            Level::Avx2 => 1,
        }
    }

    fn from_u8(v: u8) -> Level {
        if v == 1 {
            Level::Avx2
        } else {
            Level::Scalar
        }
    }
}

/// Best level the running CPU supports, probed once via CPUID.
#[must_use]
pub fn detect() -> Level {
    static DETECTED: OnceLock<Level> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx2") {
                return Level::Avx2;
            }
        }
        Level::Scalar
    })
}

/// Resolves a `QCE_SIMD` setting against the detected hardware.
///
/// `off` forces [`Level::Scalar`]; `auto` (and the empty string) picks
/// the best detected level; an explicit level name (`avx2`, `scalar`)
/// requests it, clamped to what the CPU supports. Unrecognised values
/// fall back to `auto` rather than erroring — an env typo must never
/// change results, only speed, and every level is bit-identical anyway.
fn resolve(setting: &str, detected: Level) -> Level {
    match setting.trim().to_ascii_lowercase().as_str() {
        "off" | "scalar" | "0" | "false" => Level::Scalar,
        "avx2" => {
            if detected == Level::Avx2 {
                Level::Avx2
            } else {
                Level::Scalar
            }
        }
        _ => detected,
    }
}

/// Process-wide active level; `u8::MAX` = not yet initialised.
static ACTIVE: AtomicU8 = AtomicU8::new(u8::MAX);

/// The level kernels currently dispatch to.
///
/// Initialised on first use from `QCE_SIMD` and [`detect`], then stable
/// for the life of the process unless a bench/test calls [`set_active`].
#[must_use]
pub fn active() -> Level {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != u8::MAX {
        return Level::from_u8(v);
    }
    let level = resolve(&std::env::var("QCE_SIMD").unwrap_or_default(), detect());
    // Racing initialisers resolve the same value, so the store order is
    // irrelevant.
    ACTIVE.store(level.to_u8(), Ordering::Relaxed);
    level
}

/// Forces the dispatch level, returning the previous one.
///
/// Intended for the bench harness and the scalar-vs-SIMD property tests,
/// which need both paths in one process. Requests above the detected
/// capability clamp to [`detect`] — the dispatcher can never be talked
/// into executing unsupported instructions. Because every level is
/// bit-identical, flipping this concurrently with running kernels
/// changes which code path they take, never what they compute.
pub fn set_active(level: Level) -> Level {
    let clamped = if level == Level::Avx2 && detect() != Level::Avx2 {
        Level::Scalar
    } else {
        level
    };
    let prev = ACTIVE.swap(clamped.to_u8(), Ordering::Relaxed);
    if prev == u8::MAX {
        active_or_env_default()
    } else {
        Level::from_u8(prev)
    }
}

/// Previous value for [`set_active`] when dispatch was never initialised:
/// what `active()` would have returned.
fn active_or_env_default() -> Level {
    resolve(&std::env::var("QCE_SIMD").unwrap_or_default(), detect())
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are byte-for-byte the pre-SIMD
// implementations; the vector paths below replicate their operation
// order exactly.
// ---------------------------------------------------------------------------

/// Scalar [`dot`]: four stride-4 partial accumulators, combined as
/// `(a0 + a1) + (a2 + a3)` plus an in-order tail.
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let mut ita = a.chunks_exact(4);
    let mut itb = b.chunks_exact(4);
    for (ca, cb) in (&mut ita).zip(&mut itb) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ita.remainder().iter().zip(itb.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Scalar [`matmul_block`]: the register-tiled 4×8 microkernel.
fn matmul_block_scalar(a: &[f32], packed: &[f32], out: &mut [f32], k: usize, n: usize) {
    let rows = out.len() / n;
    for (pi, panel) in packed.chunks_exact(k * NR).enumerate() {
        let j0 = pi * NR;
        let w = NR.min(n - j0);
        let mut r = 0;
        while r + MR <= rows {
            let a0 = &a[r * k..(r + 1) * k];
            let a1 = &a[(r + 1) * k..(r + 2) * k];
            let a2 = &a[(r + 2) * k..(r + 3) * k];
            let a3 = &a[(r + 3) * k..(r + 4) * k];
            let mut acc = [[0.0f32; NR]; MR];
            for (p, bp) in panel.chunks_exact(NR).enumerate() {
                let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
                for l in 0..NR {
                    let b = bp[l];
                    acc[0][l] += x0 * b;
                    acc[1][l] += x1 * b;
                    acc[2][l] += x2 * b;
                    acc[3][l] += x3 * b;
                }
            }
            for (rr, acc_row) in acc.iter().enumerate() {
                let o0 = (r + rr) * n + j0;
                out[o0..o0 + w].copy_from_slice(&acc_row[..w]);
            }
            r += MR;
        }
        while r < rows {
            let arow = &a[r * k..(r + 1) * k];
            let mut acc = [0.0f32; NR];
            for (p, bp) in panel.chunks_exact(NR).enumerate() {
                let x = arow[p];
                for l in 0..NR {
                    acc[l] += x * bp[l];
                }
            }
            let o0 = r * n + j0;
            out[o0..o0 + w].copy_from_slice(&acc[..w]);
            r += 1;
        }
    }
}

/// Scalar [`axpy`].
fn axpy_scalar(x: f32, src: &[f32], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += x * s;
    }
}

/// Scalar [`add_assign`].
fn add_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Scalar [`add_scalar`].
fn add_scalar_scalar(dst: &mut [f32], c: f32) {
    for d in dst.iter_mut() {
        *d += c;
    }
}

/// Scalar [`rank_count`]: per element, the number of thresholds `<=` it.
fn rank_count_scalar(thresholds: &[f32], src: &[f32], dst: &mut [u32]) {
    for (&w, d) in src.iter().zip(dst.iter_mut()) {
        let mut idx = 0u32;
        for &t in thresholds {
            idx += u32::from(t <= w);
        }
        *d = idx;
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels. Each function is `#[target_feature(enable = "avx2")]`
// and only reachable through the dispatcher after `detect()` reported
// AVX2, which makes the intrinsics safe to execute.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use std::arch::x86_64::{
        __m128, __m256, _mm256_add_epi32, _mm256_add_ps, _mm256_broadcast_ss,
        _mm256_castps256_ps128, _mm256_castps_si256, _mm256_cmp_ps, _mm256_extractf128_ps,
        _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_setzero_si256,
        _mm256_srli_epi32, _mm256_storeu_ps, _mm256_storeu_si256, _mm_add_ps, _mm_cvtss_f32,
        _mm_loadu_ps, _mm_mul_ps, _mm_setzero_ps, _mm_shuffle_ps, _CMP_LE_OQ,
    };

    /// Lane `l` of a 4-lane register, extracted without reordering the
    /// scalar combine that follows.
    ///
    /// Safety: caller must have verified AVX2 support (all callers are
    /// themselves `avx2` target-feature functions).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn lane(v: __m128, l: usize) -> f32 {
        match l {
            0 => _mm_cvtss_f32(v),
            1 => _mm_cvtss_f32(_mm_shuffle_ps(v, v, 0b01)),
            2 => _mm_cvtss_f32(_mm_shuffle_ps(v, v, 0b10)),
            _ => _mm_cvtss_f32(_mm_shuffle_ps(v, v, 0b11)),
        }
    }

    /// AVX2 [`super::dot`]: one 4-lane accumulator (lane *j* = scalar
    /// partial *j*), fed low-half-then-high-half so consecutive 4-chunks
    /// land in the same order as the scalar loop, then the exact scalar
    /// combine `(a0 + a1) + (a2 + a3) + tail`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= n {
            let prod = _mm256_mul_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
            );
            acc = _mm_add_ps(acc, _mm256_castps256_ps128(prod));
            acc = _mm_add_ps(acc, _mm256_extractf128_ps(prod, 1));
            i += 8;
        }
        if i + 4 <= n {
            acc = _mm_add_ps(
                acc,
                _mm_mul_ps(
                    _mm_loadu_ps(a.as_ptr().add(i)),
                    _mm_loadu_ps(b.as_ptr().add(i)),
                ),
            );
            i += 4;
        }
        let mut tail = 0.0f32;
        for j in i..n {
            tail += a[j] * b[j];
        }
        (lane(acc, 0) + lane(acc, 1)) + (lane(acc, 2) + lane(acc, 3)) + tail
    }

    /// AVX2 [`super::matmul_block`]: one YMM accumulator per microkernel
    /// row, `mul` + `add` (never FMA), ascending-`p` accumulation — the
    /// scalar kernel with each 8-wide `l` loop collapsed into one lane
    /// operation.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_block(a: &[f32], packed: &[f32], out: &mut [f32], k: usize, n: usize) {
        let rows = out.len() / n;
        for (pi, panel) in packed.chunks_exact(k * NR).enumerate() {
            let j0 = pi * NR;
            let w = NR.min(n - j0);
            let pp = panel.as_ptr();
            let mut r = 0;
            while r + MR <= rows {
                let a0 = a.as_ptr().add(r * k);
                let a1 = a.as_ptr().add((r + 1) * k);
                let a2 = a.as_ptr().add((r + 2) * k);
                let a3 = a.as_ptr().add((r + 3) * k);
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                for p in 0..k {
                    let bp = _mm256_loadu_ps(pp.add(p * NR));
                    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_broadcast_ss(&*a0.add(p)), bp));
                    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_broadcast_ss(&*a1.add(p)), bp));
                    acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_broadcast_ss(&*a2.add(p)), bp));
                    acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_broadcast_ss(&*a3.add(p)), bp));
                }
                store_row(acc0, &mut out[r * n + j0..], w);
                store_row(acc1, &mut out[(r + 1) * n + j0..], w);
                store_row(acc2, &mut out[(r + 2) * n + j0..], w);
                store_row(acc3, &mut out[(r + 3) * n + j0..], w);
                r += MR;
            }
            while r < rows {
                let ar = a.as_ptr().add(r * k);
                let mut acc = _mm256_setzero_ps();
                for p in 0..k {
                    let bp = _mm256_loadu_ps(pp.add(p * NR));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_broadcast_ss(&*ar.add(p)), bp));
                }
                store_row(acc, &mut out[r * n + j0..], w);
                r += 1;
            }
        }
    }

    /// Stores the first `w` lanes of `acc` to `out` (full 8-lane store
    /// when the panel is not column-clipped).
    ///
    /// Safety: caller must have verified AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_row(acc: __m256, out: &mut [f32], w: usize) {
        if w == NR {
            _mm256_storeu_ps(out.as_mut_ptr(), acc);
        } else {
            let mut tmp = [0.0f32; NR];
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc);
            out[..w].copy_from_slice(&tmp[..w]);
        }
    }

    /// AVX2 [`super::axpy`]: `dst[i] += x * src[i]`, 8 independent lanes
    /// per step, scalar tail — per-element arithmetic identical.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(x: f32, src: &[f32], dst: &mut [f32]) {
        let n = dst.len().min(src.len());
        let xv = _mm256_set1_ps(x);
        let mut i = 0usize;
        while i + 8 <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(
                dst.as_mut_ptr().add(i),
                _mm256_add_ps(d, _mm256_mul_ps(xv, s)),
            );
            i += 8;
        }
        for j in i..n {
            dst[j] += x * src[j];
        }
    }

    /// AVX2 [`super::add_assign`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len().min(src.len());
        let mut i = 0usize;
        while i + 8 <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, s));
            i += 8;
        }
        for j in i..n {
            dst[j] += src[j];
        }
    }

    /// AVX2 [`super::add_scalar`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_scalar(dst: &mut [f32], c: f32) {
        let cv = _mm256_set1_ps(c);
        let n = dst.len();
        let mut i = 0usize;
        while i + 8 <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, cv));
            i += 8;
        }
        for d in dst[i..n].iter_mut() {
            *d += c;
        }
    }

    /// AVX2 [`super::rank_count`]: 8 elements per step; each threshold is
    /// broadcast and compared `<=` (ordered, quiet — NaN elements rank 0
    /// exactly like the scalar `t <= w`), and the all-ones masks are
    /// accumulated as integer counts. Integer arithmetic, so lane order
    /// is trivially irrelevant.
    #[target_feature(enable = "avx2")]
    pub unsafe fn rank_count(thresholds: &[f32], src: &[f32], dst: &mut [u32]) {
        let n = src.len().min(dst.len());
        let mut i = 0usize;
        while i + 8 <= n {
            let w = _mm256_loadu_ps(src.as_ptr().add(i));
            let mut counts = _mm256_setzero_si256();
            for &t in thresholds {
                let mask = _mm256_cmp_ps::<_CMP_LE_OQ>(_mm256_set1_ps(t), w);
                // True lanes are all-ones; shift to 1 and add.
                let bit = _mm256_srli_epi32::<31>(_mm256_castps_si256(mask));
                counts = _mm256_add_epi32(counts, bit);
            }
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), counts);
            i += 8;
        }
        for j in i..n {
            let mut idx = 0u32;
            for &t in thresholds {
                idx += u32::from(t <= src[j]);
            }
            dst[j] = idx;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatchers.
// ---------------------------------------------------------------------------

/// Dot product of two equal-length slices with the fixed four-accumulator
/// reduction tree (see the module docs); bit-identical at every level.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if active() == Level::Avx2 {
        // SAFETY: Level::Avx2 is only ever active when `detect()` saw the
        // `avx2` CPUID flag (set_active clamps), so the target-feature
        // function is safe to call.
        return unsafe { x86::dot(a, b) };
    }
    dot_scalar(a, b)
}

/// Register-tiled microkernel over one block of packed-panel matmul
/// output rows.
///
/// `a` points at the block's first A row (row-major, stride `k`);
/// `packed` holds zero-padded `NR`-wide B column panels
/// (`packed[(panel * k + p) * NR + lane] = B[p, panel*NR + lane]`); `out`
/// is the block's `out.len() / n` output rows. Accumulators are stored
/// (not added), so `out` need not be zeroed. Accumulation is ascending
/// `p` per output element at every level.
pub fn matmul_block(a: &[f32], packed: &[f32], out: &mut [f32], k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if active() == Level::Avx2 {
        // SAFETY: AVX2 presence established by detect(); slice bounds are
        // the same ones the scalar kernel indexes.
        unsafe { x86::matmul_block(a, packed, out, k, n) };
        return;
    }
    matmul_block_scalar(a, packed, out, k, n);
}

/// `dst[i] += x * src[i]` over `min(len)` elements (separate multiply and
/// add roundings, per element — never fused).
pub fn axpy(x: f32, src: &[f32], dst: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if active() == Level::Avx2 {
        // SAFETY: see `dot`.
        unsafe { x86::axpy(x, src, dst) };
        return;
    }
    axpy_scalar(x, src, dst);
}

/// `dst[i] += src[i]` over `min(len)` elements.
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if active() == Level::Avx2 {
        // SAFETY: see `dot`.
        unsafe { x86::add_assign(dst, src) };
        return;
    }
    add_assign_scalar(dst, src);
}

/// `dst[i] += c` over every element.
pub fn add_scalar(dst: &mut [f32], c: f32) {
    #[cfg(target_arch = "x86_64")]
    if active() == Level::Avx2 {
        // SAFETY: see `dot`.
        unsafe { x86::add_scalar(dst, c) };
        return;
    }
    add_scalar_scalar(dst, c);
}

/// For each `src[i]`, counts thresholds `t` with `t <= src[i]` into
/// `dst[i]` (over `min(len)` elements).
///
/// This is the branchless bulk codebook-assignment primitive: with
/// `thresholds = &boundaries[1..]` of a sorted codebook, the count *is*
/// the cluster index (clamping below the first boundary to 0). NaN
/// elements count 0 thresholds at every level. Pure integer
/// accumulation, so SIMD width cannot affect the result.
pub fn rank_count(thresholds: &[f32], src: &[f32], dst: &mut [u32]) {
    #[cfg(target_arch = "x86_64")]
    if active() == Level::Avx2 {
        // SAFETY: see `dot`.
        unsafe { x86::rank_count(thresholds, src, dst) };
        return;
    }
    rank_count_scalar(thresholds, src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that flip the process-wide dispatch level.
    static LEVEL_LOCK: Mutex<()> = Mutex::new(());

    /// Runs `f` twice — once per level — and hands it the level each time.
    fn with_each_level(mut f: impl FnMut(Level)) {
        let _guard = LEVEL_LOCK.lock().unwrap();
        let prev = set_active(Level::Scalar);
        f(Level::Scalar);
        if detect() == Level::Avx2 {
            set_active(Level::Avx2);
            f(Level::Avx2);
        }
        set_active(prev);
    }

    fn seeded(n: usize, seed: u64) -> Vec<f32> {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(-2.0..2.0)).collect()
    }

    #[test]
    fn resolve_env_values() {
        assert_eq!(resolve("off", Level::Avx2), Level::Scalar);
        assert_eq!(resolve("OFF", Level::Avx2), Level::Scalar);
        assert_eq!(resolve("scalar", Level::Avx2), Level::Scalar);
        assert_eq!(resolve("auto", Level::Avx2), Level::Avx2);
        assert_eq!(resolve("", Level::Avx2), Level::Avx2);
        assert_eq!(resolve("avx2", Level::Avx2), Level::Avx2);
        // Requesting AVX2 on a scalar-only host clamps down.
        assert_eq!(resolve("avx2", Level::Scalar), Level::Scalar);
        // Typos degrade to auto, never to UB or an error.
        assert_eq!(resolve("wat", Level::Avx2), Level::Avx2);
    }

    #[test]
    fn set_active_clamps_to_detected() {
        let _guard = LEVEL_LOCK.lock().unwrap();
        let prev = set_active(Level::Avx2);
        assert_eq!(active(), detect());
        set_active(prev);
    }

    #[test]
    fn dot_levels_agree_bitwise_on_all_tails() {
        // 1..=2*NR covers every remainder class of both the 8-wide body
        // and the 4-wide half-step.
        for len in 1..=2 * NR + 1 {
            let a = seeded(len, len as u64);
            let b = seeded(len, len as u64 ^ 0xabcd);
            let mut got = Vec::new();
            with_each_level(|_| got.push(dot(&a, &b).to_bits()));
            assert!(got.windows(2).all(|w| w[0] == w[1]), "len={len}: {got:?}");
        }
    }

    #[test]
    fn matmul_block_levels_agree_bitwise() {
        for (rows, k, n) in [
            (1usize, 3usize, 5usize),
            (4, 7, 8),
            (5, 16, 13),
            (9, 5, 17),
            (4, 1, 1),
        ] {
            let a = seeded(rows * k, (rows * k) as u64);
            let panels = n.div_ceil(NR);
            let mut packed = vec![0.0f32; panels * k * NR];
            let bv = seeded(k * n, (k * n) as u64 ^ 0x55);
            for pi in 0..panels {
                let j0 = pi * NR;
                let w = NR.min(n - j0);
                for p in 0..k {
                    let dst = (pi * k + p) * NR;
                    packed[dst..dst + w].copy_from_slice(&bv[p * n + j0..p * n + j0 + w]);
                }
            }
            let mut outs: Vec<Vec<u32>> = Vec::new();
            with_each_level(|_| {
                let mut out = vec![f32::NAN; rows * n];
                matmul_block(&a, &packed, &mut out, k, n);
                outs.push(out.iter().map(|v| v.to_bits()).collect());
            });
            assert!(
                outs.windows(2).all(|w| w[0] == w[1]),
                "rows={rows} k={k} n={n}"
            );
        }
    }

    #[test]
    fn elementwise_kernels_agree_bitwise() {
        for len in [1, 7, 8, 9, 15, 16, 17, 100] {
            let src = seeded(len, len as u64 ^ 0x11);
            let base = seeded(len, len as u64 ^ 0x22);
            let mut axpys: Vec<Vec<u32>> = Vec::new();
            let mut adds: Vec<Vec<u32>> = Vec::new();
            let mut scalars: Vec<Vec<u32>> = Vec::new();
            with_each_level(|_| {
                let mut d = base.clone();
                axpy(0.37, &src, &mut d);
                axpys.push(d.iter().map(|v| v.to_bits()).collect());
                let mut d = base.clone();
                add_assign(&mut d, &src);
                adds.push(d.iter().map(|v| v.to_bits()).collect());
                let mut d = base.clone();
                add_scalar(&mut d, -1.25);
                scalars.push(d.iter().map(|v| v.to_bits()).collect());
            });
            for series in [&axpys, &adds, &scalars] {
                assert!(series.windows(2).all(|w| w[0] == w[1]), "len={len}");
            }
        }
    }

    #[test]
    fn rank_count_matches_scalar_including_nan() {
        let thresholds: Vec<f32> = (0..15).map(|i| i as f32 * 0.4 - 3.0).collect();
        for len in [1, 5, 8, 13, 16, 33] {
            let mut src = seeded(len, len as u64 ^ 0x77);
            src[0] = f32::NAN;
            if len > 4 {
                src[4] = -3.0; // exactly the first threshold
            }
            let mut expect = vec![0u32; len];
            rank_count_scalar(&thresholds, &src, &mut expect);
            with_each_level(|_| {
                let mut got = vec![u32::MAX; len];
                rank_count(&thresholds, &src, &mut got);
                assert_eq!(got, expect, "len={len}");
            });
        }
    }
}
