//! End-to-end daemon tests over the real socket: submit/stream/cancel
//! lifecycle, in-flight dedup, warm cache replay, quotas, and typed
//! errors.
//!
//! Telemetry counters are process-global, so every test takes the
//! shared lock and asserts on counter *deltas*.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qce::{BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod};
use qce_harness::{DatasetKind, DatasetSpec, Scenario};
use qce_serve::http::http_request;
use qce_serve::{Server, ServerConfig};
use qce_store::StageCache;
use qce_telemetry::json::{parse, JsonValue};

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qce-serve-test-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(tag: &str, workers: usize, quota: usize) -> (Server, String, PathBuf) {
    let cache_dir = temp_dir(tag);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        tenant_quota: quota,
        cache: Some(StageCache::at(&cache_dir)),
    })
    .expect("server start");
    let addr = server.addr().to_string();
    (server, addr, cache_dir)
}

/// A seconds-scale clean scenario; distinct `seed`s are distinct work.
fn scenario(name: &str, seed: u64) -> Scenario {
    Scenario {
        name: name.to_string(),
        dataset: DatasetSpec {
            kind: DatasetKind::Cifar,
            size: 8,
            classes: 4,
            count: 96,
            seed: 5,
            rgb: false,
        },
        flow: FlowConfig {
            seed,
            epochs: 1,
            grouping: Grouping::Uniform(5.0),
            band: BandRule::FirstN,
            quant: Some(QuantConfig::new(QuantMethod::TargetCorrelated, 4)),
            verbose: false,
            ..FlowConfig::tiny()
        },
        fault: None,
        defenses: Vec::new(),
        tolerance_overrides: Vec::new(),
    }
}

fn submit(addr: &str, scenario: &Scenario, tenant: &str) -> (u16, String) {
    http_request(
        addr,
        "POST",
        "/v1/jobs",
        &[("X-Qce-Tenant", tenant)],
        Some(&scenario.to_json()),
    )
    .expect("submit request")
}

fn field<'a>(doc: &'a JsonValue, name: &str) -> &'a JsonValue {
    doc.get(name)
        .unwrap_or_else(|| panic!("response missing {name:?}"))
}

fn submit_ok(addr: &str, scenario: &Scenario, tenant: &str) -> (String, bool) {
    let (status, body) = submit(addr, scenario, tenant);
    assert_eq!(status, 200, "submit failed: {body}");
    let doc = parse(&body).expect("submit JSON");
    let id = field(&doc, "id").as_str().expect("id string").to_string();
    let deduped = matches!(field(&doc, "deduped"), JsonValue::Bool(true));
    (id, deduped)
}

fn job_status(addr: &str, id: &str) -> JsonValue {
    let (status, body) =
        http_request(addr, "GET", &format!("/v1/jobs/{id}"), &[], None).expect("status request");
    assert_eq!(status, 200, "status failed: {body}");
    parse(&body).expect("status JSON")
}

fn wait_terminal(addr: &str, id: &str) -> JsonValue {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let doc = job_status(addr, id);
        let state = field(&doc, "state").as_str().expect("state").to_string();
        if matches!(state.as_str(), "done" | "failed" | "cancelled") {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn counter(name: &str) -> u64 {
    qce_telemetry::counter(name).get()
}

#[test]
fn submit_stream_and_status_happy_path() {
    let _guard = serial();
    let (server, addr, cache_dir) = start_server("happy", 2, 0);

    let (id, deduped) = submit_ok(&addr, &scenario("happy", 4101), "alice");
    assert!(!deduped);

    // The stream replays every stage event and ends with a state line.
    let (status, body) =
        http_request(&addr, "GET", &format!("/v1/jobs/{id}/stream"), &[], None).expect("stream");
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(lines.len() >= 2, "stream too short: {body}");
    let steps: Vec<String> = lines[..lines.len() - 1]
        .iter()
        .map(|l| {
            let doc = parse(l).expect("event JSON");
            field(&doc, "step").as_str().expect("step").to_string()
        })
        .collect();
    assert!(steps.contains(&"select".to_string()), "steps: {steps:?}");
    assert!(steps.contains(&"train".to_string()), "steps: {steps:?}");
    assert!(steps.contains(&"quantize".to_string()), "steps: {steps:?}");
    let last = parse(lines.last().expect("state line")).expect("state JSON");
    assert_eq!(field(&last, "type").as_str(), Some("state"));
    assert_eq!(field(&last, "state").as_str(), Some("done"));
    let result = field(&last, "result");
    assert!(field(result, "accuracy").as_f64().is_some());
    assert!(field(result, "digests").get("release.weights").is_some());

    // Status agrees and the result document matches the stream's.
    let doc = wait_terminal(&addr, &id);
    assert_eq!(field(&doc, "state").as_str(), Some("done"));
    assert!(field(&doc, "error").as_str().is_none());

    // Stats endpoint exposes serve + store counters.
    let (status, body) = http_request(&addr, "GET", "/v1/stats", &[], None).expect("stats");
    assert_eq!(status, 200);
    let stats = parse(&body).expect("stats JSON");
    assert!(field(&stats, "counters").get("serve.submit").is_some());

    server.shutdown();
    let _ = std::fs::remove_dir_all(cache_dir);
}

#[test]
fn concurrent_identical_submits_share_one_computation() {
    let _guard = serial();
    // One worker: a blocker occupies it so both target submits are
    // still in flight when they arrive.
    let (server, addr, cache_dir) = start_server("dedup", 1, 0);

    let (blocker, _) = submit_ok(&addr, &scenario("blocker", 4201), "ops");
    let dedup_before = counter("serve.dedup");
    let target = scenario("shared", 4202);
    let (id_a, dedup_a) = submit_ok(&addr, &target, "alice");
    let (id_b, dedup_b) = submit_ok(&addr, &target, "bob");

    assert_eq!(id_a, id_b, "identical scenarios must share one job");
    assert!(!dedup_a);
    assert!(dedup_b, "second submit must dedup onto the first");
    assert_eq!(counter("serve.dedup") - dedup_before, 1);

    // Both tenants are attached to the shared job.
    let doc = job_status(&addr, &id_a);
    let tenants = format!("{:?}", field(&doc, "tenants"));
    assert!(
        tenants.contains("alice") && tenants.contains("bob"),
        "{tenants}"
    );

    let done = wait_terminal(&addr, &id_a);
    assert_eq!(field(&done, "state").as_str(), Some("done"));
    wait_terminal(&addr, &blocker);

    server.shutdown();
    let _ = std::fs::remove_dir_all(cache_dir);
}

#[test]
fn warm_resubmit_replays_from_cache_with_zero_recompute() {
    let _guard = serial();
    let (server, addr, cache_dir) = start_server("warm", 2, 0);

    let target = scenario("warm", 4301);
    let (cold_id, _) = submit_ok(&addr, &target, "alice");
    let cold = wait_terminal(&addr, &cold_id);
    assert_eq!(field(&cold, "state").as_str(), Some("done"));
    let cold_digests = format!("{:?}", field(field(&cold, "result"), "digests"));

    // Resubmit after completion: a *new* job that must replay entirely
    // from stage-cache checkpoints — hits for every stage, no writes.
    let hits_before = counter("store.hit");
    let writes_before = counter("store.write");
    let (warm_id, deduped) = submit_ok(&addr, &target, "bob");
    assert_ne!(warm_id, cold_id);
    assert!(
        !deduped,
        "completed jobs dedup through the cache, not in-flight"
    );
    let warm = wait_terminal(&addr, &warm_id);
    assert_eq!(field(&warm, "state").as_str(), Some("done"));

    let hit_delta = counter("store.hit") - hits_before;
    let write_delta = counter("store.write") - writes_before;
    assert!(hit_delta >= 4, "expected >=4 stage hits, got {hit_delta}");
    assert_eq!(write_delta, 0, "warm resubmit must not recompute any stage");

    let warm_digests = format!("{:?}", field(field(&warm, "result"), "digests"));
    assert_eq!(
        cold_digests, warm_digests,
        "replayed result must be identical"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(cache_dir);
}

#[test]
fn cancel_mid_flow_leaves_a_resumable_checkpoint() {
    let _guard = serial();
    let (server, addr, cache_dir) = start_server("cancel", 1, 0);

    // Heavier scenario: two epochs widen the select→train window so the
    // cancel lands mid-flow.
    let mut target = scenario("cancelme", 4401);
    target.flow.epochs = 2;
    target.dataset.count = 160;
    let (id, _) = submit_ok(&addr, &target, "alice");

    // Wait until at least one stage completed, then cancel.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let doc = job_status(&addr, &id);
        let events = format!("{:?}", field(&doc, "events"));
        if events.contains("select") {
            break;
        }
        assert!(Instant::now() < deadline, "job never made progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, body) =
        http_request(&addr, "POST", &format!("/v1/jobs/{id}/cancel"), &[], None).expect("cancel");
    assert_eq!(status, 200, "cancel failed: {body}");

    let doc = wait_terminal(&addr, &id);
    assert_eq!(
        field(&doc, "state").as_str(),
        Some("cancelled"),
        "cancel arrived after completion; widen the scenario if this repeats"
    );

    // The completed steps stayed in the cache: a resubmit resumes from
    // the checkpoint (cache hits) and completes.
    let hits_before = counter("store.hit");
    let (resumed, _) = submit_ok(&addr, &target, "alice");
    let done = wait_terminal(&addr, &resumed);
    assert_eq!(field(&done, "state").as_str(), Some("done"));
    assert!(
        counter("store.hit") > hits_before,
        "resumed run must hit the cancelled run's checkpoints"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(cache_dir);
}

#[test]
fn quota_exhaustion_returns_typed_error_and_recovers() {
    let _guard = serial();
    let (server, addr, cache_dir) = start_server("quota", 1, 1);

    let (first, _) = submit_ok(&addr, &scenario("quota_a", 4501), "alice");

    // Same tenant, different work, quota 1 → typed 429.
    let denied_before = counter("serve.quota_denied");
    let (status, body) = submit(&addr, &scenario("quota_b", 4502), "alice");
    assert_eq!(status, 429, "expected quota denial, got {status}: {body}");
    let doc = parse(&body).expect("error JSON");
    assert_eq!(
        field(field(&doc, "error"), "kind").as_str(),
        Some("quota_exhausted")
    );
    assert_eq!(counter("serve.quota_denied") - denied_before, 1);

    // Another tenant is unaffected.
    let (other, _) = submit_ok(&addr, &scenario("quota_c", 4503), "bob");

    // Tenant usage endpoint reflects the charge.
    let (status, body) = http_request(&addr, "GET", "/v1/tenants/alice", &[], None).expect("usage");
    assert_eq!(status, 200);
    let usage = parse(&body).expect("usage JSON");
    assert_eq!(field(&usage, "inflight").as_f64(), Some(1.0));
    assert_eq!(field(&usage, "quota").as_f64(), Some(1.0));

    // Once the first job drains, the tenant can submit again.
    wait_terminal(&addr, &first);
    wait_terminal(&addr, &other);
    let (retry, _) = submit_ok(&addr, &scenario("quota_b", 4502), "alice");
    let done = wait_terminal(&addr, &retry);
    assert_eq!(field(&done, "state").as_str(), Some("done"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(cache_dir);
}

#[test]
fn typed_errors_for_bad_requests() {
    let _guard = serial();
    let (server, addr, cache_dir) = start_server("errors", 1, 0);

    // Fault scenarios belong to the harness CLI, not the server.
    let mut faulted = scenario("faulted", 4601);
    faulted.fault = Some(qce::FaultPlan::new(11).with(qce::FaultKind::BitFlip { rate: 0.002 }));
    let (status, body) = submit(&addr, &faulted, "alice");
    assert_eq!(status, 400);
    let doc = parse(&body).expect("error JSON");
    assert_eq!(
        field(field(&doc, "error"), "kind").as_str(),
        Some("unsupported_axis")
    );

    // Malformed scenario JSON.
    let (status, body) =
        http_request(&addr, "POST", "/v1/jobs", &[], Some("{not json")).expect("bad submit");
    assert_eq!(status, 400, "{body}");
    let doc = parse(&body).expect("error JSON");
    assert_eq!(
        field(field(&doc, "error"), "kind").as_str(),
        Some("bad_request")
    );

    // Unknown job and unknown route.
    let (status, _) = http_request(&addr, "GET", "/v1/jobs/999999", &[], None).expect("missing");
    assert_eq!(status, 404);
    let (status, _) = http_request(&addr, "GET", "/v1/nope", &[], None).expect("no route");
    assert_eq!(status, 404);

    // Bad priority header.
    let (status, body) = http_request(
        &addr,
        "POST",
        "/v1/jobs",
        &[("X-Qce-Priority", "not-a-number")],
        Some(&scenario("prio", 4602).to_json()),
    )
    .expect("bad priority");
    assert_eq!(status, 400, "{body}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(cache_dir);
}
