//! The TCP front end: accept loop, request routing, and the NDJSON
//! progress stream.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use qce_harness::Scenario;
use qce_store::StageCache;
use qce_telemetry::json::ObjWriter;

use crate::http::{read_request, respond_error, respond_json, start_ndjson, Request};
use crate::job::Job;
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::{ErrorKind, Result, ServeError};

/// Server construction parameters.
#[derive(Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7700`; port `0` picks a free
    /// port (read it back from [`Server::addr`]).
    pub addr: String,
    /// Worker threads for the scheduler.
    pub workers: usize,
    /// Per-tenant in-flight quota; `0` = unlimited.
    pub tenant_quota: usize,
    /// Stage cache shared by the workers (`None` disables dedup across
    /// restarts and checkpoint resume).
    pub cache: Option<StageCache>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            tenant_quota: 0,
            cache: None,
        }
    }
}

/// A running daemon: accept loop plus scheduler.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
    shutdown_signal: Arc<(Mutex<bool>, Condvar)>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listen socket, starts the worker pool and the accept
    /// thread, and returns the running server.
    ///
    /// # Errors
    ///
    /// `io_error` if the address cannot be bound.
    pub fn start(config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::io(format!("binding {}: {e}", config.addr)))?;
        let addr = listener.local_addr()?;
        let scheduler = Scheduler::start(SchedulerConfig {
            workers: config.workers,
            tenant_quota: config.tenant_quota,
            cache: config.cache,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_signal = Arc::new((Mutex::new(false), Condvar::new()));

        let accept = {
            let scheduler = Arc::clone(&scheduler);
            let stop = Arc::clone(&stop);
            let shutdown_signal = Arc::clone(&shutdown_signal);
            std::thread::Builder::new()
                .name("qce-serve-accept".to_string())
                .spawn(move || {
                    for incoming in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = incoming else { continue };
                        let scheduler = Arc::clone(&scheduler);
                        let shutdown_signal = Arc::clone(&shutdown_signal);
                        let _ = std::thread::Builder::new()
                            .name("qce-serve-conn".to_string())
                            .spawn(move || {
                                handle_connection(stream, &scheduler, &shutdown_signal);
                            });
                    }
                })
                .map_err(|e| ServeError::io(format!("spawning accept thread: {e}")))?
        };

        qce_telemetry::log_line(
            qce_telemetry::Level::Debug,
            &format!("serve: listening on {addr}"),
        );
        Ok(Server {
            addr,
            scheduler,
            stop,
            shutdown_signal,
            accept: Some(accept),
        })
    }

    /// The bound listen address (resolves port `0` requests).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler, for direct (non-HTTP) inspection in tests.
    #[must_use]
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Blocks until a client POSTs `/v1/shutdown`.
    pub fn wait_for_shutdown_request(&self) {
        let (flag, cv) = &*self.shutdown_signal;
        let mut requested = flag.lock().expect("shutdown signal");
        while !*requested {
            requested = cv.wait(requested).expect("shutdown signal");
        }
    }

    /// Stops the accept loop, cancels queued work, waits for running
    /// jobs to reach a stage boundary, and joins every pool thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.scheduler.shutdown();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    scheduler: &Arc<Scheduler>,
    shutdown_signal: &Arc<(Mutex<bool>, Condvar)>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(err) => {
            respond_error(&mut stream, &err);
            return;
        }
    };
    let path = request.path.split('?').next().unwrap_or("").to_string();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let outcome = match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            respond_json(&mut stream, 200, "{\"ok\":true}");
            Ok(())
        }
        ("POST", ["v1", "jobs"]) => handle_submit(&mut stream, scheduler, &request),
        ("GET", ["v1", "jobs", id]) => {
            parse_id(id).and_then(|id| handle_status(&mut stream, scheduler, id))
        }
        ("GET", ["v1", "jobs", id, "stream"]) => {
            parse_id(id).and_then(|id| handle_stream(&mut stream, scheduler, id))
        }
        ("POST", ["v1", "jobs", id, "cancel"]) => {
            parse_id(id).and_then(|id| handle_cancel(&mut stream, scheduler, id))
        }
        ("GET", ["v1", "tenants", tenant]) => {
            let (inflight, quota) = scheduler.tenant_usage(tenant);
            let mut doc = ObjWriter::new();
            doc.str("tenant", tenant)
                .uint("inflight", inflight as u64)
                .uint("quota", quota as u64);
            respond_json(&mut stream, 200, &doc.finish());
            Ok(())
        }
        ("GET", ["v1", "stats"]) => {
            respond_json(&mut stream, 200, &scheduler.stats_json());
            Ok(())
        }
        ("POST", ["v1", "shutdown"]) => {
            respond_json(&mut stream, 200, "{\"ok\":true}");
            let (flag, cv) = &**shutdown_signal;
            *flag.lock().expect("shutdown signal") = true;
            cv.notify_all();
            Ok(())
        }
        _ => Err(ServeError::new(
            ErrorKind::NotFound,
            format!("no route {} {}", request.method, path),
        )),
    };
    if let Err(err) = outcome {
        respond_error(&mut stream, &err);
    }
}

fn parse_id(raw: &str) -> Result<u64> {
    raw.parse::<u64>()
        .map_err(|_| ServeError::bad_request(format!("bad job id {raw:?}")))
}

fn handle_submit(
    stream: &mut TcpStream,
    scheduler: &Arc<Scheduler>,
    request: &Request,
) -> Result<()> {
    let body = request.body_utf8()?;
    let scenario =
        Scenario::from_json(body).map_err(|e| ServeError::bad_request(format!("scenario: {e}")))?;
    let tenant = match request.header("x-qce-tenant") {
        Some(t) if !t.trim().is_empty() => t.trim().to_string(),
        _ => "anonymous".to_string(),
    };
    let priority = request
        .header("x-qce-priority")
        .map(|v| {
            v.trim()
                .parse::<i64>()
                .map_err(|_| ServeError::bad_request(format!("bad X-Qce-Priority {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    let (job, deduped) = scheduler.submit(scenario, &tenant, priority)?;
    let mut doc = ObjWriter::new();
    doc.str("id", &job.id.to_string())
        .str("state", job.state().name())
        .bool("deduped", deduped);
    respond_json(stream, 200, &doc.finish());
    Ok(())
}

fn handle_status(stream: &mut TcpStream, scheduler: &Arc<Scheduler>, id: u64) -> Result<()> {
    let job = scheduler
        .job(id)
        .ok_or_else(|| ServeError::new(ErrorKind::NotFound, format!("no job {id}")))?;
    respond_json(stream, 200, &job.status_json());
    Ok(())
}

fn handle_cancel(stream: &mut TcpStream, scheduler: &Arc<Scheduler>, id: u64) -> Result<()> {
    let state = scheduler.cancel(id)?;
    let mut doc = ObjWriter::new();
    doc.str("id", &id.to_string()).str("state", state.name());
    respond_json(stream, 200, &doc.finish());
    Ok(())
}

/// Streams stage events as NDJSON until the job reaches a terminal
/// state, then emits one final `{"type":"state",...}` line and closes.
fn handle_stream(stream: &mut TcpStream, scheduler: &Arc<Scheduler>, id: u64) -> Result<()> {
    let job = scheduler
        .job(id)
        .ok_or_else(|| ServeError::new(ErrorKind::NotFound, format!("no job {id}")))?;
    start_ndjson(stream)?;
    let mut cursor = 0usize;
    loop {
        let (lines, terminal) = wait_for_progress(&job, &mut cursor);
        for line in &lines {
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
        }
        stream.flush()?;
        if let Some(doc) = terminal {
            stream.write_all(doc.as_bytes())?;
            stream.write_all(b"\n")?;
            stream.flush()?;
            return Ok(());
        }
    }
}

/// Blocks on the job's condvar until new events arrive past `cursor`
/// or the job turns terminal; returns the new lines and, when
/// terminal, the final state line.
fn wait_for_progress(job: &Arc<Job>, cursor: &mut usize) -> (Vec<String>, Option<String>) {
    let mut core = job.core.lock().expect("job core");
    loop {
        if core.events.len() > *cursor || core.state.is_terminal() {
            let lines: Vec<String> = core.events[*cursor..].to_vec();
            *cursor = core.events.len();
            let terminal = core.state.is_terminal().then(|| {
                let mut doc = ObjWriter::new();
                doc.str("type", "state").str("state", core.state.name());
                match &core.result {
                    Some(result) => doc.raw("result", result),
                    None => doc.raw("result", "null"),
                };
                match &core.error {
                    Some((kind, message)) => {
                        let mut err = ObjWriter::new();
                        err.str("kind", kind).str("message", message);
                        doc.raw("error", &err.finish())
                    }
                    None => doc.raw("error", "null"),
                };
                doc.finish()
            });
            return (lines, terminal);
        }
        let (guard, _) = job
            .cv
            .wait_timeout(core, Duration::from_millis(200))
            .expect("job core");
        core = guard;
    }
}
