//! The job scheduler: a priority queue drained by a fixed worker pool,
//! with content-addressed dedup, per-tenant quotas and cooperative
//! cancellation between stage steps.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use qce::AttackFlow;
use qce_harness::Scenario;
use qce_store::StageCache;
use qce_telemetry::json::ObjWriter;
use qce_telemetry::{counter, fnv1a};

use crate::job::{Job, JobCore, JobState};
use crate::queue::QueueEntry;
use crate::{ErrorKind, Result, ServeError};

/// Terminal jobs are pruned oldest-first once the table exceeds this,
/// bounding daemon memory over long uptimes.
const MAX_JOBS_RETAINED: usize = 4096;

/// Scheduler construction parameters.
#[derive(Debug)]
pub struct SchedulerConfig {
    /// Worker threads draining the queue (minimum 1).
    pub workers: usize,
    /// Per-tenant in-flight job cap; `0` means unlimited.
    pub tenant_quota: usize,
    /// Stage cache shared by all workers. `None` disables checkpoint
    /// reuse (every job recomputes from scratch).
    pub cache: Option<StageCache>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            tenant_quota: 0,
            cache: None,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Job ids ordered by the shared priority/FIFO rule
    /// ([`QueueEntry`]); the heap lives inside `Inner` because the
    /// scheduler's state transitions (dedup, quotas, cancellation) must
    /// be atomic with queue membership.
    queue: BinaryHeap<QueueEntry<u64>>,
    jobs: HashMap<u64, Arc<Job>>,
    /// `work_key → job id` for every non-terminal job: the dedup index.
    inflight: HashMap<u64, u64>,
    tenant_inflight: HashMap<String, usize>,
    next_id: u64,
    next_seq: u64,
    shutdown: bool,
}

/// The scheduler. Locking order is `inner` before any `Job::core`;
/// workers never hold both across a stage step.
#[derive(Debug)]
pub struct Scheduler {
    inner: Mutex<Inner>,
    work: Condvar,
    cache: Option<StageCache>,
    quota: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts the worker pool and returns the shared scheduler handle.
    #[must_use]
    pub fn start(config: SchedulerConfig) -> Arc<Scheduler> {
        let sched = Arc::new(Scheduler {
            inner: Mutex::new(Inner {
                next_id: 1,
                ..Inner::default()
            }),
            work: Condvar::new(),
            cache: config.cache,
            quota: config.tenant_quota,
            workers: Mutex::new(Vec::new()),
        });
        let n = config.workers.max(1);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let me = Arc::clone(&sched);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("qce-serve-worker-{i}"))
                    .spawn(move || me.worker_loop())
                    .expect("spawn worker"),
            );
        }
        *sched.workers.lock().expect("workers") = handles;
        sched
    }

    /// The per-tenant in-flight quota (`0` = unlimited).
    #[must_use]
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Submits `scenario` for `tenant` at `priority`. Returns the job
    /// (new or an in-flight job with the same content address) and
    /// whether the submit was deduplicated onto existing work.
    ///
    /// # Errors
    ///
    /// `unsupported_axis` for fault/defense scenarios,
    /// `quota_exhausted` when the tenant is at its cap,
    /// `shutting_down` after [`Scheduler::shutdown`].
    pub(crate) fn submit(
        &self,
        scenario: Scenario,
        tenant: &str,
        priority: i64,
    ) -> Result<(Arc<Job>, bool)> {
        if scenario.fault.is_some() || !scenario.defenses.is_empty() {
            counter("serve.rejected").incr(1);
            return Err(ServeError::new(
                ErrorKind::UnsupportedAxis,
                "the server runs clean flows only; fault/defense axes belong to the harness CLI",
            ));
        }
        let work_key = fnv1a(&scenario.to_json());
        let mut inner = self.inner.lock().expect("scheduler");
        if inner.shutdown {
            return Err(ServeError::new(
                ErrorKind::Shutdown,
                "server is shutting down",
            ));
        }

        if let Some(&existing) = inner.inflight.get(&work_key) {
            if let Some(job) = inner.jobs.get(&existing).map(Arc::clone) {
                let attach = {
                    let core = job.core.lock().expect("job core");
                    !core.tenants.iter().any(|t| t == tenant)
                };
                if attach {
                    self.charge_tenant(&mut inner, tenant)?;
                    job.core
                        .lock()
                        .expect("job core")
                        .tenants
                        .push(tenant.to_string());
                }
                counter("serve.submit").incr(1);
                counter("serve.dedup").incr(1);
                return Ok((job, true));
            }
        }

        self.charge_tenant(&mut inner, tenant)?;
        let id = inner.next_id;
        inner.next_id += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let job = Arc::new(Job {
            id,
            priority,
            work_key,
            scenario,
            cancel: std::sync::atomic::AtomicBool::new(false),
            core: Mutex::new(JobCore {
                state: JobState::Queued,
                events: Vec::new(),
                result: None,
                error: None,
                tenants: vec![tenant.to_string()],
            }),
            cv: Condvar::new(),
        });
        prune_terminal(&mut inner);
        inner.jobs.insert(id, Arc::clone(&job));
        inner.inflight.insert(work_key, id);
        inner.queue.push(QueueEntry {
            priority,
            seq,
            item: id,
        });
        counter("serve.submit").incr(1);
        self.work.notify_one();
        Ok((job, false))
    }

    fn charge_tenant(&self, inner: &mut Inner, tenant: &str) -> Result<()> {
        let used = inner.tenant_inflight.get(tenant).copied().unwrap_or(0);
        if self.quota > 0 && used >= self.quota {
            counter("serve.quota_denied").incr(1);
            return Err(ServeError::new(
                ErrorKind::QuotaExhausted,
                format!(
                    "tenant {tenant:?} is at its quota of {} in-flight jobs",
                    self.quota
                ),
            ));
        }
        *inner.tenant_inflight.entry(tenant.to_string()).or_insert(0) += 1;
        Ok(())
    }

    /// The job with `id`, if retained.
    pub(crate) fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.inner
            .lock()
            .expect("scheduler")
            .jobs
            .get(&id)
            .map(Arc::clone)
    }

    /// Requests cancellation of job `id` and returns its state after
    /// the request: queued jobs cancel immediately; running jobs stop
    /// at the next stage-step boundary (their completed steps stay in
    /// the stage cache as a resumable checkpoint).
    ///
    /// # Errors
    ///
    /// `not_found` if no such job is retained.
    pub fn cancel(&self, id: u64) -> Result<JobState> {
        let mut inner = self.inner.lock().expect("scheduler");
        let job = inner
            .jobs
            .get(&id)
            .map(Arc::clone)
            .ok_or_else(|| ServeError::new(ErrorKind::NotFound, format!("no job {id}")))?;
        job.cancel.store(true, Ordering::SeqCst);
        let state = job.state();
        if state == JobState::Queued {
            finalize(&mut inner, &job, |core| {
                core.state = JobState::Cancelled;
            });
            counter("serve.cancelled").incr(1);
            return Ok(JobState::Cancelled);
        }
        Ok(state)
    }

    /// `(in-flight jobs, quota)` for `tenant`; quota `0` = unlimited.
    #[must_use]
    pub fn tenant_usage(&self, tenant: &str) -> (usize, usize) {
        let inner = self.inner.lock().expect("scheduler");
        (
            inner.tenant_inflight.get(tenant).copied().unwrap_or(0),
            self.quota,
        )
    }

    /// A stats document: job counts by state plus every `serve.*` and
    /// `store.*` telemetry counter.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let (queued, running, done, failed, cancelled) = {
            let inner = self.inner.lock().expect("scheduler");
            let mut counts = (0u64, 0u64, 0u64, 0u64, 0u64);
            for job in inner.jobs.values() {
                match job.state() {
                    JobState::Queued => counts.0 += 1,
                    JobState::Running => counts.1 += 1,
                    JobState::Done => counts.2 += 1,
                    JobState::Failed => counts.3 += 1,
                    JobState::Cancelled => counts.4 += 1,
                }
            }
            counts
        };
        let mut jobs = ObjWriter::new();
        jobs.uint("queued", queued)
            .uint("running", running)
            .uint("done", done)
            .uint("failed", failed)
            .uint("cancelled", cancelled);
        let mut counters = ObjWriter::new();
        for (name, value) in qce_telemetry::snapshot().counters_with_prefix(&["serve.", "store."]) {
            counters.uint(&name, value);
        }
        let mut root = ObjWriter::new();
        root.raw("jobs", &jobs.finish())
            .raw("counters", &counters.finish());
        root.finish()
    }

    /// Stops accepting work, cancels queued jobs, asks running jobs to
    /// stop at the next stage boundary, and joins the worker pool.
    pub fn shutdown(&self) {
        let queued: Vec<Arc<Job>> = {
            let mut inner = self.inner.lock().expect("scheduler");
            if inner.shutdown {
                return;
            }
            inner.shutdown = true;
            let mut queued = Vec::new();
            for job in inner.jobs.values() {
                job.cancel.store(true, Ordering::SeqCst);
                if job.state() == JobState::Queued {
                    queued.push(Arc::clone(job));
                }
            }
            for job in &queued {
                finalize(&mut inner, job, |core| {
                    core.state = JobState::Cancelled;
                });
                counter("serve.cancelled").incr(1);
            }
            inner.queue.clear();
            queued
        };
        drop(queued);
        self.work.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let job = {
                let mut inner = self.inner.lock().expect("scheduler");
                loop {
                    if inner.shutdown {
                        return;
                    }
                    if let Some(entry) = inner.queue.pop() {
                        if let Some(job) = inner.jobs.get(&entry.item).map(Arc::clone) {
                            // Skip entries finalized while queued
                            // (cancelled); only Queued jobs run.
                            if job.state() == JobState::Queued {
                                job.core.lock().expect("job core").state = JobState::Running;
                                break job;
                            }
                        }
                        continue;
                    }
                    inner = self.work.wait(inner).expect("scheduler");
                }
            };
            self.run_job(&job);
        }
    }

    fn run_job(&self, job: &Arc<Job>) {
        let started = Instant::now();
        let outcome = self.drive(job);
        let mut inner = self.inner.lock().expect("scheduler");
        match outcome {
            Ok(Some(result)) => {
                finalize(&mut inner, job, |core| {
                    core.state = JobState::Done;
                    core.result = Some(result);
                });
                counter("serve.complete").incr(1);
            }
            Ok(None) => {
                finalize(&mut inner, job, |core| {
                    core.state = JobState::Cancelled;
                });
                counter("serve.cancelled").incr(1);
            }
            Err(err) => {
                finalize(&mut inner, job, |core| {
                    core.state = JobState::Failed;
                    core.error = Some((err.kind.as_str().to_string(), err.message.clone()));
                });
                counter("serve.failed").incr(1);
            }
        }
        drop(inner);
        qce_telemetry::log_line(
            qce_telemetry::Level::Debug,
            &format!(
                "serve: job {} finished as {} in {:.1} ms",
                job.id,
                job.state().name(),
                started.elapsed().as_secs_f64() * 1e3,
            ),
        );
    }

    /// Drives the flow machine to completion. `Ok(None)` means the job
    /// was cancelled between steps.
    fn drive(&self, job: &Arc<Job>) -> Result<Option<String>> {
        if job.cancel.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let started = Instant::now();
        let dataset = job
            .scenario
            .dataset
            .generate()
            .map_err(|e| ServeError::new(ErrorKind::Flow, format!("dataset synthesis: {e}")))?;
        let mut flow = AttackFlow::new(job.scenario.flow.clone());
        if let Some(cache) = &self.cache {
            flow = flow.with_cache(cache.clone());
        }
        let mut machine = flow
            .machine(&dataset)
            .map_err(|e| ServeError::new(ErrorKind::Flow, e.to_string()))?;
        while !machine.is_done() {
            if job.cancel.load(Ordering::SeqCst) {
                return Ok(None);
            }
            let event = machine
                .advance()
                .map_err(|e| ServeError::new(ErrorKind::Flow, e.to_string()))?;
            let mut event_json = ObjWriter::new();
            event_json
                .str("type", "stage")
                .str("step", event.step.name())
                .str("label", &event.label)
                .num("wall_ms", event.wall_ms)
                .bool("skipped", event.skipped);
            let mut core = job.core.lock().expect("job core");
            core.events.push(event_json.finish());
            job.cv.notify_all();
        }
        let outcome = machine
            .into_outcome()
            .map_err(|e| ServeError::new(ErrorKind::Flow, e.to_string()))?;
        Ok(Some(result_json(
            &job.scenario,
            &outcome,
            started.elapsed().as_secs_f64() * 1e3,
        )))
    }
}

/// Removes the job from the dedup index and releases its tenants'
/// quota charges, then applies the terminal state under the job lock
/// and wakes all waiters. Caller holds `inner`.
fn finalize(inner: &mut Inner, job: &Arc<Job>, apply: impl FnOnce(&mut JobCore)) {
    if inner.inflight.get(&job.work_key) == Some(&job.id) {
        inner.inflight.remove(&job.work_key);
    }
    let mut core = job.core.lock().expect("job core");
    for tenant in &core.tenants {
        if let Some(n) = inner.tenant_inflight.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                inner.tenant_inflight.remove(tenant);
            }
        }
    }
    apply(&mut core);
    job.cv.notify_all();
}

/// Drops the oldest terminal jobs once the table is full. Caller holds
/// `inner`.
fn prune_terminal(inner: &mut Inner) {
    if inner.jobs.len() < MAX_JOBS_RETAINED {
        return;
    }
    let mut terminal: Vec<u64> = inner
        .jobs
        .iter()
        .filter(|(_, j)| j.state().is_terminal())
        .map(|(id, _)| *id)
        .collect();
    terminal.sort_unstable();
    let excess = inner.jobs.len().saturating_sub(MAX_JOBS_RETAINED - 1);
    for id in terminal.into_iter().take(excess) {
        inner.jobs.remove(&id);
    }
}

/// Renders the result document: released accuracy, extraction quality,
/// compression ratio and the deterministic artifact digests (as hex
/// strings — u64 digests do not survive JSON number precision).
fn result_json(scenario: &Scenario, outcome: &qce::FlowOutcome, wall_ms: f64) -> String {
    let report = outcome.final_report();
    let mut digests = ObjWriter::new();
    for (name, digest) in outcome.artifact_digests() {
        digests.str(&name, &format!("{digest:016x}"));
    }
    let mut root = ObjWriter::new();
    root.str("scenario", &scenario.name)
        .num("pre_quant_accuracy", f64::from(outcome.pre_quant.accuracy))
        .num("accuracy", f64::from(report.accuracy))
        .uint("images", report.images.len() as u64)
        .uint("recognized", report.recognized_count() as u64)
        .num("mean_mape", f64::from(report.mean_mape()))
        .num("mean_ssim", f64::from(report.mean_ssim()))
        .num("wall_ms", wall_ms);
    match outcome.compression_ratio {
        Some(ratio) => root.num("compression_ratio", ratio),
        None => root.raw("compression_ratio", "null"),
    };
    root.raw("digests", &digests.finish());
    root.finish()
}
