//! `qce-serve` — a long-running local serving daemon for the attack flow.
//!
//! The binary accepts `qce-harness`-format [`Scenario`] JSON over a
//! hand-rolled HTTP/1.1 socket (no external dependencies, like the rest
//! of the workspace), runs the flows concurrently on a worker pool built
//! from the resumable [`FlowMachine`](qce::FlowMachine) stage steps, and
//! streams per-stage progress back to clients as NDJSON.
//!
//! Three properties make it a *multi-tenant* server rather than a batch
//! runner:
//!
//! * **Dedup.** Work is content-addressed: two tenants submitting the
//!   same scenario (same dataset fingerprint, flow config and seed)
//!   share one in-flight computation, and warm resubmits replay entirely
//!   from the [`StageCache`](qce_store::StageCache) checkpoints that
//!   every completed stage step writes.
//! * **Scheduling.** Jobs carry an integer priority and drain through a
//!   max-priority / FIFO-within-priority queue; any job can be cancelled
//!   between stage steps, leaving its cache checkpoints behind for a
//!   later resubmit to resume from.
//! * **Quotas.** Each tenant is capped at a configurable number of
//!   in-flight jobs; exceeding it yields a typed `quota_exhausted`
//!   error with HTTP 429.
//!
//! See `OPERATIONS.md` at the repository root for the wire protocol and
//! an operator's guide, and `DESIGN.md` §5j for the stage-step state
//! machine the workers drive.
//!
//! [`Scenario`]: qce_harness::Scenario

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod http;
mod job;
mod load;
pub mod queue;
mod scheduler;
mod server;

pub use job::JobState;
pub use load::{run_load, LevelStats, LoadConfig, LoadReport};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use server::{Server, ServerConfig};

use qce_telemetry::json::ObjWriter;

/// Environment variable naming the daemon's default listen address
/// (overridden by `--addr`).
pub const SERVE_ADDR_ENV: &str = "QCE_SERVE_ADDR";
/// Environment variable naming the default worker-thread count
/// (overridden by `--workers`).
pub const SERVE_WORKERS_ENV: &str = "QCE_SERVE_WORKERS";
/// Environment variable naming the default per-tenant in-flight job
/// quota, `0` meaning unlimited (overridden by `--quota`).
pub const SERVE_QUOTA_ENV: &str = "QCE_SERVE_QUOTA";

/// Machine-readable failure class, carried on the wire as
/// `error.kind` and mapped onto the HTTP status line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed request: unparsable HTTP, invalid scenario JSON, or a
    /// bad header value. HTTP 400.
    BadRequest,
    /// The referenced job (or route) does not exist. HTTP 404.
    NotFound,
    /// The tenant is at its in-flight job quota. HTTP 429.
    QuotaExhausted,
    /// The scenario uses a harness axis the server does not run
    /// (fault injection / defense tournaments). HTTP 400.
    UnsupportedAxis,
    /// The server is shutting down and no longer accepts work. HTTP 503.
    Shutdown,
    /// The flow itself failed while executing. HTTP 500.
    Flow,
    /// Socket-level failure talking to a peer. HTTP 500.
    Io,
}

impl ErrorKind {
    /// The stable wire name of this kind (`error.kind` in responses).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::NotFound => "not_found",
            ErrorKind::QuotaExhausted => "quota_exhausted",
            ErrorKind::UnsupportedAxis => "unsupported_axis",
            ErrorKind::Shutdown => "shutting_down",
            ErrorKind::Flow => "flow_error",
            ErrorKind::Io => "io_error",
        }
    }

    /// The HTTP status code this kind is reported with.
    #[must_use]
    pub fn status(self) -> u16 {
        match self {
            ErrorKind::BadRequest | ErrorKind::UnsupportedAxis => 400,
            ErrorKind::NotFound => 404,
            ErrorKind::QuotaExhausted => 429,
            ErrorKind::Shutdown => 503,
            ErrorKind::Flow | ErrorKind::Io => 500,
        }
    }
}

/// A typed serving error: every failure the daemon reports carries a
/// machine-readable [`ErrorKind`] plus a human-readable message.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// Failure class (drives the HTTP status and `error.kind`).
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ServeError {
    /// A new error of `kind` with `message`.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ServeError {
            kind,
            message: message.into(),
        }
    }

    /// Shorthand for a [`ErrorKind::BadRequest`] error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServeError::new(ErrorKind::BadRequest, message)
    }

    /// Shorthand for a [`ErrorKind::Io`] error.
    pub fn io(message: impl Into<String>) -> Self {
        ServeError::new(ErrorKind::Io, message)
    }

    /// Renders the canonical error body:
    /// `{"error":{"kind":"...","message":"..."}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut inner = ObjWriter::new();
        inner
            .str("kind", self.kind.as_str())
            .str("message", &self.message);
        let mut root = ObjWriter::new();
        root.raw("error", &inner.finish());
        root.finish()
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
