//! `qce-serve` CLI: the serving daemon and its load generator.
//!
//! ```text
//! qce-serve serve [--addr A] [--workers N] [--quota N] [--cache DIR] [--cache-max-bytes B]
//! qce-serve load  [--addr A] [--jobs N] [--levels 1,4] [--seed-base S] [--out FILE]
//! ```
//!
//! `serve` blocks until a client POSTs `/v1/shutdown`. Defaults come
//! from `QCE_SERVE_ADDR` / `QCE_SERVE_WORKERS` / `QCE_SERVE_QUOTA` and
//! the store's `QCE_CACHE` / `QCE_CACHE_MAX_BYTES`; flags win over the
//! environment. See `OPERATIONS.md` for the wire protocol.

use std::process::ExitCode;

use qce_serve::{
    run_load, LoadConfig, Server, ServerConfig, SERVE_ADDR_ENV, SERVE_QUOTA_ENV, SERVE_WORKERS_ENV,
};
use qce_store::StageCache;

fn env_or(name: &str, fallback: &str) -> String {
    std::env::var(name)
        .ok()
        .filter(|v| !v.trim().is_empty())
        .unwrap_or_else(|| fallback.to_string())
}

/// `--flag value` argument scanner over the raw arg list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: qce-serve serve [--addr A] [--workers N] [--quota N] [--cache DIR] [--cache-max-bytes B]\n       qce-serve load  [--addr A] [--jobs N] [--levels 1,4] [--seed-base S] [--out FILE]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        _ => usage(),
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let addr =
        flag_value(args, "--addr").unwrap_or_else(|| env_or(SERVE_ADDR_ENV, "127.0.0.1:7700"));
    let workers = flag_value(args, "--workers")
        .unwrap_or_else(|| env_or(SERVE_WORKERS_ENV, "2"))
        .parse::<usize>()
        .unwrap_or(2);
    let quota = flag_value(args, "--quota")
        .unwrap_or_else(|| env_or(SERVE_QUOTA_ENV, "0"))
        .parse::<usize>()
        .unwrap_or(0);
    let mut cache = match flag_value(args, "--cache") {
        Some(dir) => Some(StageCache::at(dir)),
        None => StageCache::from_env(),
    };
    if let (Some(c), Some(raw)) = (cache.take(), flag_value(args, "--cache-max-bytes")) {
        cache = Some(match qce_store::parse_byte_budget(&raw) {
            Some(bytes) => c.with_max_bytes(bytes),
            None => {
                eprintln!("qce-serve: ignoring unparsable --cache-max-bytes {raw:?}");
                c
            }
        });
    }

    let server = match Server::start(ServerConfig {
        addr,
        workers,
        tenant_quota: quota,
        cache,
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("qce-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("qce-serve: listening on {}", server.addr());
    println!("qce-serve: POST /v1/shutdown to stop");
    server.wait_for_shutdown_request();
    println!("qce-serve: shutdown requested, draining");
    server.shutdown();
    ExitCode::SUCCESS
}

fn cmd_load(args: &[String]) -> ExitCode {
    let defaults = LoadConfig::default();
    let addr = flag_value(args, "--addr").unwrap_or_else(|| env_or(SERVE_ADDR_ENV, &defaults.addr));
    let jobs = flag_value(args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.jobs);
    let levels: Vec<usize> = flag_value(args, "--levels")
        .map(|v| v.split(',').filter_map(|p| p.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or(defaults.levels);
    let seed_base = flag_value(args, "--seed-base")
        .and_then(|v| v.parse().ok())
        .unwrap_or(defaults.seed_base);
    let out = flag_value(args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    let cfg = LoadConfig {
        addr,
        jobs,
        levels,
        seed_base,
    };
    let report = match run_load(&cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("qce-serve load: {e}");
            return ExitCode::FAILURE;
        }
    };
    for level in &report.levels {
        println!(
            "c{}: {} jobs, p50 {:.1} ms, p99 {:.1} ms, {:.2} jobs/s",
            level.concurrency, level.jobs, level.p50_ms, level.p99_ms, level.throughput_jobs_per_s,
        );
    }
    println!(
        "warm: p50 {:.1} ms, p99 {:.1} ms, dedup hit-rate {:.3} ({} hits, {} writes)",
        report.warm.p50_ms,
        report.warm.p99_ms,
        report.dedup_hit_rate,
        report.warm_store_hits,
        report.warm_store_writes,
    );
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("qce-serve load: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
