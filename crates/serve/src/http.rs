//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! The daemon serves trusted local clients (the CLI, curl, the load
//! generator), so the protocol surface is minimal by design: one request
//! per connection, `Connection: close` on every response, bodies
//! delimited by `Content-Length` on requests and by EOF on streaming
//! responses. Header and body sizes are capped so a misbehaving client
//! cannot balloon server memory.

use std::io::{Read, Write};
use std::net::TcpStream;

use crate::{ErrorKind, Result, ServeError};

/// Maximum accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (uppercased verbatim from the request line).
    pub method: String,
    /// Request path, query string included if any.
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body decoded as UTF-8, or a `bad_request` error.
    pub fn body_utf8(&self) -> Result<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ServeError::bad_request("request body is not valid UTF-8"))
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// `bad_request` on malformed framing or caps exceeded, `io_error` on
/// socket failure.
pub fn read_request(stream: &mut TcpStream) -> Result<Request> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ServeError::bad_request(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ServeError::bad_request(
                "connection closed before request head completed",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ServeError::bad_request("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ServeError::bad_request("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::bad_request("missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ServeError::bad_request("missing path"))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(ServeError::bad_request("not an HTTP/1.x request")),
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::bad_request(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ServeError::bad_request(format!("bad Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ServeError::bad_request(format!(
            "request body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
        )));
    }

    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ServeError::bad_request(
                "connection closed before request body completed",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The standard reason phrase for the status codes this server emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete JSON response and flushes. Errors are swallowed:
/// a client that hung up mid-response is not a server failure.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len(),
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Writes the error's canonical JSON body with its mapped status.
pub fn respond_error(stream: &mut TcpStream, err: &ServeError) {
    respond_json(stream, err.kind.status(), &err.to_json());
}

/// Writes the response head for an EOF-delimited NDJSON stream. Each
/// subsequent line is one JSON object; closing the socket ends the
/// stream.
///
/// # Errors
///
/// `io_error` if the head cannot be written.
pub fn start_ndjson(stream: &mut TcpStream) -> Result<()> {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// A minimal blocking HTTP client for tests and the load generator:
/// sends one request, reads the response to EOF, returns
/// `(status, body)`. Streaming responses are read in full.
///
/// # Errors
///
/// `io_error` on socket failure, `bad_request` if the peer's response
/// cannot be parsed.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    req.push_str(body);
    stream.write_all(req.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, rest) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| ServeError::new(ErrorKind::BadRequest, "peer response has no head"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ServeError::new(ErrorKind::BadRequest, "peer response has no status"))?;
    Ok((status, rest.to_string()))
}
