//! Job state shared between the scheduler's workers and the HTTP
//! connection threads.

use std::sync::atomic::AtomicBool;
use std::sync::{Condvar, Mutex};

use qce_harness::Scenario;
use qce_telemetry::json::ObjWriter;

/// Lifecycle of a submitted job.
///
/// `Queued → Running → {Done, Failed, Cancelled}`; cancellation can
/// also strike while still queued. The three right-hand states are
/// terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a worker.
    Queued,
    /// A worker is driving the flow machine.
    Running,
    /// Completed; the result document is available.
    Done,
    /// The flow errored; a typed error is available.
    Failed,
    /// Cancelled before completion. Completed stage steps remain in the
    /// stage cache, so a resubmit resumes from the checkpoint.
    Cancelled,
}

impl JobState {
    /// Stable wire name (`state` field in status documents).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job will never change state again.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Mutable job state, guarded by [`Job::core`]. Waiters block on
/// [`Job::cv`], which is notified on every event append and state
/// change.
#[derive(Debug)]
pub(crate) struct JobCore {
    pub state: JobState,
    /// Per-stage progress events, each pre-rendered as one JSON object.
    pub events: Vec<String>,
    /// Result document JSON, set when `state == Done`.
    pub result: Option<String>,
    /// `(kind, message)`, set when `state == Failed`.
    pub error: Option<(String, String)>,
    /// Tenants attached to this job (first is the submitter; more join
    /// through dedup).
    pub tenants: Vec<String>,
}

/// One unit of work: a scenario plus scheduling metadata. Shared as
/// `Arc<Job>` between the queue, the jobs table and connection threads.
#[derive(Debug)]
pub(crate) struct Job {
    /// Server-assigned id, also the wire handle.
    pub id: u64,
    /// Higher runs earlier.
    pub priority: i64,
    /// Content address: `fnv1a` of the canonical scenario JSON. Jobs
    /// with equal keys are the same computation.
    pub work_key: u64,
    pub scenario: Scenario,
    /// Set to request cancellation; workers check it between stage
    /// steps.
    pub cancel: AtomicBool,
    pub core: Mutex<JobCore>,
    pub cv: Condvar,
}

impl Job {
    pub fn state(&self) -> JobState {
        self.core.lock().expect("job core").state
    }

    /// Full status document: id, scenario name, state, priority,
    /// tenants, events so far, and the result/error when terminal.
    pub fn status_json(&self) -> String {
        let core = self.core.lock().expect("job core");
        let mut root = ObjWriter::new();
        root.str("id", &self.id.to_string())
            .str("scenario", &self.scenario.name)
            .str("state", core.state.name())
            .num("priority", self.priority as f64);
        let tenants: Vec<String> = core.tenants.iter().map(|t| format!("{:?}", t)).collect();
        root.raw("tenants", &format!("[{}]", tenants.join(",")));
        root.raw("events", &format!("[{}]", core.events.join(",")));
        match &core.result {
            Some(result) => root.raw("result", result),
            None => root.raw("result", "null"),
        };
        match &core.error {
            Some((kind, message)) => {
                let mut err = ObjWriter::new();
                err.str("kind", kind).str("message", message);
                root.raw("error", &err.finish())
            }
            None => root.raw("error", "null"),
        };
        root.finish()
    }
}
