//! Shared scheduling primitives: the priority/FIFO heap entry behind the
//! daemon's job queue, plus a blocking work queue built on it.
//!
//! The daemon's [`Scheduler`](crate::Scheduler) keeps its whole state —
//! heap, job table, dedup index, quotas — under one mutex, so it embeds
//! [`QueueEntry`] in its own heap. Batch drivers with no shared mutable
//! state beyond the queue itself (the sweep orchestrator's worker pool)
//! use [`WorkQueue`] directly: push every unit of work, [`close`], and
//! let workers drain it to exhaustion.
//!
//! [`close`]: WorkQueue::close

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Max-heap entry: highest priority first, FIFO within a priority.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueEntry<T: Eq> {
    /// Scheduling priority; higher runs earlier.
    pub priority: i64,
    /// Monotone submission sequence; ties within a priority break FIFO.
    pub seq: u64,
    /// The queued payload.
    pub item: T,
}

impl<T: Eq> Ord for QueueEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl<T: Eq> PartialOrd for QueueEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct State<T: Eq> {
    heap: BinaryHeap<QueueEntry<T>>,
    next_seq: u64,
    closed: bool,
}

/// A blocking multi-producer / multi-consumer priority queue.
///
/// [`WorkQueue::pop`] blocks while the queue is open and empty; after
/// [`WorkQueue::close`] it drains the remaining entries and then returns
/// `None`, so a fixed worker pool terminates exactly when the work runs
/// out.
#[derive(Debug)]
pub struct WorkQueue<T: Eq> {
    state: Mutex<State<T>>,
    work: Condvar,
}

impl<T: Eq> Default for WorkQueue<T> {
    fn default() -> Self {
        WorkQueue::new()
    }
}

impl<T: Eq> WorkQueue<T> {
    /// An empty, open queue.
    #[must_use]
    pub fn new() -> Self {
        WorkQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            work: Condvar::new(),
        }
    }

    /// Enqueues `item` at `priority`. Returns `false` (dropping the
    /// item) if the queue is closed.
    pub fn push(&self, priority: i64, item: T) -> bool {
        let mut state = self.state.lock().expect("work queue");
        if state.closed {
            return false;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(QueueEntry {
            priority,
            seq,
            item,
        });
        drop(state);
        self.work.notify_one();
        true
    }

    /// Blocks for the next item. `None` means the queue is closed and
    /// fully drained — the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("work queue");
        loop {
            if let Some(entry) = state.heap.pop() {
                return Some(entry.item);
            }
            if state.closed {
                return None;
            }
            state = self.work.wait(state).expect("work queue");
        }
    }

    /// Stops accepting pushes and wakes every blocked [`WorkQueue::pop`];
    /// already-queued items still drain.
    pub fn close(&self) {
        self.state.lock().expect("work queue").closed = true;
        self.work.notify_all();
    }

    /// Entries currently queued (racy by nature; for stats only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("work queue").heap.len()
    }

    /// Whether no entries are queued right now.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn entries_order_by_priority_then_fifo() {
        let mut heap = BinaryHeap::new();
        for (priority, seq, item) in [(0, 0, 'a'), (5, 1, 'b'), (0, 2, 'c'), (5, 3, 'd')] {
            heap.push(QueueEntry {
                priority,
                seq,
                item,
            });
        }
        let order: Vec<char> = std::iter::from_fn(|| heap.pop().map(|e| e.item)).collect();
        assert_eq!(order, ['b', 'd', 'a', 'c']);
    }

    #[test]
    fn work_queue_drains_in_priority_order_single_worker() {
        let q = WorkQueue::new();
        assert!(q.push(1, "low"));
        assert!(q.push(9, "high"));
        assert!(q.push(1, "low2"));
        q.close();
        assert!(!q.push(3, "late"));
        assert_eq!(q.pop(), Some("high"));
        assert_eq!(q.pop(), Some("low"));
        assert_eq!(q.pop(), Some("low2"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn workers_drain_everything_exactly_once_then_exit() {
        let q = Arc::new(WorkQueue::new());
        for i in 0..100u64 {
            q.push(0, i);
        }
        q.close();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(i) = q.pop() {
                    got.push(i);
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q: Arc<WorkQueue<u64>> = Arc::new(WorkQueue::new());
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the waiter a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
