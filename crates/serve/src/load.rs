//! The load generator: drives a running daemon with tiny scenarios at
//! several concurrency levels and emits `BENCH_serve.json` in the
//! bench-gate kernel schema (p50 as `serial_ms`, p99 as
//! `parallel_ms`), so serving latency regressions gate CI exactly like
//! compute-kernel regressions do.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use qce::{BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod};
use qce_harness::{DatasetKind, DatasetSpec, Scenario};
use qce_telemetry::json::{parse, JsonValue, ObjWriter};

use crate::http::http_request;
use crate::{ErrorKind, Result, ServeError};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address, e.g. `127.0.0.1:7700`.
    pub addr: String,
    /// Jobs per concurrency level (each a distinct scenario seed, so
    /// levels measure cold latency, not cache replay).
    pub jobs: usize,
    /// Client concurrency levels to sweep.
    pub levels: Vec<usize>,
    /// Base flow seed; each (level, job) derives a unique seed from it.
    pub seed_base: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7700".to_string(),
            jobs: 6,
            levels: vec![1, 4],
            seed_base: 9000,
        }
    }
}

/// Latency/throughput summary of one concurrency level.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Client threads used.
    pub concurrency: usize,
    /// Jobs completed.
    pub jobs: usize,
    /// Median submit-to-terminal latency, ms.
    pub p50_ms: f64,
    /// 90th-percentile latency, ms.
    pub p90_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Wall time of the whole level, ms.
    pub total_ms: f64,
    /// Completed jobs per second of wall time.
    pub throughput_jobs_per_s: f64,
}

/// Everything one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Cold sweep, one entry per requested concurrency level.
    pub levels: Vec<LevelStats>,
    /// Warm resubmit of the first level's scenarios: replays entirely
    /// from stage-cache checkpoints.
    pub warm: LevelStats,
    /// `store.hit` delta across the warm pass.
    pub warm_store_hits: u64,
    /// `store.miss` delta across the warm pass.
    pub warm_store_misses: u64,
    /// `store.write` delta across the warm pass (0 = zero recompute).
    pub warm_store_writes: u64,
    /// `hit / (hit + miss)` during the warm pass.
    pub dedup_hit_rate: f64,
}

/// The scenario for `(level, index)`: a one-epoch tiny flow with 4-bit
/// target-correlated quantization, seeded uniquely so cold levels never
/// share cache entries. `level == usize::MAX` marks the warm pass,
/// which reuses the first cold level's seeds.
fn load_scenario(cfg: &LoadConfig, level: usize, index: usize) -> Scenario {
    let first = cfg.levels.first().copied().unwrap_or(1);
    let (tag, seed_level) = if level == usize::MAX {
        ("warm".to_string(), first)
    } else {
        (format!("c{level}"), level)
    };
    let flow = FlowConfig {
        seed: cfg.seed_base + (seed_level as u64) * 1000 + index as u64,
        epochs: 1,
        grouping: Grouping::Uniform(5.0),
        band: BandRule::FirstN,
        quant: Some(QuantConfig::new(QuantMethod::TargetCorrelated, 4)),
        verbose: false,
        ..FlowConfig::tiny()
    };
    Scenario {
        name: format!("load_{tag}_{index}"),
        dataset: DatasetSpec {
            kind: DatasetKind::Cifar,
            size: 8,
            classes: 4,
            count: 96,
            seed: 5,
            rgb: false,
        },
        flow,
        fault: None,
        defenses: Vec::new(),
        tolerance_overrides: Vec::new(),
    }
}

/// Submits one scenario and polls its status until terminal; returns
/// the observed submit-to-terminal latency in ms.
fn run_one(addr: &str, scenario: &Scenario) -> Result<f64> {
    let started = Instant::now();
    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/jobs",
        &[
            ("X-Qce-Tenant", "load"),
            ("Content-Type", "application/json"),
        ],
        Some(&scenario.to_json()),
    )?;
    if status != 200 {
        return Err(ServeError::new(
            ErrorKind::Flow,
            format!("submit returned {status}: {body}"),
        ));
    }
    let id = parse(&body)
        .ok()
        .and_then(|doc| doc.get("id").and_then(JsonValue::as_str).map(String::from))
        .ok_or_else(|| {
            ServeError::new(ErrorKind::Flow, format!("submit body without id: {body}"))
        })?;
    loop {
        let (status, body) = http_request(addr, "GET", &format!("/v1/jobs/{id}"), &[], None)?;
        if status != 200 {
            return Err(ServeError::new(
                ErrorKind::Flow,
                format!("status returned {status}: {body}"),
            ));
        }
        let state = parse(&body)
            .ok()
            .and_then(|doc| {
                doc.get("state")
                    .and_then(JsonValue::as_str)
                    .map(String::from)
            })
            .unwrap_or_default();
        match state.as_str() {
            "done" => return Ok(started.elapsed().as_secs_f64() * 1e3),
            "failed" | "cancelled" => {
                return Err(ServeError::new(
                    ErrorKind::Flow,
                    format!("job {id} ended as {state}"),
                ))
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
}

/// Runs `cfg.jobs` scenarios through the daemon with `concurrency`
/// client threads and summarizes latency.
fn run_level(cfg: &LoadConfig, level_tag: usize, concurrency: usize) -> Result<LevelStats> {
    let work: Mutex<VecDeque<Scenario>> = Mutex::new(
        (0..cfg.jobs)
            .map(|i| load_scenario(cfg, level_tag, i))
            .collect(),
    );
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(cfg.jobs));
    let failures: Mutex<Vec<ServeError>> = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            scope.spawn(|| loop {
                let Some(scenario) = work.lock().expect("work queue").pop_front() else {
                    return;
                };
                match run_one(&cfg.addr, &scenario) {
                    Ok(ms) => latencies.lock().expect("latencies").push(ms),
                    Err(e) => failures.lock().expect("failures").push(e),
                }
            });
        }
    });
    if let Some(err) = failures.into_inner().expect("failures").into_iter().next() {
        return Err(err);
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut latencies = latencies.into_inner().expect("latencies");
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    Ok(LevelStats {
        concurrency,
        jobs: latencies.len(),
        p50_ms: percentile(&latencies, 50.0),
        p90_ms: percentile(&latencies, 90.0),
        p99_ms: percentile(&latencies, 99.0),
        total_ms,
        throughput_jobs_per_s: if total_ms > 0.0 {
            latencies.len() as f64 / (total_ms / 1e3)
        } else {
            0.0
        },
    })
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = (q / 100.0) * (sorted.len() - 1) as f64;
    sorted[pos.round() as usize]
}

/// One `store.*`/`serve.*` counter from the daemon's stats document.
fn stats_counter(addr: &str, name: &str) -> Result<u64> {
    let (status, body) = http_request(addr, "GET", "/v1/stats", &[], None)?;
    if status != 200 {
        return Err(ServeError::new(
            ErrorKind::Flow,
            format!("stats returned {status}"),
        ));
    }
    let doc = parse(&body).map_err(|e| ServeError::new(ErrorKind::Flow, format!("stats: {e}")))?;
    Ok(doc
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0) as u64)
}

/// Runs the full load sweep against an already-listening daemon: every
/// cold concurrency level, then a warm resubmit of the first level's
/// scenarios measuring cache-dedup replay.
///
/// # Errors
///
/// Any submit/poll failure, or a job ending `failed`/`cancelled`.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport> {
    let mut levels = Vec::with_capacity(cfg.levels.len());
    for &concurrency in &cfg.levels {
        levels.push(run_level(cfg, concurrency, concurrency)?);
    }

    let hits_before = stats_counter(&cfg.addr, "store.hit")?;
    let misses_before = stats_counter(&cfg.addr, "store.miss")?;
    let writes_before = stats_counter(&cfg.addr, "store.write")?;
    let warm_concurrency = cfg.levels.last().copied().unwrap_or(1);
    let warm = run_level(cfg, usize::MAX, warm_concurrency)?;
    let warm_store_hits = stats_counter(&cfg.addr, "store.hit")?.saturating_sub(hits_before);
    let warm_store_misses = stats_counter(&cfg.addr, "store.miss")?.saturating_sub(misses_before);
    let warm_store_writes = stats_counter(&cfg.addr, "store.write")?.saturating_sub(writes_before);
    let denom = warm_store_hits + warm_store_misses;
    Ok(LoadReport {
        levels,
        warm,
        warm_store_hits,
        warm_store_misses,
        warm_store_writes,
        dedup_hit_rate: if denom > 0 {
            warm_store_hits as f64 / denom as f64
        } else {
            0.0
        },
    })
}

fn level_json(stats: &LevelStats) -> String {
    let mut doc = ObjWriter::new();
    doc.uint("concurrency", stats.concurrency as u64)
        .uint("jobs", stats.jobs as u64)
        .num("p50_ms", stats.p50_ms)
        .num("p90_ms", stats.p90_ms)
        .num("p99_ms", stats.p99_ms)
        .num("total_ms", stats.total_ms)
        .num("throughput_jobs_per_s", stats.throughput_jobs_per_s);
    doc.finish()
}

fn kernel_json(name: &str, stats: &LevelStats) -> String {
    let mut doc = ObjWriter::new();
    doc.str("name", name)
        .num("serial_ms", stats.p50_ms)
        .num("parallel_ms", stats.p99_ms)
        .bool("bitwise_identical", true);
    doc.finish()
}

impl LoadReport {
    /// Renders `BENCH_serve.json`: a `kernels` array in the bench-gate
    /// schema (one kernel per cold level plus `serve_warm_resubmit`,
    /// with p50 as `serial_ms` and p99 as `parallel_ms`), plus
    /// ungated top-level detail blocks.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut kernels: Vec<String> = self
            .levels
            .iter()
            .map(|l| kernel_json(&format!("serve_flow_c{}", l.concurrency), l))
            .collect();
        kernels.push(kernel_json("serve_warm_resubmit", &self.warm));
        let levels: Vec<String> = self.levels.iter().map(level_json).collect();
        let mut warm = ObjWriter::new();
        warm.raw("latency", &level_json(&self.warm))
            .uint("store_hit_delta", self.warm_store_hits)
            .uint("store_miss_delta", self.warm_store_misses)
            .uint("store_write_delta", self.warm_store_writes)
            .num("dedup_hit_rate", self.dedup_hit_rate);
        let mut root = ObjWriter::new();
        root.str("bench", "serve")
            .raw("kernels", &format!("[{}]", kernels.join(",")))
            .raw("levels", &format!("[{}]", levels.join(",")))
            .raw("warm", &warm.finish());
        root.finish()
    }
}
