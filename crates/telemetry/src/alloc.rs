//! Byte accounting: an instrumented global allocator behind
//! `QCE_ALLOC=track`, plus a peak-RSS probe.
//!
//! The workspace registers [`TrackingAllocator`] as the global
//! allocator. When `QCE_ALLOC` is unset the instrumentation reduces to
//! one relaxed atomic load and a predictable branch per call before
//! forwarding to the system allocator — effectively zero overhead and
//! no contention. With `QCE_ALLOC=track`, every allocation and free
//! updates lock-free counters (total bytes allocated/freed, live bytes,
//! peak live bytes, allocation count) that flow stages sample to report
//! per-stage allocation deltas alongside wall time.
//!
//! The enable decision is made once, at the first allocation, via an
//! atomic state machine: reading the environment variable itself
//! allocates, so the probing thread parks the state at `PROBING` first
//! and any allocation made *during* the probe observes a non-`UNINIT`,
//! non-`ON` state and is simply forwarded untracked. That keeps the
//! hook re-entrancy-free without a lock.
//!
//! This is the one module in the crate allowed to contain `unsafe`
//! (implementing [`GlobalAlloc`] requires it); every unsafe block is a
//! direct forward to [`System`].

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;
const STATE_PROBING: u8 = 3;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Point-in-time copy of the byte-accounting counters.
///
/// All fields are zero until tracking is enabled (`QCE_ALLOC=track` or
/// [`force_tracking`]); counters only ever grow while tracking is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Total bytes handed out since tracking began.
    pub allocated_bytes: u64,
    /// Total bytes returned since tracking began.
    pub freed_bytes: u64,
    /// Bytes currently live (allocated − freed, saturating: frees of
    /// blocks allocated before tracking began do not underflow).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
    /// Number of allocation calls (alloc + realloc growth).
    pub allocations: u64,
}

/// The workspace's global allocator: [`System`] plus optional byte
/// accounting (see the module docs for the fast-path guarantee).
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAllocator;

#[global_allocator]
static GLOBAL_ALLOC: TrackingAllocator = TrackingAllocator;

#[inline]
fn tracking_now() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_UNINIT => init_state(),
        _ => false,
    }
}

#[cold]
fn init_state() -> bool {
    if STATE
        .compare_exchange(
            STATE_UNINIT,
            STATE_PROBING,
            Ordering::AcqRel,
            Ordering::Relaxed,
        )
        .is_err()
    {
        // Another thread owns the probe (or already decided); treat the
        // current state as the answer without waiting.
        return STATE.load(Ordering::Relaxed) == STATE_ON;
    }
    // env lookups allocate; those allocations see PROBING and forward.
    let on = std::env::var_os("QCE_ALLOC").is_some_and(|v| {
        let v = v.to_string_lossy().trim().to_ascii_lowercase();
        matches!(v.as_str(), "track" | "1" | "on")
    });
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Release);
    on
}

#[inline]
fn on_alloc(size: usize) {
    let n = size as u64;
    ALLOCATED.fetch_add(n, Ordering::Relaxed);
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn on_free(size: usize) {
    let n = size as u64;
    FREED.fetch_add(n, Ordering::Relaxed);
    let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
        Some(live.saturating_sub(n))
    });
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() && tracking_now() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() && tracking_now() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if tracking_now() {
            on_free(layout.size());
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() && tracking_now() {
            on_free(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Whether byte accounting is currently active (`QCE_ALLOC=track`, or
/// forced on via [`force_tracking`]).
#[must_use]
pub fn tracking_enabled() -> bool {
    tracking_now()
}

/// Forces tracking on or off, overriding the environment decision.
/// Intended for tests; flipping mid-process is safe (live-byte
/// accounting saturates instead of underflowing on unmatched frees).
pub fn force_tracking(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Release);
}

/// Snapshot of the allocation counters.
#[must_use]
pub fn stats() -> AllocStats {
    AllocStats {
        allocated_bytes: ALLOCATED.load(Ordering::Relaxed),
        freed_bytes: FREED.load(Ordering::Relaxed),
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
    }
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). `None` off Linux or when the probe fails.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers off- and on- behaviour sequentially: tests run
    /// in one process and `force_tracking` is global, so splitting this
    /// into separate #[test]s would race on the shared state.
    #[test]
    fn tracking_counts_only_when_enabled() {
        if std::env::var_os("QCE_ALLOC").is_none() {
            force_tracking(false);
            let before = stats();
            let v: Vec<u64> = (0..4096).collect();
            assert_eq!(v.len(), 4096);
            drop(v);
            let after = stats();
            assert_eq!(before, after, "counters moved while tracking was disabled");
        }

        force_tracking(true);
        let before = stats();
        let v: Vec<u64> = (0..4096).collect();
        std::hint::black_box(&v);
        let mid = stats();
        assert!(
            mid.allocated_bytes >= before.allocated_bytes + 8 * 4096,
            "allocation not observed: {before:?} -> {mid:?}"
        );
        assert!(mid.allocations > before.allocations);
        assert!(mid.peak_bytes >= mid.live_bytes.saturating_sub(8 * 4096));
        drop(v);
        let after = stats();
        assert!(after.freed_bytes >= mid.freed_bytes + 8 * 4096);
        assert!(after.peak_bytes >= mid.peak_bytes);

        // Restore the environment-driven decision for other tests.
        force_tracking(std::env::var_os("QCE_ALLOC").is_some());
    }

    #[test]
    fn peak_rss_probe_parses_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM present on Linux");
            assert!(rss > 0);
        }
    }
}
