//! Hierarchical wall-time spans with thread attribution.
//!
//! A [`Span`] is an RAII guard: entering emits a `span_start` event,
//! dropping emits `span_end` with the wall duration. Parent/child links
//! come from a per-thread span stack, so nesting follows lexical scope
//! on each thread. When no trace sink is attached and the stderr sink is
//! below debug, `Span::enter` is inert (no id, no clock read, no event)
//! — instrumented hot paths cost two branch checks.

use std::cell::RefCell;
use std::time::Instant;

use crate::json::{write_escaped, write_num};
use crate::sink::{collect_enabled, global, Level};

/// One field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

macro_rules! impl_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue { FieldValue::$variant(v as $conv) }
        })*
    };
}

impl_from!(
    i32 => Int as i64,
    i64 => Int as i64,
    u32 => UInt as u64,
    u64 => UInt as u64,
    usize => UInt as u64,
    f32 => Float as f64,
    f64 => Float as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An active span; dropping it closes the span.
///
/// Created via the [`span!`](crate::span!) macro.
#[derive(Debug)]
pub struct Span {
    id: u64,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Enters a span named `name` with the given fields. Inert (and
    /// nearly free) unless [`collect_enabled`] holds.
    #[must_use]
    pub fn enter(name: &'static str, fields: &[(&str, FieldValue)]) -> Span {
        if !collect_enabled() {
            return Span {
                id: 0,
                name,
                start: None,
            };
        }
        let g = global();
        let id = g.next_span_id();
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        g.emit_event(|o| {
            o.str("ev", "span_start").uint("id", id);
            if let Some(p) = parent {
                o.uint("parent", p);
            }
            o.str("name", name);
            o.str("thread", &thread_label());
            if !fields.is_empty() {
                let mut rendered = String::from("{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        rendered.push(',');
                    }
                    write_escaped(&mut rendered, k);
                    rendered.push(':');
                    match v {
                        FieldValue::Int(x) => rendered.push_str(&x.to_string()),
                        FieldValue::UInt(x) => rendered.push_str(&x.to_string()),
                        FieldValue::Float(x) => write_num(&mut rendered, *x),
                        FieldValue::Str(x) => write_escaped(&mut rendered, x),
                        FieldValue::Bool(x) => {
                            rendered.push_str(if *x { "true" } else { "false" });
                        }
                    }
                }
                rendered.push('}');
                o.raw("fields", &rendered);
            }
        });
        Span {
            id,
            name,
            start: Some(Instant::now()),
        }
    }

    /// Wall time since the span was entered, in milliseconds (0 when the
    /// span is inert).
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.map_or(0.0, |s| s.elapsed().as_secs_f64() * 1e3)
    }

    /// Closes the span now and returns its wall time in milliseconds.
    #[must_use]
    pub fn close(self) -> f64 {
        let ms = self.elapsed_ms();
        drop(self);
        ms
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        // Tolerate out-of-order drops (e.g. a guard moved across scopes):
        // remove this id wherever it sits instead of popping blindly.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let g = global();
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        g.emit_event(|o| {
            o.str("ev", "span_end")
                .uint("id", self.id)
                .str("name", self.name)
                .uint("dur_us", dur_us);
        });
        if g.level() == Level::Debug {
            eprintln!("[span] {} {:.3} ms", self.name, dur_us as f64 / 1e3);
        }
    }
}

fn thread_label() -> String {
    let cur = std::thread::current();
    match cur.name() {
        Some(n) => n.to_string(),
        None => format!("{:?}", cur.id()),
    }
}

/// Enters a hierarchical span: `span!("train.epoch", epoch = e)`.
///
/// Returns a [`Span`] guard; bind it (`let _span = span!(...)`) so the
/// span covers the scope. Fields accept integers, floats, `&str`,
/// `String` and `bool`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Span::enter(
            $name,
            &[$((stringify!($key), $crate::FieldValue::from($value))),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{add_sink, MemorySink};

    #[test]
    fn spans_nest_and_report_parents() {
        let sink = MemorySink::shared();
        add_sink(sink.clone());
        sink.clear();
        {
            let _outer = span!("test.outer", kind = "unit");
            let _inner = span!("test.inner", idx = 3usize, frac = 0.5f32, on = true);
        }
        let lines = sink.lines();
        let events: Vec<crate::json::JsonValue> = lines
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .collect();
        let starts: Vec<&crate::json::JsonValue> = events
            .iter()
            .filter(|e| e.get("ev").and_then(|v| v.as_str()) == Some("span_start"))
            .collect();
        let outer = starts
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("test.outer"))
            .expect("outer start");
        let inner = starts
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("test.inner"))
            .expect("inner start");
        assert_eq!(
            inner.get("parent").unwrap().as_u64(),
            outer.get("id").unwrap().as_u64()
        );
        assert_eq!(
            inner.get("fields").unwrap().get("idx").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            inner.get("fields").unwrap().get("frac").unwrap().as_f64(),
            Some(0.5)
        );
        // Restrict to this test's spans: the sink is global, so spans
        // from concurrently running tests can interleave.
        let ends: Vec<&crate::json::JsonValue> = events
            .iter()
            .filter(|e| {
                e.get("ev").and_then(|v| v.as_str()) == Some("span_end")
                    && matches!(
                        e.get("name").and_then(|v| v.as_str()),
                        Some("test.inner" | "test.outer")
                    )
            })
            .collect();
        assert_eq!(ends.len(), 2, "both spans closed");
        // Inner closes before outer (RAII order).
        assert_eq!(ends[0].get("name").unwrap().as_str(), Some("test.inner"));
    }

    #[test]
    fn close_returns_wall_time() {
        let sink = MemorySink::shared();
        add_sink(sink.clone());
        let sp = span!("test.close");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let ms = sp.close();
        assert!(ms >= 1.0, "elapsed {ms} ms");
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3usize), FieldValue::UInt(3));
        assert_eq!(FieldValue::from(-2i64), FieldValue::Int(-2));
        assert_eq!(FieldValue::from(0.5f64), FieldValue::Float(0.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".to_string()));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
    }
}
