//! Global telemetry state: the `QCE_LOG` level, the `QCE_TRACE` JSONL
//! sink, programmatic sinks for tests, and the event/log entry points.
//!
//! Every JSONL event is stamped under one process-wide ordering lock
//! with a strictly ascending `seq` and a monotonic `t_us` (microseconds
//! since telemetry initialisation), so a trace file is totally ordered
//! even when several threads emit concurrently — the property the
//! `qce-obs` analyzers and validator build on.

use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Verbosity of the human-readable stderr progress sink.
///
/// Controlled by `QCE_LOG=off|progress|debug`; the default is
/// [`Level::Progress`], which preserves the workspace's historical
/// output (benches narrate, library internals stay quiet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is printed; a run is genuinely quiet.
    Off = 0,
    /// Experiment narration (benches, verbose flows).
    Progress = 1,
    /// Everything, including per-epoch internals and span closures.
    Debug = 2,
}

impl Level {
    fn from_env(v: &str) -> Option<Level> {
        match v.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "progress" | "1" => Some(Level::Progress),
            "debug" | "2" => Some(Level::Debug),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Progress => "progress",
            Level::Debug => "debug",
        }
    }
}

/// A machine-readable event sink; receives fully rendered JSONL lines.
pub trait EventSink: Send + Sync {
    /// Consumes one rendered JSON line (no trailing newline).
    fn emit_line(&self, line: &str);
    /// Flushes any buffering. Default: no-op.
    fn flush(&self) {}
}

/// An in-memory sink for tests and golden traces.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// Creates an empty shared sink.
    #[must_use]
    pub fn shared() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// A copy of every line captured so far.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink").clone()
    }

    /// Drops all captured lines.
    pub fn clear(&self) {
        self.lines.lock().expect("memory sink").clear();
    }
}

impl EventSink for MemorySink {
    fn emit_line(&self, line: &str) {
        self.lines
            .lock()
            .expect("memory sink")
            .push(line.to_string());
    }
}

/// The `QCE_TRACE` file sink. Each event reaches the file as exactly
/// one `write_all` of the whole line (never a `write_fmt` that could
/// split a line across syscalls), so the on-disk prefix is line-aligned
/// at every instant: a run killed hard (`SIGKILL`, `process::exit`,
/// abort-on-panic) leaves an analyzable prefix the `obs check
/// --partial` validator accepts. Event rates are low enough (PR 3
/// measured <2% total tracing overhead with per-line flushing) that
/// eager write-out is the right durability trade.
///
/// The `pending` staging buffer exists so `flush()`/`Drop` have one
/// write-out path shared with any future batching; the panic hook and
/// [`FlushGuard`] drive it for sinks that do buffer.
struct FileSink {
    inner: Mutex<FileBuf>,
}

struct FileBuf {
    file: File,
    pending: String,
}

impl FileBuf {
    fn write_out(&mut self) {
        if !self.pending.is_empty() {
            let _ = self.file.write_all(self.pending.as_bytes());
            self.pending.clear();
        }
        let _ = self.file.flush();
    }
}

impl EventSink for FileSink {
    fn emit_line(&self, line: &str) {
        let mut b = self.inner.lock().expect("trace file");
        b.pending.push_str(line);
        b.pending.push('\n');
        b.write_out();
    }

    fn flush(&self) {
        self.inner.lock().expect("trace file").write_out();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        if let Ok(mut b) = self.inner.lock() {
            b.write_out();
        }
    }
}

/// RAII guard that flushes every attached sink when dropped.
///
/// Instrumented flows hold one so that early `?` returns and unwinding
/// panics both push buffered trace events to disk before the stack
/// frame disappears — aborted runs leave an analyzable prefix.
#[derive(Debug, Default)]
#[non_exhaustive]
pub struct FlushGuard {}

impl FlushGuard {
    /// Creates a guard; dropping it flushes all sinks.
    #[must_use]
    pub fn new() -> FlushGuard {
        FlushGuard {}
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        flush();
    }
}

pub(crate) struct Global {
    level: AtomicU8,
    sinks: RwLock<Vec<Arc<dyn EventSink>>>,
    /// Where `QCE_TRACE` pointed (manifests are written next to it).
    trace_path: Option<PathBuf>,
    start: Instant,
    span_ids: AtomicU64,
    /// Strictly ascending stamp shared by every emitted event.
    seq: AtomicU64,
    /// Serialises (stamp, render, emit) so `seq` and `t_us` ascend in
    /// file order even under concurrent emitters.
    order: Mutex<()>,
}

impl Global {
    pub(crate) fn level(&self) -> Level {
        match self.level.load(Ordering::Relaxed) {
            0 => Level::Off,
            1 => Level::Progress,
            _ => Level::Debug,
        }
    }

    pub(crate) fn has_sinks(&self) -> bool {
        !self.sinks.read().expect("sinks").is_empty()
    }

    /// Builds one event under the ordering lock and emits it to every
    /// sink. The closure writes the event-specific fields; `seq` and
    /// `t_us` are appended by this method so every event carries them
    /// and they ascend in emission order. No-op without sinks.
    pub(crate) fn emit_event(&self, build: impl FnOnce(&mut crate::json::ObjWriter)) {
        let sinks = self.sinks.read().expect("sinks");
        if sinks.is_empty() {
            return;
        }
        let _order = self.order.lock().expect("event order");
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut o = crate::json::ObjWriter::new();
        build(&mut o);
        o.uint("seq", seq).uint("t_us", self.micros_since_start());
        let line = o.finish();
        for sink in sinks.iter() {
            sink.emit_line(&line);
        }
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.span_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn micros_since_start(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Installs a panic hook (once) that flushes every sink, so a panicking
/// run pushes its buffered trace tail to disk before the default hook
/// prints and the process unwinds or aborts.
fn install_panic_flush() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flush();
            prev(info);
        }));
    });
}

pub(crate) fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    let g = GLOBAL.get_or_init(|| {
        let level = std::env::var("QCE_LOG")
            .ok()
            .and_then(|v| Level::from_env(&v))
            .unwrap_or(Level::Progress);
        let mut sinks: Vec<Arc<dyn EventSink>> = Vec::new();
        let mut trace_path = None;
        if let Ok(path) = std::env::var("QCE_TRACE") {
            let path = PathBuf::from(path);
            match File::create(&path) {
                Ok(f) => {
                    sinks.push(Arc::new(FileSink {
                        inner: Mutex::new(FileBuf {
                            file: f,
                            pending: String::new(),
                        }),
                    }));
                    trace_path = Some(path);
                }
                Err(e) => {
                    eprintln!(
                        "qce-telemetry: cannot open QCE_TRACE={}: {e}",
                        path.display()
                    );
                }
            }
        }
        let g = Global {
            level: AtomicU8::new(level as u8),
            sinks: RwLock::new(sinks),
            trace_path,
            start: Instant::now(),
            span_ids: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            order: Mutex::new(()),
        };
        g.emit_event(|o| {
            o.str("ev", "init")
                .str("level", level.as_str())
                .uint("pid", std::process::id().into());
        });
        g
    });
    // Outside the init closure: a panic raised *during* init must not
    // re-enter the OnceLock through the hook's flush().
    if g.trace_path.is_some() {
        install_panic_flush();
    }
    g
}

/// Current progress-sink verbosity.
#[must_use]
pub fn level() -> Level {
    global().level()
}

/// Overrides the progress-sink verbosity (tests; normal runs use
/// `QCE_LOG`).
pub fn set_level(level: Level) {
    global().level.store(level as u8, Ordering::Relaxed);
}

/// Registers an additional machine-readable sink (tests capture traces
/// through a [`MemorySink`] here; `QCE_TRACE` installs a file sink
/// automatically).
pub fn add_sink(sink: Arc<dyn EventSink>) {
    global().sinks.write().expect("sinks").push(sink);
}

/// Whether *costly* instrumentation should run: a trace sink is attached
/// or the stderr sink is at debug. Cheap counters are recorded
/// unconditionally; anything that needs a clock read or an extra scan
/// over data gates on this.
#[must_use]
pub fn collect_enabled() -> bool {
    let g = global();
    g.has_sinks() || g.level() == Level::Debug
}

/// The path `QCE_TRACE` pointed at, if any.
#[must_use]
pub fn trace_path() -> Option<PathBuf> {
    global().trace_path.clone()
}

/// Flushes every attached sink.
pub fn flush() {
    for sink in global().sinks.read().expect("sinks").iter() {
        sink.flush();
    }
}

/// Routes one human-readable line: printed to stderr when `level` is
/// within the current verbosity, and mirrored to the JSONL sinks as a
/// `log` event when any are attached.
pub fn log_line(level: Level, msg: &str) {
    let g = global();
    if level != Level::Off && level <= g.level() {
        eprintln!("{msg}");
    }
    g.emit_event(|o| {
        o.str("ev", "log")
            .str("level", level.as_str())
            .str("msg", msg);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::from_env("off"), Some(Level::Off));
        assert_eq!(Level::from_env(" DEBUG "), Some(Level::Debug));
        assert_eq!(Level::from_env("progress"), Some(Level::Progress));
        assert_eq!(Level::from_env("1"), Some(Level::Progress));
        assert_eq!(Level::from_env("nope"), None);
        assert!(Level::Off < Level::Progress && Level::Progress < Level::Debug);
    }

    #[test]
    fn memory_sink_captures_log_events() {
        let sink = MemorySink::shared();
        add_sink(sink.clone());
        log_line(Level::Off, "machine-only line");
        let lines = sink.lines();
        let last = lines.last().expect("captured");
        let v = crate::json::parse(last).unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("log"));
        assert_eq!(v.get("msg").unwrap().as_str(), Some("machine-only line"));
        assert!(v.get("t_us").unwrap().as_u64().is_some());
        assert!(v.get("seq").unwrap().as_u64().is_some());
        sink.clear();
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn span_ids_ascend() {
        let a = global().next_span_id();
        let b = global().next_span_id();
        assert!(b > a);
    }

    #[test]
    fn events_are_seq_stamped_in_emission_order() {
        let sink = MemorySink::shared();
        add_sink(sink.clone());
        sink.clear();
        // Hammer from several threads; the ordering lock must keep seq
        // strictly ascending and t_us non-decreasing in captured order.
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for i in 0..50 {
                        log_line(Level::Off, &format!("seq-test {t}:{i}"));
                    }
                });
            }
        });
        let mut prev_seq = None;
        let mut prev_t = 0u64;
        let mut seen = 0;
        for line in sink.lines() {
            let v = crate::json::parse(&line).unwrap();
            if v.get("msg")
                .and_then(|m| m.as_str())
                .is_none_or(|m| !m.starts_with("seq-test"))
            {
                continue;
            }
            seen += 1;
            let seq = v.get("seq").unwrap().as_u64().unwrap();
            let t = v.get("t_us").unwrap().as_u64().unwrap();
            if let Some(p) = prev_seq {
                assert!(seq > p, "seq went {p} -> {seq}");
            }
            assert!(t >= prev_t, "t_us went {prev_t} -> {t}");
            prev_seq = Some(seq);
            prev_t = t;
        }
        assert_eq!(seen, 200);
    }

    #[test]
    fn flush_guard_flushes_buffered_sinks_on_drop() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Default)]
        struct BufferedSink {
            flushes: AtomicUsize,
        }
        impl EventSink for BufferedSink {
            fn emit_line(&self, _line: &str) {}
            fn flush(&self) {
                self.flushes.fetch_add(1, Ordering::Relaxed);
            }
        }

        let sink = Arc::new(BufferedSink::default());
        add_sink(sink.clone());
        let before = sink.flushes.load(Ordering::Relaxed);
        {
            let _guard = FlushGuard::new();
            log_line(Level::Off, "inside guard");
        }
        assert!(sink.flushes.load(Ordering::Relaxed) > before);
    }
}
