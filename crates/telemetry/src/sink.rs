//! Global telemetry state: the `QCE_LOG` level, the `QCE_TRACE` JSONL
//! sink, programmatic sinks for tests, and the event/log entry points.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Verbosity of the human-readable stderr progress sink.
///
/// Controlled by `QCE_LOG=off|progress|debug`; the default is
/// [`Level::Progress`], which preserves the workspace's historical
/// output (benches narrate, library internals stay quiet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is printed; a run is genuinely quiet.
    Off = 0,
    /// Experiment narration (benches, verbose flows).
    Progress = 1,
    /// Everything, including per-epoch internals and span closures.
    Debug = 2,
}

impl Level {
    fn from_env(v: &str) -> Option<Level> {
        match v.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "progress" | "1" => Some(Level::Progress),
            "debug" | "2" => Some(Level::Debug),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Progress => "progress",
            Level::Debug => "debug",
        }
    }
}

/// A machine-readable event sink; receives fully rendered JSONL lines.
pub trait EventSink: Send + Sync {
    /// Consumes one rendered JSON line (no trailing newline).
    fn emit_line(&self, line: &str);
    /// Flushes any buffering. Default: no-op.
    fn flush(&self) {}
}

/// An in-memory sink for tests and golden traces.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// Creates an empty shared sink.
    #[must_use]
    pub fn shared() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// A copy of every line captured so far.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink").clone()
    }

    /// Drops all captured lines.
    pub fn clear(&self) {
        self.lines.lock().expect("memory sink").clear();
    }
}

impl EventSink for MemorySink {
    fn emit_line(&self, line: &str) {
        self.lines
            .lock()
            .expect("memory sink")
            .push(line.to_string());
    }
}

struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl EventSink for FileSink {
    fn emit_line(&self, line: &str) {
        let mut w = self.writer.lock().expect("trace file");
        // Event rates are low (spans, epochs, manifests — not per-batch),
        // so flushing per line keeps partial traces useful after a crash.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("trace file").flush();
    }
}

pub(crate) struct Global {
    level: AtomicU8,
    sinks: RwLock<Vec<Arc<dyn EventSink>>>,
    /// Where `QCE_TRACE` pointed (manifests are written next to it).
    trace_path: Option<PathBuf>,
    start: Instant,
    span_ids: AtomicU64,
}

impl Global {
    pub(crate) fn level(&self) -> Level {
        match self.level.load(Ordering::Relaxed) {
            0 => Level::Off,
            1 => Level::Progress,
            _ => Level::Debug,
        }
    }

    pub(crate) fn has_sinks(&self) -> bool {
        !self.sinks.read().expect("sinks").is_empty()
    }

    pub(crate) fn emit(&self, line: &str) {
        for sink in self.sinks.read().expect("sinks").iter() {
            sink.emit_line(line);
        }
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.span_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn micros_since_start(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

pub(crate) fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let level = std::env::var("QCE_LOG")
            .ok()
            .and_then(|v| Level::from_env(&v))
            .unwrap_or(Level::Progress);
        let mut sinks: Vec<Arc<dyn EventSink>> = Vec::new();
        let mut trace_path = None;
        if let Ok(path) = std::env::var("QCE_TRACE") {
            let path = PathBuf::from(path);
            match File::create(&path) {
                Ok(f) => {
                    sinks.push(Arc::new(FileSink {
                        writer: Mutex::new(BufWriter::new(f)),
                    }));
                    trace_path = Some(path);
                }
                Err(e) => {
                    eprintln!(
                        "qce-telemetry: cannot open QCE_TRACE={}: {e}",
                        path.display()
                    );
                }
            }
        }
        let g = Global {
            level: AtomicU8::new(level as u8),
            sinks: RwLock::new(sinks),
            trace_path,
            start: Instant::now(),
            span_ids: AtomicU64::new(0),
        };
        if g.has_sinks() {
            let mut o = crate::json::ObjWriter::new();
            o.str("ev", "init")
                .str("level", level.as_str())
                .uint("pid", std::process::id().into());
            g.emit(&o.finish());
        }
        g
    })
}

/// Current progress-sink verbosity.
#[must_use]
pub fn level() -> Level {
    global().level()
}

/// Overrides the progress-sink verbosity (tests; normal runs use
/// `QCE_LOG`).
pub fn set_level(level: Level) {
    global().level.store(level as u8, Ordering::Relaxed);
}

/// Registers an additional machine-readable sink (tests capture traces
/// through a [`MemorySink`] here; `QCE_TRACE` installs a file sink
/// automatically).
pub fn add_sink(sink: Arc<dyn EventSink>) {
    global().sinks.write().expect("sinks").push(sink);
}

/// Whether *costly* instrumentation should run: a trace sink is attached
/// or the stderr sink is at debug. Cheap counters are recorded
/// unconditionally; anything that needs a clock read or an extra scan
/// over data gates on this.
#[must_use]
pub fn collect_enabled() -> bool {
    let g = global();
    g.has_sinks() || g.level() == Level::Debug
}

/// The path `QCE_TRACE` pointed at, if any.
#[must_use]
pub fn trace_path() -> Option<PathBuf> {
    global().trace_path.clone()
}

/// Flushes every attached sink.
pub fn flush() {
    for sink in global().sinks.read().expect("sinks").iter() {
        sink.flush();
    }
}

/// Routes one human-readable line: printed to stderr when `level` is
/// within the current verbosity, and mirrored to the JSONL sinks as a
/// `log` event when any are attached.
pub fn log_line(level: Level, msg: &str) {
    let g = global();
    if level != Level::Off && level <= g.level() {
        eprintln!("{msg}");
    }
    if g.has_sinks() {
        let mut o = crate::json::ObjWriter::new();
        o.str("ev", "log")
            .str("level", level.as_str())
            .str("msg", msg)
            .uint("t_us", g.micros_since_start());
        g.emit(&o.finish());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::from_env("off"), Some(Level::Off));
        assert_eq!(Level::from_env(" DEBUG "), Some(Level::Debug));
        assert_eq!(Level::from_env("progress"), Some(Level::Progress));
        assert_eq!(Level::from_env("1"), Some(Level::Progress));
        assert_eq!(Level::from_env("nope"), None);
        assert!(Level::Off < Level::Progress && Level::Progress < Level::Debug);
    }

    #[test]
    fn memory_sink_captures_log_events() {
        let sink = MemorySink::shared();
        add_sink(sink.clone());
        log_line(Level::Off, "machine-only line");
        let lines = sink.lines();
        let last = lines.last().expect("captured");
        let v = crate::json::parse(last).unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("log"));
        assert_eq!(v.get("msg").unwrap().as_str(), Some("machine-only line"));
        assert!(v.get("t_us").unwrap().as_u64().is_some());
        sink.clear();
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn span_ids_ascend() {
        let a = global().next_span_id();
        let b = global().next_span_id();
        assert!(b > a);
    }
}
