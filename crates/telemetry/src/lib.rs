//! Zero-dependency structured telemetry for the qce workspace.
//!
//! Three layers, all strictly observational (nothing here ever feeds
//! back into a computation, so the bit-for-bit determinism contract of
//! `qce_tensor::par` is untouched):
//!
//! - **Spans** — hierarchical wall-time scopes with thread attribution:
//!   `let _s = span!("train.epoch", epoch = e);`. Inert unless a sink is
//!   attached or the level is debug.
//! - **Metrics** — a lock-sharded global registry of monotonic
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s. Handles
//!   are cached atomics; recording is one atomic RMW.
//! - **Sinks** — a human-readable stderr progress sink gated by
//!   `QCE_LOG=off|progress|debug` (default `progress`), and a JSONL
//!   event sink enabled by `QCE_TRACE=path.jsonl`. Tests attach a
//!   [`MemorySink`] programmatically. A [`RunManifest`] summarising the
//!   run (config hash, seed, threads, per-stage wall times and metrics)
//!   is emitted at the end of instrumented flows.
//!
//! A fourth layer, [`alloc`], registers an instrumented global
//! allocator: byte accounting behind `QCE_ALLOC=track` with a pure
//! atomic fast path when unset, plus a peak-RSS probe.
//!
//! The crate is std-only by design: it sits below every other workspace
//! crate, and the vendored `serde` is a marker stub, so [`json`] carries
//! a minimal writer/parser of its own.

// `deny` (not `forbid`) so the one unsafe island — the `GlobalAlloc`
// impl in `alloc` — can opt back in with a module-level `allow`,
// mirroring the `qce_tensor::simd` precedent.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod alloc;
pub mod json;
mod manifest;
mod metrics;
mod sink;
mod span;

pub use manifest::{emit_manifest, manifest_path_for, RunManifest, StageStat};
pub use metrics::{
    counter, fnv1a, gauge, histogram, reset, snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use sink::{
    add_sink, collect_enabled, flush, level, log_line, set_level, trace_path, EventSink,
    FlushGuard, Level, MemorySink,
};
pub use span::{FieldValue, Span};

/// Prints a progress-level line: visible unless `QCE_LOG=off`, and
/// mirrored to any attached JSONL sink. `progress!()` emits a blank
/// line (benches use it for paragraph breaks).
#[macro_export]
macro_rules! progress {
    () => {
        $crate::log_line($crate::Level::Progress, "")
    };
    ($($arg:tt)*) => {
        $crate::log_line($crate::Level::Progress, &format!($($arg)*))
    };
}

/// Prints a debug-level line: visible only under `QCE_LOG=debug`, and
/// mirrored to any attached JSONL sink.
#[macro_export]
macro_rules! debug {
    () => {
        $crate::log_line($crate::Level::Debug, "")
    };
    ($($arg:tt)*) => {
        $crate::log_line($crate::Level::Debug, &format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_format_and_reach_sinks() {
        let sink = MemorySink::shared();
        add_sink(sink.clone());
        progress!("progress {}", 1 + 1);
        debug!("debug {:.1}", 0.25);
        progress!();
        let msgs: Vec<String> = sink
            .lines()
            .iter()
            .filter_map(|l| json::parse(l).ok())
            .filter(|v| v.get("ev").and_then(json::JsonValue::as_str) == Some("log"))
            .filter_map(|v| {
                v.get("msg")
                    .and_then(json::JsonValue::as_str)
                    .map(str::to_string)
            })
            .collect();
        assert!(msgs.iter().any(|m| m == "progress 2"));
        assert!(msgs.iter().any(|m| m == "debug 0.2"));
        assert!(msgs.iter().any(String::is_empty));
    }

    #[test]
    fn collect_enabled_once_sink_attached() {
        add_sink(MemorySink::shared());
        assert!(collect_enabled());
    }
}
