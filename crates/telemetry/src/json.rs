//! Minimal JSON emit/parse used by the JSONL trace sink and the run
//! manifest.
//!
//! The workspace's vendored `serde` is a marker-trait stub (see
//! `vendor/README.md`), so the telemetry layer carries its own writer and
//! a small recursive-descent parser. The parser exists for *consumers* of
//! traces — the golden tests and the CI schema-sanity check re-read every
//! emitted line through it — not for configuration.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Numbers are kept as `f64`; every number the telemetry layer emits
/// (span ids, microsecond timestamps, counter values) stays well inside
/// the 2^53 exact-integer range.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved by the `BTreeMap` key
    /// order, which is fine for look-ups.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member access for objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a JSON number: finite values verbatim, non-finite as `null`
/// (JSON has no NaN/Inf; a damaged metric must not damage the trace).
pub fn write_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Incremental `{...}` writer for one JSONL line or manifest fragment.
///
/// Keys are written in call order; the caller is responsible for key
/// uniqueness.
#[derive(Debug)]
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    /// Starts an object.
    pub fn new() -> Self {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Writes a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_escaped(&mut self.buf, v);
        self
    }

    /// Writes a numeric field.
    pub fn num(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        write_num(&mut self.buf, v);
        self
    }

    /// Writes an unsigned-integer field.
    pub fn uint(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Writes a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes a field whose value is already rendered JSON.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the rendered string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjWriter {
    fn default() -> Self {
        ObjWriter::new()
    }
}

/// Parses one complete JSON document (with nothing but whitespace around
/// it).
///
/// # Errors
///
/// Returns a position-annotated message for the first syntax error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates never appear in our own output;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "non-utf8 string content".to_string())?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_orders_fields() {
        let mut o = ObjWriter::new();
        o.str("msg", "a \"b\"\nc\\")
            .num("x", 1.5)
            .uint("id", 42)
            .bool("ok", true)
            .raw("arr", "[1,2]");
        let line = o.finish();
        assert_eq!(
            line,
            r#"{"msg":"a \"b\"\nc\\","x":1.5,"id":42,"ok":true,"arr":[1,2]}"#
        );
        // Round trip.
        let v = parse(&line).unwrap();
        assert_eq!(v.get("msg").unwrap().as_str().unwrap(), "a \"b\"\nc\\");
        assert_eq!(v.get("id").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut o = ObjWriter::new();
        o.num("bad", f64::NAN).num("inf", f64::INFINITY);
        let line = o.finish();
        assert_eq!(line, r#"{"bad":null,"inf":null}"#);
        assert!(parse(&line).is_ok());
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#" {"a":[1,-2.5e1,null],"b":{"c":false},"d":"A"} "#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(-25.0),
                JsonValue::Null
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Bool(false)));
        assert_eq!(v.get("d").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} garbage").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Obj(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(Vec::new()));
    }
}
