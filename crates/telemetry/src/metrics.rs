//! Lock-sharded global metrics registry: monotonic counters, gauges and
//! fixed-bucket histograms.
//!
//! Handle acquisition (`counter("name")`) takes one shard mutex; the
//! handles themselves are `Arc`ed atomics, so recording on a cached
//! handle is a single atomic RMW — cheap enough for per-kernel-call
//! counters in the compute backend. Everything here is strictly
//! observational: nothing ever reads a metric back into a computation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::ObjWriter;

const SHARDS: usize = 8;

/// FNV-1a over `s` — the workspace's deterministic string hash (also used
/// for config hashes in run manifests).
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCore>),
}

struct Registry {
    shards: [Mutex<HashMap<String, Metric>>; SHARDS],
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
    })
}

fn shard_for(name: &str) -> &'static Mutex<HashMap<String, Metric>> {
    &registry().shards[(fnv1a(name) % SHARDS as u64) as usize]
}

/// A monotonic `u64` counter.
///
/// Cloning is cheap (an `Arc` bump); hot call sites should acquire the
/// handle once and cache it.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn incr(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (bits stored in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (CAS loop; gauges are low-frequency).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistCore {
    /// Ascending bucket upper bounds; bucket `i` counts `v <= bounds[i]`,
    /// with one implicit overflow bucket at the end.
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: f64) {
        let c = &self.0;
        let idx = c.bounds.partition_point(|&b| b < v);
        c.counts[idx].fetch_add(1, Ordering::Relaxed);
        c.total.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&c.sum_bits, |s| s + v);
        atomic_f64_update(&c.min_bits, |m| m.min(v));
        atomic_f64_update(&c.max_bits, |m| m.max(v));
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        let count = c.total.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: c.bounds.clone(),
            counts: c.counts.iter().map(|x| x.load(Ordering::Relaxed)).collect(),
            count,
            sum: f64::from_bits(c.sum_bits.load(Ordering::Relaxed)),
            min: (count > 0).then(|| f64::from_bits(c.min_bits.load(Ordering::Relaxed))),
            max: (count > 0).then(|| f64::from_bits(c.max_bits.load(Ordering::Relaxed))),
        }
    }
}

fn atomic_f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// The global counter named `name` (created on first use).
///
/// If the name is already registered as a different metric kind, a
/// detached handle is returned so the caller still works; the registered
/// kind wins in snapshots.
#[must_use]
pub fn counter(name: &str) -> Counter {
    let mut shard = shard_for(name).lock().expect("metrics shard");
    match shard
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
    {
        Metric::Counter(c) => Counter(Arc::clone(c)),
        _ => Counter(Arc::new(AtomicU64::new(0))),
    }
}

/// The global gauge named `name` (created on first use).
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    let mut shard = shard_for(name).lock().expect("metrics shard");
    match shard
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
    {
        Metric::Gauge(g) => Gauge(Arc::clone(g)),
        _ => Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
    }
}

/// The global histogram named `name` with ascending bucket upper
/// `bounds` (plus an implicit overflow bucket). The bounds of the first
/// registration win; later callers share them.
#[must_use]
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    debug_assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "histogram bounds must be strictly ascending"
    );
    let make = || {
        Metric::Histogram(Arc::new(HistCore {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    };
    let mut shard = shard_for(name).lock().expect("metrics shard");
    match shard.entry(name.to_string()).or_insert_with(make) {
        Metric::Histogram(h) => Histogram(Arc::clone(h)),
        _ => match make() {
            Metric::Histogram(h) => Histogram(h),
            _ => unreachable!(),
        },
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`None` when empty).
    pub min: Option<f64>,
    /// Largest observation (`None` when empty).
    pub max: Option<f64>,
}

impl HistogramSnapshot {
    /// Mean observation (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`), or `None` when
    /// the histogram is empty.
    ///
    /// The estimate interpolates linearly inside the bucket that holds
    /// the target rank and is clamped to the observed `[min, max]`, so
    /// degenerate shapes stay exact: a single sample or an all-equal
    /// population returns that value for every `q`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let (min, max) = (self.min?, self.max?);
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if next as f64 >= target {
                // Bucket edges, tightened to the observed range.
                let lo = if i == 0 {
                    min
                } else {
                    self.bounds[i - 1].max(min)
                };
                let hi = if i < self.bounds.len() {
                    self.bounds[i].min(max)
                } else {
                    max
                };
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return Some((lo + frac * (hi - lo)).clamp(min, max));
            }
            cum = next;
        }
        Some(max)
    }

    /// Median estimate (`None` when empty).
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate (`None` when empty).
    #[must_use]
    pub fn p90(&self) -> Option<f64> {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate (`None` when empty).
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.percentile(0.99)
    }
}

/// Point-in-time copy of the whole registry, in deterministic
/// (lexicographic) name order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: std::collections::BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: std::collections::BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Flattens every metric whose name starts with one of `prefixes`
    /// into `(name, value)` pairs: counters as exact floats, gauges
    /// verbatim, histograms as their mean. Deterministic order.
    #[must_use]
    pub fn flatten_with_prefix(&self, prefixes: &[&str]) -> Vec<(String, f64)> {
        let keep = |n: &str| prefixes.iter().any(|p| n.starts_with(p));
        let mut out = Vec::new();
        for (n, v) in &self.counters {
            if keep(n) {
                out.push((n.clone(), *v as f64));
            }
        }
        for (n, v) in &self.gauges {
            if keep(n) {
                out.push((n.clone(), *v));
            }
        }
        for (n, h) in &self.histograms {
            if keep(n) {
                out.push((format!("{n}.mean"), h.mean().unwrap_or(0.0)));
                out.push((format!("{n}.count"), h.count as f64));
            }
        }
        out
    }

    /// Exports every *counter* whose name starts with one of `prefixes`
    /// as exact `(name, value)` pairs in deterministic (lexicographic)
    /// order — the raw material of conformance gating, where counters
    /// (unlike gauges and wall-time histograms) are exact reproducible
    /// event counts.
    #[must_use]
    pub fn counters_with_prefix(&self, prefixes: &[&str]) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| prefixes.iter().any(|p| n.starts_with(p)))
            .map(|(n, v)| (n.clone(), *v))
            .collect()
    }

    /// Renders the snapshot as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = ObjWriter::new();
        for (n, v) in &self.counters {
            counters.uint(n, *v);
        }
        let mut gauges = ObjWriter::new();
        for (n, v) in &self.gauges {
            gauges.num(n, *v);
        }
        let mut hists = ObjWriter::new();
        for (n, h) in &self.histograms {
            let mut o = ObjWriter::new();
            o.uint("count", h.count).num("sum", h.sum);
            if let (Some(mn), Some(mx)) = (h.min, h.max) {
                o.num("min", mn).num("max", mx);
            }
            let buckets: Vec<String> = h
                .bounds
                .iter()
                .map(|b| format!("{b}"))
                .chain(std::iter::once("\"inf\"".to_string()))
                .zip(&h.counts)
                .map(|(le, c)| format!("[{le},{c}]"))
                .collect();
            o.raw("buckets", &format!("[{}]", buckets.join(",")));
            hists.raw(n, &o.finish());
        }
        let mut root = ObjWriter::new();
        root.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish());
        root.finish()
    }
}

/// Snapshots every registered metric.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for shard in &registry().shards {
        let shard = shard.lock().expect("metrics shard");
        for (name, metric) in shard.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters
                        .insert(name.clone(), c.load(Ordering::Relaxed));
                }
                Metric::Gauge(g) => {
                    snap.gauges
                        .insert(name.clone(), f64::from_bits(g.load(Ordering::Relaxed)));
                }
                Metric::Histogram(h) => {
                    snap.histograms
                        .insert(name.clone(), Histogram(Arc::clone(h)).snapshot());
                }
            }
        }
    }
    snap
}

/// Clears the registry. Intended for tests that assert on absolute
/// values; production code never needs it.
pub fn reset() {
    for shard in &registry().shards {
        shard.lock().expect("metrics shard").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_places_edges_inclusively() {
        let h = histogram("test.hist.edges", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        // v <= 1.0 → bucket 0; v <= 2.0 → bucket 1; v <= 4.0 → bucket 2;
        // else overflow.
        assert_eq!(s.counts, vec![2, 2, 2, 1]);
        assert_eq!(s.count, 7);
        assert_eq!(s.min, Some(0.5));
        assert_eq!(s.max, Some(100.0));
        let mean = s.mean().unwrap();
        assert!((mean - 112.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_empty_histogram_is_none() {
        let s = histogram("test.hist.p.empty", &[1.0, 2.0]).snapshot();
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.p50(), None);
        assert_eq!(s.p99(), None);
    }

    #[test]
    fn percentile_single_sample_is_exact_for_all_q() {
        let h = histogram("test.hist.p.single", &[10.0, 100.0, 1000.0]);
        h.record(42.0);
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.percentile(q), Some(42.0), "q={q}");
        }
    }

    #[test]
    fn percentile_all_equal_durations_are_exact() {
        let h = histogram("test.hist.p.equal", &[10.0, 100.0]);
        for _ in 0..50 {
            h.record(7.5);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), Some(7.5));
        assert_eq!(s.p90(), Some(7.5));
        assert_eq!(s.p99(), Some(7.5));
    }

    #[test]
    fn percentile_interpolates_and_orders() {
        let h = histogram("test.hist.p.uniform", &[25.0, 50.0, 75.0, 100.0]);
        for v in 1..=100 {
            h.record(f64::from(v));
        }
        let s = h.snapshot();
        let (p50, p90, p99) = (s.p50().unwrap(), s.p90().unwrap(), s.p99().unwrap());
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!((p50 - 50.0).abs() <= 5.0, "p50={p50}");
        assert!((p90 - 90.0).abs() <= 5.0, "p90={p90}");
        assert!((90.0..=100.0).contains(&p99), "p99={p99}");
        // q outside [0,1] clamps rather than panics.
        assert_eq!(s.percentile(-1.0), Some(s.min.unwrap()));
        assert_eq!(s.percentile(2.0), Some(100.0));
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = histogram("test.hist.empty", &[1.0]);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn counter_and_gauge_merge_across_threads() {
        // The per-thread increments must merge exactly — this is the
        // contract the QCE_THREADS={1,4} CI matrix exercises end to end.
        let c = counter("test.merge.counter");
        let g = gauge("test.merge.gauge");
        let before = c.get();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let c = counter("test.merge.counter");
                    let g = gauge("test.merge.gauge");
                    for _ in 0..10_000 {
                        c.incr(1);
                    }
                    g.add(0.5);
                });
            }
        });
        assert_eq!(c.get() - before, 40_000);
        assert!((g.get() - 2.0).abs() < 1e-12);
        g.set(7.25);
        assert_eq!(g.get(), 7.25);
    }

    #[test]
    fn concurrent_histogram_totals_are_exact() {
        let h = histogram("test.hist.concurrent", &[0.0, 10.0]);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(f64::from(t * 1000 + i) / 400.0);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.counts.iter().sum::<u64>(), 4000);
    }

    #[test]
    fn snapshot_flattens_with_prefix() {
        counter("test.flat.a").incr(3);
        gauge("test.flat.b").set(1.5);
        histogram("test.flat.h", &[1.0]).record(2.0);
        counter("other.c").incr(1);
        let snap = snapshot();
        let flat = snap.flatten_with_prefix(&["test.flat."]);
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"test.flat.a"));
        assert!(names.contains(&"test.flat.b"));
        assert!(names.contains(&"test.flat.h.mean"));
        assert!(!names.iter().any(|n| n.starts_with("other.")));
    }

    #[test]
    fn counter_export_is_exact_and_filtered() {
        counter("test.export.a").incr(3);
        counter("test.export.b").incr((1 << 60) + 1); // beyond f64 exactness
        gauge("test.export.g").set(1.0); // gauges never exported
        let exported = snapshot().counters_with_prefix(&["test.export."]);
        assert_eq!(
            exported,
            vec![
                ("test.export.a".to_string(), 3),
                ("test.export.b".to_string(), (1 << 60) + 1),
            ]
        );
        assert!(snapshot().counters_with_prefix(&["no.such."]).is_empty());
    }

    #[test]
    fn snapshot_json_is_parseable() {
        counter("test.json.count").incr(2);
        gauge("test.json.g").set(-0.25);
        histogram("test.json.h", &[1.0, 2.0]).record(1.5);
        let json = snapshot().to_json();
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("test.json.count")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            v.get("gauges")
                .unwrap()
                .get("test.json.g")
                .unwrap()
                .as_f64(),
            Some(-0.25)
        );
        assert!(v.get("histograms").unwrap().get("test.json.h").is_some());
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        counter("test.kind.x").incr(1);
        let g = gauge("test.kind.x"); // detached, must not panic
        g.set(3.0);
        assert_eq!(snapshot().counters.get("test.kind.x"), Some(&1));
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), fnv1a("a"));
        assert_ne!(fnv1a("a"), fnv1a("b"));
    }
}
