//! Run manifests: one JSON document per run that records what was run
//! (config hash, seed, thread count) and how it went (per-stage wall
//! times, per-stage key metrics, the final metrics snapshot).
//!
//! The manifest is strictly observational — it is derived from the run
//! and never read back into one.

use std::path::{Path, PathBuf};

use crate::json::ObjWriter;
use crate::metrics::MetricsSnapshot;
use crate::sink::{global, trace_path};

/// Wall time and key metrics for one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStat {
    /// Stage name (e.g. `flow.train`).
    pub name: String,
    /// Wall time of the stage in milliseconds.
    pub wall_ms: f64,
    /// Flattened `(metric, value)` pairs captured at the end of the
    /// stage, in deterministic order.
    pub metrics: Vec<(String, f64)>,
}

impl StageStat {
    fn to_json(&self) -> String {
        let mut m = ObjWriter::new();
        for (k, v) in &self.metrics {
            m.num(k, *v);
        }
        let mut o = ObjWriter::new();
        o.str("name", &self.name)
            .num("wall_ms", self.wall_ms)
            .raw("metrics", &m.finish());
        o.finish()
    }
}

/// A complete run manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// FNV-1a hash of the run configuration's debug rendering.
    pub config_hash: u64,
    /// RNG seed the run used.
    pub seed: u64,
    /// Worker-thread count the compute pool ran with.
    pub threads: usize,
    /// Per-stage wall times and key metrics, in execution order.
    pub stages: Vec<StageStat>,
    /// Final snapshot of the global metrics registry.
    pub metrics: MetricsSnapshot,
}

impl RunManifest {
    /// Writes the manifest's fields into an in-progress JSON object.
    fn write_fields(&self, o: &mut ObjWriter) {
        let stages: Vec<String> = self.stages.iter().map(StageStat::to_json).collect();
        o.str("ev", "manifest")
            .uint("config_hash", self.config_hash)
            .uint("seed", self.seed)
            .uint("threads", self.threads as u64)
            .raw("stages", &format!("[{}]", stages.join(",")))
            .raw("metrics", &self.metrics.to_json());
    }

    /// Renders the manifest as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        self.write_fields(&mut o);
        o.finish()
    }

    /// Total wall time across all stages in milliseconds.
    #[must_use]
    pub fn total_wall_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_ms).sum()
    }
}

/// The manifest file path that pairs with a trace path:
/// `run.jsonl` → `run.manifest.json`.
#[must_use]
pub fn manifest_path_for(trace: &Path) -> PathBuf {
    trace.with_extension("manifest.json")
}

/// Publishes the manifest: appended to every attached JSONL sink as a
/// `manifest` event and, when `QCE_TRACE` is set, written as a sibling
/// JSON file next to the trace (`run.jsonl` → `run.manifest.json`).
///
/// Returns the sibling file path when one was written.
pub fn emit_manifest(manifest: &RunManifest) -> Option<PathBuf> {
    let g = global();
    g.emit_event(|o| manifest.write_fields(o));
    crate::sink::flush();
    let line = manifest.to_json();
    let path = trace_path().map(|p| manifest_path_for(&p))?;
    match std::fs::write(&path, format!("{line}\n")) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "qce-telemetry: cannot write manifest {}: {e}",
                path.display()
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{add_sink, MemorySink};

    fn sample() -> RunManifest {
        RunManifest {
            config_hash: 0xdead_beef,
            seed: 42,
            threads: 4,
            stages: vec![
                StageStat {
                    name: "flow.train".to_string(),
                    wall_ms: 12.5,
                    metrics: vec![("train.loss".to_string(), 0.25)],
                },
                StageStat {
                    name: "flow.evaluate".to_string(),
                    wall_ms: 3.5,
                    metrics: Vec::new(),
                },
            ],
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn manifest_json_round_trips() {
        let m = sample();
        let v = crate::json::parse(&m.to_json()).unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("manifest"));
        assert_eq!(v.get("config_hash").unwrap().as_u64(), Some(0xdead_beef));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("threads").unwrap().as_u64(), Some(4));
        let stages = match v.get("stages") {
            Some(crate::json::JsonValue::Arr(s)) => s,
            other => panic!("stages not an array: {other:?}"),
        };
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].get("name").unwrap().as_str(), Some("flow.train"));
        assert_eq!(stages[0].get("wall_ms").unwrap().as_f64(), Some(12.5));
        assert_eq!(
            stages[0]
                .get("metrics")
                .unwrap()
                .get("train.loss")
                .unwrap()
                .as_f64(),
            Some(0.25)
        );
        assert!((m.total_wall_ms() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn manifest_path_is_trace_sibling() {
        assert_eq!(
            manifest_path_for(Path::new("/tmp/run.jsonl")),
            PathBuf::from("/tmp/run.manifest.json")
        );
        assert_eq!(
            manifest_path_for(Path::new("trace")),
            PathBuf::from("trace.manifest.json")
        );
    }

    #[test]
    fn emit_reaches_attached_sinks() {
        let sink = MemorySink::shared();
        add_sink(sink.clone());
        let m = sample();
        // No QCE_TRACE in the test environment → no sibling file.
        let _ = emit_manifest(&m);
        let lines = sink.lines();
        let manifest_line = lines
            .iter()
            .rev()
            .find(|l| l.contains("\"ev\":\"manifest\""))
            .expect("manifest event emitted");
        let v = crate::json::parse(manifest_line).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(42));
    }
}
