//! Schema-sanity checker for JSONL traces: parses every line of the
//! given trace (and, when present, the sibling manifest) and verifies
//! the fields each event kind promises. CI runs this over the quickstart
//! trace; exits non-zero on the first violation.
//!
//! Usage: `trace_check <trace.jsonl> [expected-span ...]`
//!
//! Each extra argument is a span name that must appear as both
//! `span_start` and `span_end` in the trace.
//!
//! Truncated traces are rejected: a file that does not end in a newline
//! was cut mid-write, and a span that starts but never ends means the
//! tail of the trace is missing. Both exit non-zero with a diagnostic
//! naming the evidence.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use qce_telemetry::json::{parse, JsonValue};

fn check_line(
    n: usize,
    line: &str,
    started: &mut BTreeSet<String>,
    ended: &mut BTreeSet<String>,
    open: &mut BTreeMap<u64, String>,
) -> Result<(), String> {
    let v = parse(line).map_err(|e| format!("line {n}: {e} (truncated trace?)"))?;
    let ev = v
        .get("ev")
        .and_then(JsonValue::as_str)
        .ok_or(format!("line {n}: missing \"ev\""))?;
    let need = |keys: &[&str]| -> Result<(), String> {
        for k in keys {
            if v.get(k).is_none() {
                return Err(format!("line {n}: {ev} event missing \"{k}\""));
            }
        }
        Ok(())
    };
    match ev {
        "init" => need(&["level", "pid"])?,
        "log" => need(&["level", "msg", "t_us"])?,
        "span_start" => {
            need(&["id", "name", "thread", "t_us"])?;
            if let Some(name) = v.get("name").and_then(JsonValue::as_str) {
                started.insert(name.to_string());
                if let Some(id) = v.get("id").and_then(JsonValue::as_u64) {
                    open.insert(id, name.to_string());
                }
            }
        }
        "span_end" => {
            need(&["id", "name", "dur_us", "t_us"])?;
            if let Some(name) = v.get("name").and_then(JsonValue::as_str) {
                ended.insert(name.to_string());
            }
            if let Some(id) = v.get("id").and_then(JsonValue::as_u64) {
                open.remove(&id);
            }
        }
        "manifest" => need(&["config_hash", "seed", "threads", "stages", "metrics"])?,
        other => return Err(format!("line {n}: unknown event kind {other:?}")),
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let trace = args
        .next()
        .ok_or("usage: trace_check <trace.jsonl> [expected-span ...]")?;
    let expected: Vec<String> = args.collect();
    let body = std::fs::read_to_string(&trace).map_err(|e| format!("{trace}: {e}"))?;
    if !body.is_empty() && !body.ends_with('\n') {
        return Err(format!(
            "{trace}: does not end in a newline — truncated trace (interrupted write?)"
        ));
    }
    let mut started = BTreeSet::new();
    let mut ended = BTreeSet::new();
    let mut open = BTreeMap::new();
    let mut lines = 0usize;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        check_line(i + 1, line, &mut started, &mut ended, &mut open)?;
    }
    if lines == 0 {
        return Err(format!("{trace}: empty trace"));
    }
    if !open.is_empty() {
        let (id, name) = open.iter().next().expect("non-empty");
        return Err(format!(
            "{trace}: {} span(s) started but never ended (first: {name:?} id {id}) — \
             truncated trace",
            open.len()
        ));
    }
    for name in &expected {
        if !started.contains(name) {
            return Err(format!("expected span {name:?} never started"));
        }
        if !ended.contains(name) {
            return Err(format!("expected span {name:?} never ended"));
        }
    }
    let manifest = qce_telemetry::manifest_path_for(std::path::Path::new(&trace));
    if manifest.exists() {
        let body = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("{}: {e}", manifest.display()))?;
        let v = parse(body.trim()).map_err(|e| format!("{}: {e}", manifest.display()))?;
        for k in ["config_hash", "seed", "threads", "stages", "metrics"] {
            if v.get(k).is_none() {
                return Err(format!("{}: manifest missing \"{k}\"", manifest.display()));
            }
        }
        println!("manifest ok: {}", manifest.display());
    }
    println!(
        "trace ok: {lines} events, {} spans started, {} ended",
        started.len(),
        ended.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_check: {e}");
            ExitCode::FAILURE
        }
    }
}
