use qce_tensor::Tensor;

use crate::{Layer, Mode, NnError, Param, ParamKind, Result, WeightSymmetry};

/// Position of one `Weight`-kind parameter tensor inside the network's
/// flattened weight space.
///
/// The correlation-encoding attack and the quantizers address weights
/// through this layout: `ordinal` numbers the convolution/fully-connected
/// layers in forward order (0-based), which is what the paper's
/// "first 12 layers" style grouping refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightSlot {
    /// 0-based index among `Weight`-kind parameters in forward order.
    pub ordinal: usize,
    /// Offset of this tensor's first element in the flat weight vector.
    pub offset: usize,
    /// Number of elements.
    pub len: usize,
    /// Shape of the weight tensor.
    pub dims: Vec<usize>,
}

/// A full inference-state checkpoint of a [`Network`]: every parameter
/// tensor plus every buffer (batch-norm running statistics). Created by
/// [`Network::snapshot`], restored by [`Network::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSnapshot {
    params: Vec<Tensor>,
    buffers: Vec<Vec<f32>>,
}

impl NetworkSnapshot {
    /// The snapshotted buffers (batch-norm running statistics), in
    /// network order.
    pub fn buffers(&self) -> &[Vec<f32>] {
        &self.buffers
    }

    /// Replaces the snapshotted buffers (used when deserializing a
    /// released model).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WeightLengthMismatch`] if the count or any
    /// length differs from the snapshot's existing buffers.
    pub fn set_buffers(&mut self, buffers: Vec<Vec<f32>>) -> Result<()> {
        if buffers.len() != self.buffers.len()
            || buffers
                .iter()
                .zip(self.buffers.iter())
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(NnError::WeightLengthMismatch {
                expected: self.buffers.len(),
                actual: buffers.len(),
            });
        }
        self.buffers = buffers;
        Ok(())
    }
}

/// An ordered stack of [`Layer`]s with flat, deterministic parameter
/// access.
///
/// `Network` is the white-box surface of the threat model: after the data
/// holder releases the model, the adversary reads the same
/// [`flat_weights`](Network::flat_weights) vector the quantizers and the
/// malicious regularizer manipulated during training.
///
/// # Examples
///
/// ```
/// use qce_nn::layers::{Flatten, Linear, ReLU};
/// use qce_nn::{Mode, Network};
/// use qce_tensor::{init, Tensor};
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let mut rng = init::seeded_rng(0);
/// let mut net = Network::new(vec![
///     Box::new(Flatten::new()),
///     Box::new(Linear::new(16, 8, &mut rng)),
///     Box::new(ReLU::new()),
///     Box::new(Linear::new(8, 2, &mut rng)),
/// ]);
/// let logits = net.forward(&Tensor::zeros(&[1, 1, 4, 4]), Mode::Eval)?;
/// assert_eq!(logits.dims(), &[1, 2]);
/// assert_eq!(net.weight_slots().len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field(
                "layers",
                &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .field("num_params", &self.num_params())
            .finish()
    }
}

impl Network {
    /// Creates a network from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Network { layers }
    }

    /// Number of layers (composite blocks count as one).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Runs the full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Runs the full backward pass, accumulating parameter gradients, and
    /// returns the gradient w.r.t. the network input.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (including
    /// [`NnError::BackwardBeforeForward`]).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Clears every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// All parameters in deterministic (forward) order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable access to all parameters in the same order as
    /// [`Network::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Layout of the `Weight`-kind parameters in flat weight space.
    pub fn weight_slots(&self) -> Vec<WeightSlot> {
        let mut slots = Vec::new();
        let mut offset = 0;
        let mut ordinal = 0;
        for p in self.params() {
            if p.kind() == ParamKind::Weight {
                slots.push(WeightSlot {
                    ordinal,
                    offset,
                    len: p.len(),
                    dims: p.value().dims().to_vec(),
                });
                offset += p.len();
                ordinal += 1;
            }
        }
        slots
    }

    /// Applies a seeded, function-preserving permutation to every layer's
    /// internal hidden channels (see
    /// [`Layer::permute_hidden_channels`]) and returns the total number
    /// of channels permuted.
    ///
    /// Layers draw their permutations from one `StdRng` seeded with
    /// `seed` in forward order, so the whole transform is deterministic.
    /// This is the primitive behind the `qce-defense` rotation defense:
    /// it scrambles position-addressed weight payloads while leaving the
    /// network's function bit-comparable up to float summation order.
    pub fn permute_hidden_channels(&mut self, seed: u64) -> usize {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        self.layers
            .iter_mut()
            .map(|l| l.permute_hidden_channels(&mut rng))
            .sum()
    }

    /// How each `Weight`-kind tensor (aligned with
    /// [`Network::weight_slots`]) transforms under
    /// [`Network::permute_hidden_channels`] — the white-box symmetry map
    /// a permutation-invariant encoding lays its payload out against.
    pub fn weight_symmetries(&self) -> Vec<WeightSymmetry> {
        self.layers
            .iter()
            .flat_map(|l| l.weight_symmetries())
            .collect()
    }

    /// Total number of `Weight`-kind scalars (the encodable/quantizable
    /// parameter count).
    pub fn num_weights(&self) -> usize {
        self.params()
            .iter()
            .filter(|p| p.kind() == ParamKind::Weight)
            .map(|p| p.len())
            .sum()
    }

    /// Concatenates all `Weight`-kind parameters into one flat vector, in
    /// forward order.
    pub fn flat_weights(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_weights());
        for p in self.params() {
            if p.kind() == ParamKind::Weight {
                out.extend_from_slice(p.value().as_slice());
            }
        }
        out
    }

    /// Overwrites all `Weight`-kind parameters from a flat vector produced
    /// by (or layout-compatible with) [`Network::flat_weights`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WeightLengthMismatch`] if the total length is
    /// wrong.
    pub fn set_flat_weights(&mut self, flat: &[f32]) -> Result<()> {
        let expected = self.num_weights();
        if flat.len() != expected {
            return Err(NnError::WeightLengthMismatch {
                expected,
                actual: flat.len(),
            });
        }
        let mut offset = 0;
        for p in self.params_mut() {
            if p.kind() == ParamKind::Weight {
                let len = p.len();
                p.value_mut()
                    .as_mut_slice()
                    .copy_from_slice(&flat[offset..offset + len]);
                offset += len;
            }
        }
        Ok(())
    }

    /// Adds `flat` elementwise into the `Weight`-kind parameter gradients —
    /// the hook the correlation regularizer uses to inject its analytic
    /// gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WeightLengthMismatch`] if the total length is
    /// wrong.
    pub fn add_flat_weight_grads(&mut self, flat: &[f32]) -> Result<()> {
        let expected = self.num_weights();
        if flat.len() != expected {
            return Err(NnError::WeightLengthMismatch {
                expected,
                actual: flat.len(),
            });
        }
        let mut offset = 0;
        for p in self.params_mut() {
            if p.kind() == ParamKind::Weight {
                let len = p.len();
                for (g, &d) in p
                    .grad_mut()
                    .as_mut_slice()
                    .iter_mut()
                    .zip(flat[offset..offset + len].iter())
                {
                    *g += d;
                }
                offset += len;
            }
        }
        Ok(())
    }

    /// Snapshot of every parameter value (all kinds), for checkpointing.
    ///
    /// Does **not** include batch-norm running statistics; use
    /// [`Network::snapshot`] for a full inference-state checkpoint.
    pub fn state(&self) -> Vec<Tensor> {
        self.params().iter().map(|p| p.value().clone()).collect()
    }

    /// Full inference-state snapshot: parameters *and* buffers (batch-norm
    /// running statistics).
    pub fn snapshot(&self) -> NetworkSnapshot {
        NetworkSnapshot {
            params: self.state(),
            buffers: self
                .layers
                .iter()
                .flat_map(|l| l.buffers())
                .map(|b| b.to_vec())
                .collect(),
        }
    }

    /// Restores a snapshot captured by [`Network::snapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WeightLengthMismatch`] if the snapshot does not
    /// match this network's layout.
    pub fn restore(&mut self, snapshot: &NetworkSnapshot) -> Result<()> {
        self.load_state(&snapshot.params)?;
        let mut buffers: Vec<&mut Vec<f32>> = self
            .layers
            .iter_mut()
            .flat_map(|l| l.buffers_mut())
            .collect();
        if buffers.len() != snapshot.buffers.len() {
            return Err(NnError::WeightLengthMismatch {
                expected: buffers.len(),
                actual: snapshot.buffers.len(),
            });
        }
        for (dst, src) in buffers.iter_mut().zip(snapshot.buffers.iter()) {
            if dst.len() != src.len() {
                return Err(NnError::WeightLengthMismatch {
                    expected: dst.len(),
                    actual: src.len(),
                });
            }
            dst.copy_from_slice(src);
        }
        Ok(())
    }

    /// Restores a snapshot captured by [`Network::state`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WeightLengthMismatch`] if the snapshot does not
    /// match the parameter count or shapes.
    pub fn load_state(&mut self, state: &[Tensor]) -> Result<()> {
        let mut params = self.params_mut();
        if params.len() != state.len() {
            return Err(NnError::WeightLengthMismatch {
                expected: params.len(),
                actual: state.len(),
            });
        }
        for (p, s) in params.iter_mut().zip(state.iter()) {
            if p.value().dims() != s.dims() {
                return Err(NnError::WeightLengthMismatch {
                    expected: p.len(),
                    actual: s.len(),
                });
            }
            *p.value_mut() = s.clone();
        }
        Ok(())
    }

    /// Predicts class indices for a batch: forward in eval mode + argmax.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>> {
        let logits = self.forward(input, Mode::Eval)?;
        let (n, k) = (logits.dims()[0], logits.dims()[1]);
        let lv = logits.as_slice();
        Ok((0..n)
            .map(|i| {
                let row = &lv[i * k..(i + 1) * k];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, GlobalAvgPool, Linear, ReLU};
    use qce_tensor::conv::ConvGeometry;
    use qce_tensor::init;

    fn small_net(seed: u64) -> Network {
        let mut rng = init::seeded_rng(seed);
        Network::new(vec![
            Box::new(Conv2d::new(1, 2, 3, ConvGeometry::new(1, 1), &mut rng)),
            Box::new(ReLU::new()),
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new(2, 3, &mut rng)),
        ])
    }

    #[test]
    fn forward_shape() {
        let mut net = small_net(1);
        let y = net
            .forward(&Tensor::zeros(&[2, 1, 4, 4]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn weight_slots_layout() {
        let net = small_net(2);
        let slots = net.weight_slots();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].ordinal, 0);
        assert_eq!(slots[0].offset, 0);
        assert_eq!(slots[0].len, 18); // 2x1x3x3
        assert_eq!(slots[1].offset, 18);
        assert_eq!(slots[1].len, 6); // 3x2
        assert_eq!(net.num_weights(), 24);
    }

    #[test]
    fn flat_weights_round_trip() {
        let mut net = small_net(3);
        let flat = net.flat_weights();
        assert_eq!(flat.len(), 24);
        let doubled: Vec<f32> = flat.iter().map(|&x| x * 2.0).collect();
        net.set_flat_weights(&doubled).unwrap();
        let back = net.flat_weights();
        for (a, b) in back.iter().zip(flat.iter()) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
        assert!(net.set_flat_weights(&[0.0]).is_err());
    }

    #[test]
    fn add_flat_weight_grads_targets_weights_only() {
        let mut net = small_net(4);
        net.zero_grad();
        let inject = vec![1.0f32; net.num_weights()];
        net.add_flat_weight_grads(&inject).unwrap();
        for p in net.params() {
            let expect = if p.kind() == ParamKind::Weight {
                1.0
            } else {
                0.0
            };
            assert!(p.grad().as_slice().iter().all(|&g| g == expect));
        }
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut net = small_net(5);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = net.forward(&x, Mode::Train).unwrap();
        net.backward(&Tensor::ones(y.dims())).unwrap();
        assert!(net.params().iter().any(|p| p.grad().squared_norm() > 0.0));
        net.zero_grad();
        assert!(net.params().iter().all(|p| p.grad().squared_norm() == 0.0));
    }

    #[test]
    fn state_save_restore() {
        let mut net = small_net(6);
        let snapshot = net.state();
        let zeros = vec![0.0f32; net.num_weights()];
        net.set_flat_weights(&zeros).unwrap();
        assert!(net.flat_weights().iter().all(|&w| w == 0.0));
        net.load_state(&snapshot).unwrap();
        assert!(net.flat_weights().iter().any(|&w| w != 0.0));
        assert!(net.load_state(&snapshot[1..]).is_err());
    }

    #[test]
    fn snapshot_restores_batchnorm_running_stats() {
        use crate::layers::BatchNorm2d;
        let mut net = Network::new(vec![
            Box::new(Conv2d::new(
                1,
                2,
                3,
                ConvGeometry::new(1, 1),
                &mut init::seeded_rng(9),
            )),
            Box::new(BatchNorm2d::new(2)),
        ]);
        // Drive the running statistics away from their init.
        let x = init::uniform(&[4, 1, 6, 6], 3.0, 5.0, &mut init::seeded_rng(10));
        net.forward(&x, Mode::Train).unwrap();
        let snap = net.snapshot();
        let before = net.forward(&x, Mode::Eval).unwrap();
        // Mutate both params and buffers.
        net.forward(&x.scale(3.0), Mode::Train).unwrap();
        let zeros = vec![0.0f32; net.num_weights()];
        net.set_flat_weights(&zeros).unwrap();
        assert_ne!(net.forward(&x, Mode::Eval).unwrap(), before);
        // Full restore brings inference back exactly.
        net.restore(&snap).unwrap();
        assert_eq!(net.forward(&x, Mode::Eval).unwrap(), before);
    }

    #[test]
    fn hidden_channel_permutation_preserves_network_function() {
        use crate::models::ResNetLite;
        let mut net = ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(11)
            .unwrap();
        let x = init::uniform(&[3, 1, 8, 8], 0.0, 1.0, &mut init::seeded_rng(12));
        net.forward(&x, Mode::Train).unwrap();
        let before = net.forward(&x, Mode::Eval).unwrap();
        let flat_before = net.flat_weights();
        let moved = net.permute_hidden_channels(1234);
        assert_eq!(moved, 4 + 8); // one block per stage
        assert_ne!(net.flat_weights(), flat_before);
        let after = net.forward(&x, Mode::Eval).unwrap();
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // Deterministic: the same seed on an identical network produces
        // the same permuted weights.
        let mut twin = ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(11)
            .unwrap();
        twin.forward(&x, Mode::Train).unwrap();
        twin.permute_hidden_channels(1234);
        assert_eq!(net.flat_weights(), twin.flat_weights());
    }

    #[test]
    fn weight_symmetries_align_with_weight_slots() {
        use crate::models::ResNetLite;
        let net = ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(13)
            .unwrap();
        let symmetries = net.weight_symmetries();
        assert_eq!(symmetries.len(), net.weight_slots().len());
        // stem Fixed, block1 (rows, chunks), block2 (rows, chunks, proj
        // Fixed), linear Fixed.
        assert_eq!(symmetries[0], WeightSymmetry::Fixed);
        assert_eq!(symmetries[1], WeightSymmetry::PermutedRows);
        assert_eq!(symmetries[2], WeightSymmetry::PermutedInChunks);
        assert_eq!(symmetries[3], WeightSymmetry::PermutedRows);
        assert_eq!(symmetries[4], WeightSymmetry::PermutedInChunks);
        assert_eq!(symmetries[5], WeightSymmetry::Fixed);
        assert_eq!(*symmetries.last().unwrap(), WeightSymmetry::Fixed);
    }

    #[test]
    fn predict_returns_argmax_per_row() {
        let mut net = small_net(7);
        let preds = net.predict(&Tensor::zeros(&[5, 1, 4, 4])).unwrap();
        assert_eq!(preds.len(), 5);
        assert!(preds.iter().all(|&p| p < 3));
    }

    #[test]
    fn debug_is_nonempty() {
        let net = small_net(8);
        let s = format!("{net:?}");
        assert!(s.contains("Network"));
        assert!(s.contains("conv2d"));
    }
}
