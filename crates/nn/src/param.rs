use qce_tensor::Tensor;

/// What role a parameter tensor plays in its layer.
///
/// The correlation-encoding attack and the quantizers only touch
/// [`ParamKind::Weight`] tensors (convolution kernels and fully-connected
/// matrices); biases and batch-norm affine parameters are left alone, which
/// matches how quantization is deployed in practice (weights dominate model
/// size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Convolution kernel or fully-connected weight matrix — the tensors
    /// the attack encodes into and the quantizers compress.
    Weight,
    /// Additive bias.
    Bias,
    /// Batch-norm scale (γ).
    Gamma,
    /// Batch-norm shift (β).
    Beta,
}

/// A trainable tensor together with its gradient accumulator.
///
/// Layers own their `Param`s; the [`Network`](crate::Network) exposes them
/// in a deterministic order so the optimizer, the attack regularizer and
/// the quantizers all agree on parameter identity.
#[derive(Debug, Clone)]
pub struct Param {
    value: Tensor,
    grad: Tensor,
    kind: ParamKind,
}

impl Param {
    /// Creates a parameter from an initial value; the gradient starts at
    /// zero with the same shape.
    pub fn new(value: Tensor, kind: ParamKind) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad, kind }
    }

    /// The parameter's role in its layer.
    pub fn kind(&self) -> ParamKind {
        self.kind
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable value (used by the optimizer and the quantizers).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// Accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable gradient accumulator.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 2]), ParamKind::Weight);
        assert_eq!(p.kind(), ParamKind::Weight);
        assert_eq!(p.len(), 4);
        assert!(p.grad().as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::ones(&[3]), ParamKind::Bias);
        p.grad_mut().fill(5.0);
        p.zero_grad();
        assert!(p.grad().as_slice().iter().all(|&g| g == 0.0));
    }
}
