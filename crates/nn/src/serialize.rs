//! Binary (de)serialization of network parameters — the "released model"
//! artifact of the threat model.
//!
//! The data holder publishes the trained weights; the adversary, who
//! knows the architecture (they shipped the training code), rebuilds the
//! network shell and loads the published parameters into it. The format
//! is a minimal little-endian container:
//!
//! ```text
//! magic "QCEM" | version u16 | param count u32
//! per param:  kind u8 | rank u8 | dims (u32 each) | f32 data
//! buffer count u32
//! per buffer: len u32 | f32 data
//! ```

use std::io::{Read, Write};

use qce_tensor::Tensor;

use crate::{Network, NnError, ParamKind, Result};

const MAGIC: &[u8; 4] = b"QCEM";
const VERSION: u16 = 1;

fn kind_tag(kind: ParamKind) -> u8 {
    match kind {
        ParamKind::Weight => 0,
        ParamKind::Bias => 1,
        ParamKind::Gamma => 2,
        ParamKind::Beta => 3,
    }
}

fn io_err(e: std::io::Error) -> NnError {
    NnError::InvalidConfig {
        reason: format!("model io failed: {e}"),
    }
}

fn format_err(reason: impl Into<String>) -> NnError {
    NnError::InvalidConfig {
        reason: reason.into(),
    }
}

/// Writes a network's parameters and buffers to `writer`.
///
/// Note the `W: Write` bound is by value; pass `&mut file` to keep using
/// the writer afterwards.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] wrapping any I/O failure.
pub fn save_network<W: Write>(net: &Network, mut writer: W) -> Result<()> {
    writer.write_all(MAGIC).map_err(io_err)?;
    writer.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    let params = net.params();
    writer
        .write_all(&(params.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    for p in &params {
        writer.write_all(&[kind_tag(p.kind())]).map_err(io_err)?;
        let dims = p.value().dims();
        writer.write_all(&[dims.len() as u8]).map_err(io_err)?;
        for &d in dims {
            writer
                .write_all(&(d as u32).to_le_bytes())
                .map_err(io_err)?;
        }
        for &v in p.value().as_slice() {
            writer.write_all(&v.to_le_bytes()).map_err(io_err)?;
        }
    }
    let snapshot = net.snapshot();
    let buffers = snapshot.buffers();
    writer
        .write_all(&(buffers.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    for b in buffers {
        writer
            .write_all(&(b.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        for &v in b {
            writer.write_all(&v.to_le_bytes()).map_err(io_err)?;
        }
    }
    Ok(())
}

fn read_exact<R: Read, const N: usize>(reader: &mut R) -> Result<[u8; N]> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf).map_err(io_err)?;
    Ok(buf)
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32> {
    Ok(u32::from_le_bytes(read_exact::<R, 4>(reader)?))
}

fn read_f32s<R: Read>(reader: &mut R, n: usize) -> Result<Vec<f32>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f32::from_le_bytes(read_exact::<R, 4>(reader)?));
    }
    Ok(out)
}

/// Loads parameters and buffers saved by [`save_network`] into an
/// existing network of the same architecture.
///
/// Note the `R: Read` bound is by value; pass `&mut file` to keep using
/// the reader afterwards.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for a malformed file and
/// [`NnError::WeightLengthMismatch`] when the stored layout does not
/// match `net`.
pub fn load_network<R: Read>(net: &mut Network, mut reader: R) -> Result<()> {
    if &read_exact::<R, 4>(&mut reader)? != MAGIC {
        return Err(format_err("bad magic, not a qce model file"));
    }
    let version = u16::from_le_bytes(read_exact::<R, 2>(&mut reader)?);
    if version != VERSION {
        return Err(format_err(format!("unsupported model version {version}")));
    }
    let count = read_u32(&mut reader)? as usize;
    {
        let mut params = net.params_mut();
        if params.len() != count {
            return Err(NnError::WeightLengthMismatch {
                expected: params.len(),
                actual: count,
            });
        }
        for p in params.iter_mut() {
            let [tag] = read_exact::<R, 1>(&mut reader)?;
            if tag != kind_tag(p.kind()) {
                return Err(format_err(format!(
                    "parameter kind mismatch: stored tag {tag}, expected {}",
                    kind_tag(p.kind())
                )));
            }
            let [rank] = read_exact::<R, 1>(&mut reader)?;
            let mut dims = Vec::with_capacity(rank as usize);
            for _ in 0..rank {
                dims.push(read_u32(&mut reader)? as usize);
            }
            if dims != p.value().dims() {
                return Err(NnError::WeightLengthMismatch {
                    expected: p.len(),
                    actual: dims.iter().product(),
                });
            }
            let data = read_f32s(&mut reader, p.len())?;
            let tensor =
                Tensor::from_vec(data, &dims).map_err(|e| NnError::tensor("load_network", e))?;
            *p.value_mut() = tensor;
        }
    }
    // Buffers.
    let buffer_count = read_u32(&mut reader)? as usize;
    let mut stored = Vec::with_capacity(buffer_count);
    for _ in 0..buffer_count {
        let len = read_u32(&mut reader)? as usize;
        stored.push(read_f32s(&mut reader, len)?);
    }
    let mut snapshot = net.snapshot();
    snapshot.set_buffers(stored)?;
    net.restore(&snapshot)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ResNetLite;
    use crate::Mode;
    use qce_tensor::init;

    fn net(seed: u64) -> Network {
        ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(seed)
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_inference() {
        let mut original = net(1);
        // Touch batch-norm running stats so buffers are non-trivial.
        let x = init::uniform(&[4, 1, 8, 8], 0.0, 1.0, &mut init::seeded_rng(2));
        original.forward(&x, Mode::Train).unwrap();
        let expected = original.forward(&x, Mode::Eval).unwrap();

        let mut bytes = Vec::new();
        save_network(&original, &mut bytes).unwrap();

        // Same architecture, different init.
        let mut restored = net(99);
        assert_ne!(restored.forward(&x, Mode::Eval).unwrap(), expected);
        load_network(&mut restored, bytes.as_slice()).unwrap();
        assert_eq!(restored.forward(&x, Mode::Eval).unwrap(), expected);
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let mut n = net(3);
        assert!(load_network(&mut n, &b"NOPE"[..]).is_err());
        let mut bytes = Vec::new();
        save_network(&n, &mut bytes).unwrap();
        bytes[4] = 9; // corrupt version
        let mut m = net(3);
        assert!(load_network(&mut m, bytes.as_slice()).is_err());
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let a = net(4);
        let mut bytes = Vec::new();
        save_network(&a, &mut bytes).unwrap();
        let mut other = ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[6])
            .blocks_per_stage(1)
            .build(4)
            .unwrap();
        assert!(load_network(&mut other, bytes.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let n = net(5);
        let mut bytes = Vec::new();
        save_network(&n, &mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        let mut m = net(5);
        assert!(load_network(&mut m, bytes.as_slice()).is_err());
    }
}
