use qce_tensor::Tensor;
use rand::rngs::StdRng;

use crate::{Param, ParamKind, Result};

/// Whether a forward pass is part of training or evaluation.
///
/// Batch normalization uses batch statistics (and updates running
/// statistics) in [`Mode::Train`], and frozen running statistics in
/// [`Mode::Eval`]. Other layers behave identically in both modes but must
/// only rely on cached activations for `backward` after a `Train` forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: cache activations for `backward`, use batch statistics.
    Train,
    /// Inference: no caching requirements, use running statistics.
    Eval,
}

/// How one `Weight`-kind tensor transforms under
/// [`Layer::permute_hidden_channels`].
///
/// A ReLU network's exact function-preserving symmetries are channel
/// permutations (with positive per-channel rescaling); a defender
/// exploiting them re-indexes hidden channels, which moves encoded
/// weights around. This enum tells white-box consumers — the
/// rotation-invariant encoding channel in `qce-attack` — *how* each
/// weight tensor can move, so they can lay payloads out in an order
/// that survives the shuffle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightSymmetry {
    /// The tensor never moves under hidden-channel permutation.
    Fixed,
    /// Leading-axis rows (`[O, ...]`) are permuted as whole units — the
    /// tensor *produces* the permuted channels (e.g. a residual block's
    /// first convolution).
    PermutedRows,
    /// The second axis of a `[O, I, kh, kw]` tensor is permuted, i.e.
    /// the `kh*kw`-sized chunks inside every row move identically — the
    /// tensor *consumes* the permuted channels (e.g. a residual block's
    /// second convolution).
    PermutedInChunks,
}

/// One differentiable stage of a [`Network`](crate::Network).
///
/// The contract is the classic two-phase one:
///
/// 1. `forward(input, Mode::Train)` computes the output **and caches**
///    whatever intermediate state `backward` will need.
/// 2. `backward(grad_out)` consumes that cache, **accumulates** parameter
///    gradients into its [`Param`]s, and returns the gradient w.r.t. its
///    input.
///
/// Implementations must return
/// [`NnError::BackwardBeforeForward`](crate::NnError::BackwardBeforeForward)
/// when `backward` is called without a preceding training-mode `forward`.
pub trait Layer {
    /// Short static name used in error contexts (e.g. `"conv2d"`).
    fn name(&self) -> &'static str;

    /// Computes the layer output for `input`.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` has an incompatible shape.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Propagates `grad_out` back through the layer, accumulating parameter
    /// gradients, and returns the gradient w.r.t. the layer input.
    ///
    /// # Errors
    ///
    /// Returns an error if no training-mode forward preceded this call or
    /// if `grad_out` has an incompatible shape.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// The layer's trainable parameters, in a deterministic order.
    ///
    /// The default implementation returns no parameters (correct for
    /// activation, pooling and reshaping layers).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the layer's trainable parameters, in the same
    /// order as [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Non-trainable state that still affects inference (batch-norm
    /// running statistics), in a deterministic order. Default: none.
    fn buffers(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Mutable access to the buffers, in the same order as
    /// [`Layer::buffers`].
    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        Vec::new()
    }

    /// Applies a seeded permutation to the layer's *internal* hidden
    /// channels — channel spaces invisible outside the layer — keeping
    /// the layer's function identical up to floating-point summation
    /// order. Returns the number of channels permuted.
    ///
    /// The default is a no-op returning 0, correct for every layer whose
    /// channels are externally visible. Composite layers with private
    /// channel spaces (residual blocks) override it; this is the
    /// primitive the `qce-defense` rotation defense drives through
    /// [`Network::permute_hidden_channels`](crate::Network::permute_hidden_channels).
    fn permute_hidden_channels(&mut self, rng: &mut StdRng) -> usize {
        let _ = rng;
        0
    }

    /// How each of the layer's `Weight`-kind tensors (in [`Layer::params`]
    /// order) transforms under [`Layer::permute_hidden_channels`].
    ///
    /// The default marks every weight tensor [`WeightSymmetry::Fixed`],
    /// matching the default no-op permutation.
    fn weight_symmetries(&self) -> Vec<WeightSymmetry> {
        self.params()
            .iter()
            .filter(|p| p.kind() == ParamKind::Weight)
            .map(|_| WeightSymmetry::Fixed)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_trait_is_object_safe() {
        // Compile-time check: Box<dyn Layer> must be a valid type.
        fn _takes(_: Box<dyn Layer>) {}
    }

    #[test]
    fn mode_equality() {
        assert_eq!(Mode::Train, Mode::Train);
        assert_ne!(Mode::Train, Mode::Eval);
    }
}
