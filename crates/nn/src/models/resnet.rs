use qce_tensor::conv::ConvGeometry;
use qce_tensor::init;

use crate::layers::{BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, ReLU, ResidualBlock};
use crate::{Layer, Network, NnError, Result};

/// A scaled-down residual CNN in the ResNet-34 family.
///
/// ```text
/// stem conv3x3 ─ bn ─ relu ─ [stage 0: B blocks] ─ [stage 1] ─ ...
///   ─ global avg pool ─ flatten(noop) ─ linear ─ logits
/// ```
///
/// Stage `i > 0` starts with a stride-2 projection block that doubles the
/// spatial reduction; within a stage all blocks keep the channel count of
/// the stage. This mirrors the stage/depth structure the paper's
/// layer-group analysis relies on while keeping CPU training tractable.
///
/// Use [`ResNetLite::builder`] to construct one.
#[derive(Debug)]
pub struct ResNetLite;

impl ResNetLite {
    /// Starts building a `ResNetLite`.
    pub fn builder() -> ResNetLiteBuilder {
        ResNetLiteBuilder::default()
    }
}

/// Builder for [`ResNetLite`] networks.
///
/// # Examples
///
/// ```
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let net = ResNetLite::builder()
///     .input(3, 16)
///     .classes(10)
///     .stage_channels(&[8, 16, 32])
///     .blocks_per_stage(2)
///     .build(7)?;
/// assert!(net.num_weights() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ResNetLiteBuilder {
    in_channels: usize,
    input_size: usize,
    classes: usize,
    stage_channels: Vec<usize>,
    blocks_per_stage: usize,
}

impl Default for ResNetLiteBuilder {
    fn default() -> Self {
        ResNetLiteBuilder {
            in_channels: 3,
            input_size: 32,
            classes: 10,
            stage_channels: vec![16, 32, 64],
            blocks_per_stage: 2,
        }
    }
}

impl ResNetLiteBuilder {
    /// Sets the input channel count and square spatial size.
    pub fn input(mut self, channels: usize, size: usize) -> Self {
        self.in_channels = channels;
        self.input_size = size;
        self
    }

    /// Sets the number of output classes.
    pub fn classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Sets the channel width of each stage (one entry per stage).
    pub fn stage_channels(mut self, channels: &[usize]) -> Self {
        self.stage_channels = channels.to_vec();
        self
    }

    /// Sets the number of residual blocks per stage.
    pub fn blocks_per_stage(mut self, blocks: usize) -> Self {
        self.blocks_per_stage = blocks;
        self
    }

    /// Number of convolution/linear weight tensors the built network will
    /// contain (useful for planning the paper's layer groups without
    /// building the model).
    pub fn weight_tensor_count(&self) -> usize {
        // stem + per block (2 convs + projection?) + final linear
        let mut count = 1;
        let mut prev = *self.stage_channels.first().unwrap_or(&0);
        for (i, &ch) in self.stage_channels.iter().enumerate() {
            for b in 0..self.blocks_per_stage {
                count += 2;
                let stride = if i > 0 && b == 0 { 2 } else { 1 };
                if stride != 1 || prev != ch {
                    count += 1;
                }
                prev = ch;
            }
        }
        count + 1
    }

    /// Builds the network with deterministic initialization from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the configuration is
    /// infeasible (no stages, zero classes, or an input too small for the
    /// stage downsampling).
    pub fn build(&self, seed: u64) -> Result<Network> {
        if self.stage_channels.is_empty() {
            return Err(NnError::InvalidConfig {
                reason: "at least one stage is required".to_string(),
            });
        }
        if self.classes == 0 || self.in_channels == 0 || self.blocks_per_stage == 0 {
            return Err(NnError::InvalidConfig {
                reason: "classes, input channels and blocks must be non-zero".to_string(),
            });
        }
        // Each stage after the first halves the spatial extent.
        let reduction = 1usize << (self.stage_channels.len() - 1);
        if self.input_size / reduction == 0 {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "input size {} too small for {} stages",
                    self.input_size,
                    self.stage_channels.len()
                ),
            });
        }

        let mut rng = init::seeded_rng(seed);
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let c0 = self.stage_channels[0];
        layers.push(Box::new(Conv2d::new(
            self.in_channels,
            c0,
            3,
            ConvGeometry::new(1, 1),
            &mut rng,
        )));
        layers.push(Box::new(BatchNorm2d::new(c0)));
        layers.push(Box::new(ReLU::new()));

        let mut prev = c0;
        for (i, &ch) in self.stage_channels.iter().enumerate() {
            for b in 0..self.blocks_per_stage {
                let stride = if i > 0 && b == 0 { 2 } else { 1 };
                layers.push(Box::new(ResidualBlock::new(prev, ch, stride, &mut rng)));
                prev = ch;
            }
        }

        layers.push(Box::new(GlobalAvgPool::new()));
        layers.push(Box::new(Flatten::new()));
        layers.push(Box::new(Linear::new(prev, self.classes, &mut rng)));
        Ok(Network::new(layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use qce_tensor::Tensor;

    #[test]
    fn default_build_forward() {
        let mut net = ResNetLite::builder()
            .input(3, 16)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .classes(10)
            .build(1)
            .unwrap();
        let y = net
            .forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn weight_tensor_count_matches_built_model() {
        let builder = ResNetLite::builder()
            .input(3, 16)
            .stage_channels(&[4, 8, 16])
            .blocks_per_stage(2)
            .classes(5);
        let net = builder.build(2).unwrap();
        assert_eq!(net.weight_slots().len(), builder.weight_tensor_count());
    }

    #[test]
    fn deterministic_initialization() {
        let build = || {
            ResNetLite::builder()
                .input(1, 8)
                .stage_channels(&[4])
                .blocks_per_stage(1)
                .classes(2)
                .build(9)
                .unwrap()
                .flat_weights()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ResNetLite::builder().stage_channels(&[]).build(0).is_err());
        assert!(ResNetLite::builder().classes(0).build(0).is_err());
        assert!(ResNetLite::builder()
            .input(3, 2)
            .stage_channels(&[4, 8, 16, 32])
            .build(0)
            .is_err());
    }

    #[test]
    fn grad_flows_end_to_end() {
        let mut net = ResNetLite::builder()
            .input(1, 8)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .classes(3)
            .build(3)
            .unwrap();
        let x = qce_tensor::init::uniform(
            &[2, 1, 8, 8],
            0.0,
            1.0,
            &mut qce_tensor::init::seeded_rng(4),
        );
        let y = net.forward(&x, Mode::Train).unwrap();
        let out = crate::loss::softmax_cross_entropy(&y, &[0, 2]).unwrap();
        net.backward(&out.grad).unwrap();
        // Every weight tensor received some gradient.
        let with_grad = net
            .params()
            .iter()
            .filter(|p| p.grad().squared_norm() > 0.0)
            .count();
        assert!(with_grad > net.params().len() / 2);
    }
}
