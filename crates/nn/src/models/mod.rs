//! Reference model architectures.
//!
//! * [`ResNetLite`] — a scaled-down residual CNN standing in for the
//!   paper's ResNet-34 on CIFAR-10 (see DESIGN.md for the substitution
//!   argument).
//! * [`FaceNetLite`] — a deeper/wider residual CNN with a many-class head
//!   standing in for Inception-ResNet-v1 on FaceScrub.
//! * [`ConvNet`] — a plain VGG-style CNN without skip connections, for
//!   checking architecture-independence of the attack.

mod convnet;
mod facenet;
mod resnet;

pub use convnet::{ConvNet, ConvNetBuilder};
pub use facenet::FaceNetLite;
pub use resnet::{ResNetLite, ResNetLiteBuilder};
