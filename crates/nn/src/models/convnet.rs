use qce_tensor::conv::ConvGeometry;
use qce_tensor::init;

use crate::layers::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, ReLU, Sequential,
};
use crate::{Layer, Network, NnError, Result};

/// A plain VGG-style CNN (conv-bn-relu ×2 + maxpool per stage) — the
/// non-residual counterpart of [`ResNetLite`](crate::models::ResNetLite),
/// useful for checking that the attack mechanics do not depend on skip
/// connections.
///
/// Use [`ConvNet::builder`] to construct one.
#[derive(Debug)]
pub struct ConvNet;

impl ConvNet {
    /// Starts building a `ConvNet`.
    pub fn builder() -> ConvNetBuilder {
        ConvNetBuilder::default()
    }
}

/// Builder for [`ConvNet`] networks.
///
/// # Examples
///
/// ```
/// use qce_nn::models::ConvNet;
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let net = ConvNet::builder()
///     .input(3, 16)
///     .classes(10)
///     .stage_channels(&[8, 16])
///     .build(5)?;
/// assert!(net.num_weights() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConvNetBuilder {
    in_channels: usize,
    input_size: usize,
    classes: usize,
    stage_channels: Vec<usize>,
}

impl Default for ConvNetBuilder {
    fn default() -> Self {
        ConvNetBuilder {
            in_channels: 3,
            input_size: 32,
            classes: 10,
            stage_channels: vec![16, 32],
        }
    }
}

impl ConvNetBuilder {
    /// Sets the input channel count and square spatial size.
    pub fn input(mut self, channels: usize, size: usize) -> Self {
        self.in_channels = channels;
        self.input_size = size;
        self
    }

    /// Sets the number of output classes.
    pub fn classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Sets the channel width of each stage (each stage halves the
    /// spatial extent with a 2×2 max pool).
    pub fn stage_channels(mut self, channels: &[usize]) -> Self {
        self.stage_channels = channels.to_vec();
        self
    }

    /// Builds the network with deterministic initialization from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for an empty stage list, zero
    /// classes/channels, or an input too small for the per-stage pooling.
    pub fn build(&self, seed: u64) -> Result<Network> {
        if self.stage_channels.is_empty() || self.classes == 0 || self.in_channels == 0 {
            return Err(NnError::InvalidConfig {
                reason: "stages, classes and input channels must be non-zero".to_string(),
            });
        }
        let reduction = 1usize << self.stage_channels.len();
        if self.input_size / reduction == 0 {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "input size {} too small for {} pooling stages",
                    self.input_size,
                    self.stage_channels.len()
                ),
            });
        }
        let mut rng = init::seeded_rng(seed);
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut prev = self.in_channels;
        for &ch in &self.stage_channels {
            let stage: Vec<Box<dyn Layer>> = vec![
                Box::new(Conv2d::new(prev, ch, 3, ConvGeometry::new(1, 1), &mut rng)),
                Box::new(BatchNorm2d::new(ch)),
                Box::new(ReLU::new()),
                Box::new(Conv2d::new(ch, ch, 3, ConvGeometry::new(1, 1), &mut rng)),
                Box::new(BatchNorm2d::new(ch)),
                Box::new(ReLU::new()),
                Box::new(MaxPool2d::new(2, 2)),
            ];
            layers.push(Box::new(Sequential::new(stage)));
            prev = ch;
        }
        layers.push(Box::new(GlobalAvgPool::new()));
        layers.push(Box::new(Flatten::new()));
        layers.push(Box::new(Linear::new(prev, self.classes, &mut rng)));
        Ok(Network::new(layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mode, TrainConfig, Trainer};
    use qce_tensor::Tensor;

    #[test]
    fn forward_shape() {
        let mut net = ConvNet::builder()
            .input(3, 16)
            .classes(5)
            .stage_channels(&[4, 8])
            .build(1)
            .unwrap();
        let y = net
            .forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 5]);
    }

    #[test]
    fn weight_slots_count_convs_plus_head() {
        let net = ConvNet::builder()
            .input(1, 8)
            .classes(2)
            .stage_channels(&[4])
            .build(2)
            .unwrap();
        // 2 convs per stage + 1 linear.
        assert_eq!(net.weight_slots().len(), 3);
    }

    #[test]
    fn trains_end_to_end() {
        let mut rng = init::seeded_rng(3);
        let n = 32;
        let mut data = Vec::with_capacity(n * 64);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            for p in 0..64 {
                let bright = if (class == 0) == (p < 32) { 0.9 } else { 0.1 };
                data.push(bright + 0.05 * init::standard_normal(&mut rng));
            }
            labels.push(class);
        }
        let x = Tensor::from_vec(data, &[n, 1, 8, 8]).unwrap();
        let mut net = ConvNet::builder()
            .input(1, 8)
            .classes(2)
            .stage_channels(&[4])
            .build(4)
            .unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 0.05,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut net, &x, &labels, None).unwrap();
        assert!(history.epoch_losses[7] < history.epoch_losses[0]);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ConvNet::builder().stage_channels(&[]).build(0).is_err());
        assert!(ConvNet::builder().classes(0).build(0).is_err());
        assert!(ConvNet::builder()
            .input(3, 4)
            .stage_channels(&[4, 8, 16])
            .build(0)
            .is_err());
    }
}
