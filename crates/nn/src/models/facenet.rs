use crate::models::ResNetLite;
use crate::{Network, Result};

/// A deeper residual CNN with a many-class softmax head, standing in for
/// the Inception-ResNet-v1 face-recognition model of the paper's
/// FaceScrub experiment (Table IV / Fig. 5).
///
/// Architecturally this is a [`ResNetLite`] with one extra stage and wider
/// late layers — what matters for the reproduction is (a) a many-class
/// recognition task and (b) abundant late-layer weight capacity for face
/// encoding, both of which this configuration provides.
///
/// # Examples
///
/// ```
/// use qce_nn::models::FaceNetLite;
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let net = FaceNetLite::build(1, 16, 40, 7)?;
/// assert!(net.num_weights() > 10_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaceNetLite;

impl FaceNetLite {
    /// Builds a face-recognition network for `identities` classes on
    /// square `input_size` images with `in_channels` channels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`](crate::NnError::InvalidConfig)
    /// for infeasible geometry (e.g. an input too small for the four
    /// downsampling stages).
    pub fn build(
        in_channels: usize,
        input_size: usize,
        identities: usize,
        seed: u64,
    ) -> Result<Network> {
        ResNetLite::builder()
            .input(in_channels, input_size)
            .classes(identities)
            .stage_channels(&[16, 32, 64])
            .blocks_per_stage(2)
            .build(seed)
    }

    /// A reduced configuration for fast tests and benches.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FaceNetLite::build`].
    pub fn small(
        in_channels: usize,
        input_size: usize,
        identities: usize,
        seed: u64,
    ) -> Result<Network> {
        ResNetLite::builder()
            .input(in_channels, input_size)
            .classes(identities)
            .stage_channels(&[8, 16, 32])
            .blocks_per_stage(1)
            .build(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use qce_tensor::Tensor;

    #[test]
    fn forward_shape_many_classes() {
        let mut net = FaceNetLite::small(1, 16, 45, 1).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[2, 1, 16, 16]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 45]);
    }

    #[test]
    fn full_model_has_more_capacity_than_small() {
        let full = FaceNetLite::build(1, 16, 40, 2).unwrap();
        let small = FaceNetLite::small(1, 16, 40, 2).unwrap();
        assert!(full.num_weights() > small.num_weights());
    }
}
