use std::fmt;

use qce_tensor::TensorError;

/// Error type for network construction, training and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed, annotated with the layer or
    /// stage in which it happened.
    Tensor {
        /// Layer or pipeline stage name.
        context: String,
        /// The underlying tensor error.
        source: TensorError,
    },
    /// `backward` was called before `forward` cached its activations.
    BackwardBeforeForward {
        /// The offending layer's name.
        layer: &'static str,
    },
    /// A label index is out of range for the classifier output width.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// Number of classes the model predicts.
        classes: usize,
    },
    /// The number of samples and labels disagree.
    SampleLabelMismatch {
        /// Number of input samples.
        samples: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A model builder was asked for an impossible configuration.
    InvalidConfig {
        /// Why the configuration is rejected.
        reason: String,
    },
    /// A flat weight vector had the wrong total length.
    WeightLengthMismatch {
        /// Expected flattened length.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// Training produced NaN/Inf state and the divergence guard's
    /// rollback budget is exhausted (or the guard is disabled).
    Diverged {
        /// Epoch index at which the final divergence happened.
        epoch: usize,
        /// How many rollbacks were attempted before giving up.
        rollbacks: usize,
    },
}

impl NnError {
    /// Wraps a tensor error with a named context.
    pub fn tensor(context: impl Into<String>, source: TensorError) -> Self {
        NnError::Tensor {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor { context, source } => write!(f, "{context}: {source}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward in layer {layer}")
            }
            NnError::InvalidLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::SampleLabelMismatch { samples, labels } => {
                write!(f, "{samples} samples but {labels} labels")
            }
            NnError::InvalidConfig { reason } => write!(f, "invalid model config: {reason}"),
            NnError::WeightLengthMismatch { expected, actual } => {
                write!(f, "flat weight vector length {actual}, expected {expected}")
            }
            NnError::Diverged { epoch, rollbacks } => write!(
                f,
                "training diverged at epoch {epoch} after {rollbacks} rollback(s)"
            ),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = NnError::tensor("conv1", TensorError::EmptyShape);
        assert!(e.to_string().starts_with("conv1:"));
        assert!(NnError::BackwardBeforeForward { layer: "relu" }
            .to_string()
            .contains("relu"));
        assert!(NnError::InvalidLabel {
            label: 11,
            classes: 10
        }
        .to_string()
        .contains("11"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
