//! Parameter optimizers.

use qce_tensor::Tensor;

use crate::{Param, ParamKind};

/// Stochastic gradient descent with classical momentum and decoupled
/// weight decay.
///
/// Velocity buffers are allocated lazily on the first step and keyed by
/// parameter position, so the optimizer must always be fed the same
/// parameter list (as produced by
/// [`Network::params_mut`](crate::Network::params_mut)).
///
/// # Examples
///
/// ```
/// use qce_nn::{Param, ParamKind, Sgd};
/// use qce_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::from_slice(&[1.0]), ParamKind::Weight);
/// p.grad_mut().as_mut_slice()[0] = 0.5;
/// let mut sgd = Sgd::new(0.1);
/// sgd.step(&mut [&mut p]);
/// assert!((p.value().as_slice()[0] - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate (no momentum, no decay).
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum and weight decay.
    ///
    /// Weight decay applies only to [`ParamKind::Weight`] parameters, the
    /// usual convention (biases and batch-norm affines are exempt).
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (used by schedules between epochs).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to `params` using their accumulated
    /// gradients. Gradients are *not* cleared; call
    /// [`Network::zero_grad`](crate::Network::zero_grad) before the next
    /// accumulation.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list length changes between steps.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value().dims()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "optimizer was initialized with a different parameter list"
        );
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            let decay = if p.kind() == ParamKind::Weight {
                self.weight_decay
            } else {
                0.0
            };
            let lr = self.lr;
            let momentum = self.momentum;
            let value = p.value().as_slice().to_vec();
            let grad = p.grad().as_slice().to_vec();
            let vv = v.as_mut_slice();
            let pv = p.value_mut().as_mut_slice();
            for i in 0..pv.len() {
                let g = grad[i] + decay * value[i];
                vv[i] = momentum * vv[i] + g;
                pv[i] -= lr * vv[i];
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba) with decoupled weight decay on
/// `Weight`-kind parameters (AdamW-style).
///
/// Provided as an alternative to [`Sgd`] for workloads where the
/// correlation regularizer's gradient scale differs strongly across
/// layers; Adam's per-parameter normalization equalizes it.
///
/// # Examples
///
/// ```
/// use qce_nn::optim::Adam;
/// use qce_nn::{Param, ParamKind};
/// use qce_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::from_slice(&[1.0]), ParamKind::Weight);
/// p.grad_mut().as_mut_slice()[0] = 0.5;
/// let mut adam = Adam::new(0.1);
/// adam.step(&mut [&mut p]);
/// assert!(p.value().as_slice()[0] < 1.0); // moved against the gradient
/// ```
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the conventional β₁ = 0.9, β₂ = 0.999, ε = 1e-8 and no
    /// weight decay.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with decoupled weight decay on `Weight`-kind parameters.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Adam {
            weight_decay,
            ..Adam::new(lr)
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one Adam update step; see [`Sgd::step`] for the parameter
    /// identity contract.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list length changes between steps.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value().dims()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value().dims()))
                .collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "optimizer was initialized with a different parameter list"
        );
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for ((p, m), v) in params
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            let grad = p.grad().as_slice().to_vec();
            let decay = if p.kind() == ParamKind::Weight {
                self.weight_decay
            } else {
                0.0
            };
            let mv = m.as_mut_slice();
            let vv = v.as_mut_slice();
            let pv = p.value_mut().as_mut_slice();
            for i in 0..pv.len() {
                mv[i] = self.beta1 * mv[i] + (1.0 - self.beta1) * grad[i];
                vv[i] = self.beta2 * vv[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let m_hat = mv[i] / bc1;
                let v_hat = vv[i] / bc2;
                pv[i] -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + decay * pv[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(vals: &[f32], grads: &[f32], kind: ParamKind) -> Param {
        let mut p = Param::new(Tensor::from_slice(vals), kind);
        p.grad_mut().as_mut_slice().copy_from_slice(grads);
        p
    }

    #[test]
    fn plain_sgd_step() {
        let mut p = param(&[1.0, -2.0], &[0.5, -0.5], ParamKind::Weight);
        let mut sgd = Sgd::new(0.2);
        sgd.step(&mut [&mut p]);
        assert_eq!(p.value().as_slice(), &[0.9, -1.9]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut p = param(&[0.0], &[1.0], ParamKind::Weight);
        let mut sgd = Sgd::with_momentum(1.0, 0.5, 0.0);
        sgd.step(&mut [&mut p]); // v=1, w=-1
        assert_eq!(p.value().as_slice(), &[-1.0]);
        sgd.step(&mut [&mut p]); // v=1.5, w=-2.5
        assert_eq!(p.value().as_slice(), &[-2.5]);
    }

    #[test]
    fn weight_decay_only_on_weights() {
        let mut w = param(&[1.0], &[0.0], ParamKind::Weight);
        let mut b = param(&[1.0], &[0.0], ParamKind::Bias);
        let mut sgd = Sgd::with_momentum(0.1, 0.0, 0.1);
        sgd.step(&mut [&mut w, &mut b]);
        assert!((w.value().as_slice()[0] - 0.99).abs() < 1e-6);
        assert_eq!(b.value().as_slice()[0], 1.0);
    }

    #[test]
    fn set_lr_changes_step_size() {
        let mut p = param(&[0.0], &[1.0], ParamKind::Weight);
        let mut sgd = Sgd::new(1.0);
        sgd.set_lr(0.1);
        assert_eq!(sgd.lr(), 0.1);
        sgd.step(&mut [&mut p]);
        assert!((p.value().as_slice()[0] + 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "different parameter list")]
    fn param_list_length_change_panics() {
        let mut a = param(&[0.0], &[0.0], ParamKind::Weight);
        let mut b = param(&[0.0], &[0.0], ParamKind::Weight);
        let mut sgd = Sgd::new(0.1);
        sgd.step(&mut [&mut a, &mut b]);
        sgd.step(&mut [&mut a]);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ~lr * sign(grad).
        let mut p = param(&[0.0], &[0.25], ParamKind::Weight);
        let mut adam = Adam::new(0.01);
        adam.step(&mut [&mut p]);
        assert!((p.value().as_slice()[0] + 0.01).abs() < 1e-4);
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        // f(x) = (x - 3)^2, grad = 2(x - 3).
        let mut p = param(&[0.0], &[0.0], ParamKind::Weight);
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            let x = p.value().as_slice()[0];
            p.zero_grad();
            p.grad_mut().as_mut_slice()[0] = 2.0 * (x - 3.0);
            adam.step(&mut [&mut p]);
        }
        let x = p.value().as_slice()[0];
        assert!((x - 3.0).abs() < 0.05, "converged to {x}");
    }

    #[test]
    fn adam_weight_decay_targets_weights_only() {
        let mut w = param(&[1.0], &[0.0], ParamKind::Weight);
        let mut b = param(&[1.0], &[0.0], ParamKind::Bias);
        let mut adam = Adam::with_weight_decay(0.1, 0.5);
        adam.step(&mut [&mut w, &mut b]);
        assert!(w.value().as_slice()[0] < 1.0);
        assert_eq!(b.value().as_slice()[0], 1.0);
    }

    #[test]
    fn adam_set_lr() {
        let mut adam = Adam::new(1.0);
        adam.set_lr(0.5);
        assert_eq!(adam.lr(), 0.5);
    }

    #[test]
    #[should_panic(expected = "different parameter list")]
    fn adam_param_list_change_panics() {
        let mut a = param(&[0.0], &[0.0], ParamKind::Weight);
        let mut b = param(&[0.0], &[0.0], ParamKind::Weight);
        let mut adam = Adam::new(0.1);
        adam.step(&mut [&mut a, &mut b]);
        adam.step(&mut [&mut a]);
    }
}
