//! Classification losses with analytic gradients.

use qce_tensor::{Tensor, TensorError};

use crate::{NnError, Result};

/// Output of [`softmax_cross_entropy`]: the scalar loss and the gradient
/// w.r.t. the logits.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient w.r.t. the logits, `[N, K]`, already divided by the batch
    /// size (so it feeds straight into `Network::backward`).
    pub grad: Tensor,
}

/// Numerically-stable softmax over the last axis of a `[N, K]` tensor.
///
/// # Errors
///
/// Returns an error if `logits` is not rank 2.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(NnError::tensor(
            "softmax",
            TensorError::RankMismatch {
                op: "softmax",
                expected: 2,
                actual: logits.shape().rank(),
            },
        ));
    }
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    let lv = logits.as_slice();
    let mut out = vec![0.0f32; n * k];
    for i in 0..n {
        let row = &lv[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (j, &x) in row.iter().enumerate() {
            let e = (x - max).exp();
            out[i * k + j] = e;
            denom += e;
        }
        for v in &mut out[i * k..(i + 1) * k] {
            *v /= denom;
        }
    }
    Tensor::from_vec(out, &[n, k]).map_err(|e| NnError::tensor("softmax", e))
}

/// Mean softmax cross-entropy over a batch, with the gradient w.r.t. the
/// logits.
///
/// # Errors
///
/// Returns [`NnError::SampleLabelMismatch`] if `labels.len()` differs from
/// the batch size, or [`NnError::InvalidLabel`] if any label is out of
/// range.
///
/// # Examples
///
/// ```
/// use qce_nn::loss::softmax_cross_entropy;
/// use qce_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2])?;
/// let out = softmax_cross_entropy(&logits, &[0, 1])?;
/// assert!(out.loss < 1e-3); // confident and correct
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    let probs = softmax(logits)?;
    let (n, k) = (probs.dims()[0], probs.dims()[1]);
    if labels.len() != n {
        return Err(NnError::SampleLabelMismatch {
            samples: n,
            labels: labels.len(),
        });
    }
    let pv = probs.as_slice();
    let mut loss = 0.0f64;
    let mut grad = pv.to_vec();
    let inv_n = 1.0 / n as f32;
    for (i, &label) in labels.iter().enumerate() {
        if label >= k {
            return Err(NnError::InvalidLabel { label, classes: k });
        }
        let p = pv[i * k + label].max(1e-12);
        loss -= (p as f64).ln();
        grad[i * k + label] -= 1.0;
    }
    for g in &mut grad {
        *g *= inv_n;
    }
    Ok(LossOutput {
        loss: (loss / n as f64) as f32,
        grad: Tensor::from_vec(grad, &[n, k]).map_err(|e| NnError::tensor("cross_entropy", e))?,
    })
}

impl From<Tensor> for LossOutput {
    fn from(grad: Tensor) -> Self {
        LossOutput { loss: 0.0, grad }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax(&logits).unwrap();
        for i in 0..2 {
            let s: f32 = p.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![1001.0, 1002.0], &[1, 2]).unwrap();
        let pa = softmax(&a).unwrap();
        let pb = softmax(&b).unwrap();
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn uniform_logits_give_ln_k_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 3, 5, 9]).unwrap();
        assert!((out.loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, 0.9, -0.2], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for probe in 0..6 {
            let orig = logits.as_slice()[probe];
            logits.as_mut_slice()[probe] = orig + eps;
            let hi = softmax_cross_entropy(&logits, &labels).unwrap().loss;
            logits.as_mut_slice()[probe] = orig - eps;
            let lo = softmax_cross_entropy(&logits, &labels).unwrap().loss;
            logits.as_mut_slice()[probe] = orig;
            let fd = (hi - lo) / (2.0 * eps);
            let an = out.grad.as_slice()[probe];
            assert!((fd - an).abs() < 1e-3, "probe {probe}: fd={fd} an={an}");
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, -2.0, 0.3, 0.4], &[2, 2]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        for i in 0..2 {
            let s: f32 = out.grad.as_slice()[i * 2..(i + 1) * 2].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn label_validation() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0]),
            Err(NnError::SampleLabelMismatch { .. })
        ));
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0, 3]),
            Err(NnError::InvalidLabel {
                label: 3,
                classes: 3
            })
        ));
    }
}
