use qce_tensor::{Tensor, TensorError};

use crate::{Layer, Mode, NnError, Param, ParamKind, Result};

/// Per-channel batch normalization for `[N, C, H, W]` activations.
///
/// In [`Mode::Train`] the layer normalizes with batch statistics and
/// updates exponential running statistics; in [`Mode::Eval`] it uses the
/// frozen running statistics. The affine parameters γ/β are trainable but
/// carry [`ParamKind::Gamma`]/[`ParamKind::Beta`], so the attack and the
/// quantizers skip them.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps with the
    /// conventional momentum 0.1 and epsilon 1e-5.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels]), ParamKind::Gamma),
            beta: Param::new(Tensor::zeros(&[channels]), ParamKind::Beta),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels this layer normalizes.
    pub fn channels(&self) -> usize {
        self.running_mean.len()
    }

    /// Reorders the channels so that new channel `i` normalizes what old
    /// channel `perm[i]` did: γ/β (values and gradients) and both running
    /// statistics move together.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `perm` is not a permutation
    /// of `0..channels`.
    pub fn permute_channels(&mut self, perm: &[usize]) -> Result<()> {
        use super::conv::{check_permutation, permute_chunks};
        check_permutation(perm, self.channels(), "batchnorm2d channel")?;
        permute_chunks(self.gamma.value_mut().as_mut_slice(), perm, 1, 1);
        permute_chunks(self.gamma.grad_mut().as_mut_slice(), perm, 1, 1);
        permute_chunks(self.beta.value_mut().as_mut_slice(), perm, 1, 1);
        permute_chunks(self.beta.grad_mut().as_mut_slice(), perm, 1, 1);
        permute_chunks(&mut self.running_mean, perm, 1, 1);
        permute_chunks(&mut self.running_var, perm, 1, 1);
        Ok(())
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.shape().rank() != 4 {
            return Err(NnError::tensor(
                "batchnorm2d",
                TensorError::RankMismatch {
                    op: "batchnorm2d forward",
                    expected: 4,
                    actual: input.shape().rank(),
                },
            ));
        }
        if input.dims()[1] != self.channels() {
            return Err(NnError::tensor(
                "batchnorm2d",
                TensorError::ShapeMismatch {
                    op: "batchnorm2d channels",
                    lhs: vec![self.channels()],
                    rhs: input.dims().to_vec(),
                },
            ));
        }
        Ok(())
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.check_input(input)?;
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let plane = h * w;
        let m = (n * plane) as f32;
        let iv = input.as_slice();
        let gamma = self.gamma.value().as_slice().to_vec();
        let beta = self.beta.value().as_slice().to_vec();
        let mut out = vec![0.0f32; iv.len()];

        match mode {
            Mode::Train => {
                let mut xhat = vec![0.0f32; iv.len()];
                let mut inv_std = vec![0.0f32; c];
                for ch in 0..c {
                    // Batch statistics over N x H x W for this channel.
                    let mut sum = 0.0f64;
                    let mut sq = 0.0f64;
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        for &x in &iv[base..base + plane] {
                            sum += x as f64;
                            sq += (x as f64) * (x as f64);
                        }
                    }
                    let mean = (sum / m as f64) as f32;
                    let var = ((sq / m as f64) - (sum / m as f64).powi(2)).max(0.0) as f32;
                    let istd = 1.0 / (var + self.eps).sqrt();
                    inv_std[ch] = istd;
                    self.running_mean[ch] =
                        (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                    self.running_var[ch] =
                        (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        for i in base..base + plane {
                            let xh = (iv[i] - mean) * istd;
                            xhat[i] = xh;
                            out[i] = gamma[ch] * xh + beta[ch];
                        }
                    }
                }
                self.cache = Some(BnCache {
                    xhat: Tensor::from_vec(xhat, input.dims())
                        .map_err(|e| NnError::tensor("batchnorm2d cache", e))?,
                    inv_std,
                    dims: input.dims().to_vec(),
                });
            }
            Mode::Eval => {
                for ch in 0..c {
                    let istd = 1.0 / (self.running_var[ch] + self.eps).sqrt();
                    let mean = self.running_mean[ch];
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        for i in base..base + plane {
                            out[i] = gamma[ch] * (iv[i] - mean) * istd + beta[ch];
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, input.dims()).map_err(|e| NnError::tensor("batchnorm2d", e))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::BackwardBeforeForward {
            layer: "batchnorm2d",
        })?;
        if grad_out.dims() != cache.dims.as_slice() {
            return Err(NnError::tensor(
                "batchnorm2d",
                TensorError::ShapeMismatch {
                    op: "batchnorm2d backward",
                    lhs: cache.dims.clone(),
                    rhs: grad_out.dims().to_vec(),
                },
            ));
        }
        let (n, c, h, w) = (cache.dims[0], cache.dims[1], cache.dims[2], cache.dims[3]);
        let plane = h * w;
        let m = (n * plane) as f32;
        let gv = grad_out.as_slice();
        let xh = cache.xhat.as_slice();
        let gamma = self.gamma.value().as_slice().to_vec();
        let mut grad_in = vec![0.0f32; gv.len()];

        let dgamma = self.gamma.grad_mut().as_mut_slice();
        let mut dgamma_local = vec![0.0f32; c];
        let mut dbeta_local = vec![0.0f32; c];
        for ch in 0..c {
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for s in 0..n {
                let base = (s * c + ch) * plane;
                for i in base..base + plane {
                    sum_dy += gv[i] as f64;
                    sum_dy_xhat += (gv[i] * xh[i]) as f64;
                }
            }
            dgamma_local[ch] = sum_dy_xhat as f32;
            dbeta_local[ch] = sum_dy as f32;
            let istd = cache.inv_std[ch];
            let k1 = sum_dy as f32 / m;
            let k2 = sum_dy_xhat as f32 / m;
            for s in 0..n {
                let base = (s * c + ch) * plane;
                for i in base..base + plane {
                    grad_in[i] = gamma[ch] * istd * (gv[i] - k1 - xh[i] * k2);
                }
            }
        }
        for (d, l) in dgamma.iter_mut().zip(dgamma_local.iter()) {
            *d += l;
        }
        for (d, l) in self
            .beta
            .grad_mut()
            .as_mut_slice()
            .iter_mut()
            .zip(dbeta_local.iter())
        {
            *d += l;
        }
        Tensor::from_vec(grad_in, &cache.dims).map_err(|e| NnError::tensor("batchnorm2d", e))
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn buffers(&self) -> Vec<&[f32]> {
        vec![&self.running_mean, &self.running_var]
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        vec![&mut self.running_mean, &mut self.running_var]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_tensor::init;

    #[test]
    fn train_forward_normalizes_batch() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = init::seeded_rng(1);
        let x = init::uniform(&[4, 2, 3, 3], -2.0, 5.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per channel: mean ~0, var ~1 (gamma=1, beta=0 at init).
        for ch in 0..2 {
            let mut vals = Vec::new();
            for s in 0..4 {
                for i in 0..9 {
                    vals.push(y.as_slice()[(s * 2 + ch) * 9 + i]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn permute_channels_moves_affine_params_and_running_stats() {
        let mut bn = BatchNorm2d::new(3);
        bn.params_mut()[0]
            .value_mut()
            .as_mut_slice()
            .copy_from_slice(&[1.0, 2.0, 3.0]);
        bn.buffers_mut()[0].copy_from_slice(&[0.1, 0.2, 0.3]);
        bn.permute_channels(&[2, 0, 1]).unwrap();
        assert_eq!(bn.params()[0].value().as_slice(), &[3.0, 1.0, 2.0]);
        assert_eq!(bn.buffers()[0], &[0.3f32, 0.1, 0.2][..]);
        assert!(bn.permute_channels(&[0, 1]).is_err());
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = init::seeded_rng(2);
        // Several training batches to converge running stats.
        for _ in 0..200 {
            let x = init::uniform(&[8, 1, 2, 2], 4.0, 6.0, &mut rng);
            bn.forward(&x, Mode::Train).unwrap();
        }
        // Eval on data with the same distribution: output should be ~N(0,1).
        let x = init::uniform(&[64, 1, 2, 2], 4.0, 6.0, &mut rng);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        assert!(y.mean().abs() < 0.2, "mean {}", y.mean());
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = init::seeded_rng(3);
        let mut x = init::uniform(&[2, 2, 2, 2], -1.0, 1.0, &mut rng);
        // Non-trivial gamma so the affine path is exercised.
        bn.params_mut()[0].value_mut().as_mut_slice()[0] = 1.5;
        bn.params_mut()[0].value_mut().as_mut_slice()[1] = 0.7;

        // Loss = weighted sum to give non-uniform grad_out.
        let weights: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
        let loss = |t: &Tensor| -> f32 {
            t.as_slice()
                .iter()
                .zip(weights.iter())
                .map(|(&a, &b)| a * b)
                .sum()
        };

        let y = bn.forward(&x, Mode::Train).unwrap();
        let grad_out = Tensor::from_vec(weights.clone(), y.dims()).unwrap();
        let grad_in = bn.backward(&grad_out).unwrap();

        let eps = 1e-2;
        for probe in [0usize, 5, 11, 15] {
            let orig = x.as_slice()[probe];
            x.as_mut_slice()[probe] = orig + eps;
            let hi = loss(&bn.forward(&x, Mode::Train).unwrap());
            x.as_mut_slice()[probe] = orig - eps;
            let lo = loss(&bn.forward(&x, Mode::Train).unwrap());
            x.as_mut_slice()[probe] = orig;
            let fd = (hi - lo) / (2.0 * eps);
            let an = grad_in.as_slice()[probe];
            assert!((fd - an).abs() < 2e-2, "probe {probe}: fd={fd} an={an}");
        }
    }

    #[test]
    fn gamma_beta_gradients() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = init::seeded_rng(4);
        let x = init::uniform(&[2, 1, 2, 2], -1.0, 1.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        bn.backward(&Tensor::ones(y.dims())).unwrap();
        // dbeta = sum(grad_out) = 8 for all-ones gradient.
        assert!((bn.params()[1].grad().as_slice()[0] - 8.0).abs() < 1e-5);
        // dgamma = sum(grad_out * xhat) ~ sum(xhat) ~ 0 (normalized batch).
        assert!(bn.params()[0].grad().as_slice()[0].abs() < 1e-3);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn
            .forward(&Tensor::zeros(&[1, 2, 2, 2]), Mode::Eval)
            .is_err());
    }

    #[test]
    fn params_are_gamma_beta_kinds() {
        let bn = BatchNorm2d::new(2);
        assert_eq!(bn.params()[0].kind(), ParamKind::Gamma);
        assert_eq!(bn.params()[1].kind(), ParamKind::Beta);
    }
}
