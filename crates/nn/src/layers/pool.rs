use qce_tensor::conv::{
    global_avg_pool, global_avg_pool_backward, max_pool2d, max_pool2d_backward, ConvGeometry,
};
use qce_tensor::Tensor;

use crate::{Layer, Mode, NnError, Result};

/// 2-D max pooling over square windows.
///
/// # Examples
///
/// ```
/// use qce_nn::layers::MaxPool2d;
/// use qce_nn::{Layer, Mode};
/// use qce_tensor::Tensor;
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let mut pool = MaxPool2d::new(2, 2);
/// let y = pool.forward(&Tensor::ones(&[1, 1, 4, 4]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[1, 1, 2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    geometry: ConvGeometry,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input dims)
}

impl MaxPool2d {
    /// Creates a max pool with a `k`×`k` window and the given stride.
    pub fn new(k: usize, stride: usize) -> Self {
        MaxPool2d {
            k,
            geometry: ConvGeometry::new(stride, 0),
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let pooled = max_pool2d(input, self.k, self.geometry)
            .map_err(|e| NnError::tensor(self.name(), e))?;
        if mode == Mode::Train {
            self.cache = Some((pooled.argmax, input.dims().to_vec()));
        }
        Ok(pooled.output)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (argmax, dims) = self.cache.as_ref().ok_or(NnError::BackwardBeforeForward {
            layer: "max_pool2d",
        })?;
        max_pool2d_backward(grad_out, argmax, dims).map_err(|e| NnError::tensor(self.name(), e))
    }
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
///
/// Used as the classifier head's spatial reduction in
/// [`ResNetLite`](crate::models::ResNetLite).
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        GlobalAvgPool { input_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = global_avg_pool(input).map_err(|e| NnError::tensor(self.name(), e))?;
        if mode == Mode::Train {
            self.input_dims = Some(input.dims().to_vec());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "global_avg_pool",
            })?;
        global_avg_pool_backward(grad_out, dims).map_err(|e| NnError::tensor(self.name(), e))
    }
}

/// Windowed average pooling over square `k`×`k` windows.
///
/// Unlike [`MaxPool2d`] the gradient spreads uniformly over each window,
/// so no argmax cache is needed — only the input geometry.
#[derive(Debug)]
pub struct AvgPool2d {
    k: usize,
    geometry: ConvGeometry,
    input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average pool with a `k`×`k` window and the given stride.
    pub fn new(k: usize, stride: usize) -> Self {
        AvgPool2d {
            k,
            geometry: ConvGeometry::new(stride, 0),
            input_dims: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &'static str {
        "avg_pool2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.shape().rank() != 4 {
            return Err(NnError::tensor(
                "avg_pool2d",
                qce_tensor::TensorError::RankMismatch {
                    op: "avg_pool2d forward",
                    expected: 4,
                    actual: input.shape().rank(),
                },
            ));
        }
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let ho = self
            .geometry
            .output_extent(h, self.k)
            .map_err(|e| NnError::tensor("avg_pool2d", e))?;
        let wo = self
            .geometry
            .output_extent(w, self.k)
            .map_err(|e| NnError::tensor("avg_pool2d", e))?;
        let area = (self.k * self.k) as f32;
        let iv = input.as_slice();
        let mut out = vec![0.0f32; n * c * ho * wo];
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0f32;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let iy = oy * self.geometry.stride + ky;
                                let ix = ox * self.geometry.stride + kx;
                                acc += iv[base + iy * w + ix];
                            }
                        }
                        out[((s * c + ch) * ho + oy) * wo + ox] = acc / area;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.input_dims = Some(input.dims().to_vec());
        }
        Tensor::from_vec(out, &[n, c, ho, wo]).map_err(|e| NnError::tensor("avg_pool2d", e))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "avg_pool2d",
            })?;
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (ho, wo) = (grad_out.dims()[2], grad_out.dims()[3]);
        let area = (self.k * self.k) as f32;
        let gv = grad_out.as_slice();
        let mut grad_in = vec![0.0f32; n * c * h * w];
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                for oy in 0..ho {
                    for ox in 0..wo {
                        let g = gv[((s * c + ch) * ho + oy) * wo + ox] / area;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let iy = oy * self.geometry.stride + ky;
                                let ix = ox * self.geometry.stride + kx;
                                grad_in[base + iy * w + ix] += g;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(grad_in, dims).map_err(|e| NnError::tensor("avg_pool2d", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_forward_backward() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        let g = pool
            .backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap())
            .unwrap();
        assert_eq!(g.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(g.at(&[0, 0, 3, 3]), 4.0);
        assert_eq!(g.sum(), 10.0);
    }

    #[test]
    fn global_avg_pool_forward_backward() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[4.0]);
        let g = pool
            .backward(&Tensor::from_vec(vec![8.0], &[1, 1]).unwrap())
            .unwrap();
        assert!(g.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn backward_requires_forward() {
        let mut a = MaxPool2d::new(2, 2);
        assert!(a.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
        let mut b = GlobalAvgPool::new();
        assert!(b.backward(&Tensor::zeros(&[1, 1])).is_err());
        let mut c = AvgPool2d::new(2, 2);
        assert!(c.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn avg_pool_forward_means_windows() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
        // Backward spreads each gradient uniformly over its window.
        let g = pool
            .backward(&Tensor::from_vec(vec![4.0, 8.0, 12.0, 16.0], &[1, 1, 2, 2]).unwrap())
            .unwrap();
        assert_eq!(g.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(g.at(&[0, 0, 0, 2]), 2.0);
        assert_eq!(g.at(&[0, 0, 2, 0]), 3.0);
        assert_eq!(g.at(&[0, 0, 3, 3]), 4.0);
        assert_eq!(g.sum(), 40.0);
    }

    #[test]
    fn avg_pool_matches_finite_difference() {
        let mut pool = AvgPool2d::new(2, 1); // overlapping windows
        let mut rng = qce_tensor::init::seeded_rng(7);
        let mut x = qce_tensor::init::uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut rng);
        let y = pool.forward(&x, Mode::Train).unwrap();
        let grad = pool.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2;
        for probe in [0usize, 5, 10, 15] {
            let orig = x.as_slice()[probe];
            x.as_mut_slice()[probe] = orig + eps;
            let hi = pool.forward(&x, Mode::Eval).unwrap().sum();
            x.as_mut_slice()[probe] = orig - eps;
            let lo = pool.forward(&x, Mode::Eval).unwrap().sum();
            x.as_mut_slice()[probe] = orig;
            let fd = (hi - lo) / (2.0 * eps);
            assert!((fd - grad.as_slice()[probe]).abs() < 1e-3);
        }
    }
}
