use qce_tensor::Tensor;

use crate::{Layer, Mode, NnError, Result};

/// Flattens `[N, ...]` to `[N, prod(...)]`, preserving the batch dimension.
///
/// # Examples
///
/// ```
/// use qce_nn::layers::Flatten;
/// use qce_nn::{Layer, Mode};
/// use qce_tensor::Tensor;
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let mut flat = Flatten::new();
/// let y = flat.forward(&Tensor::zeros(&[2, 3, 4, 4]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[2, 48]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.shape().rank() == 0 {
            return Err(NnError::tensor(
                "flatten",
                qce_tensor::TensorError::RankMismatch {
                    op: "flatten forward",
                    expected: 2,
                    actual: 0,
                },
            ));
        }
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        let out = input
            .reshape(&[n, rest])
            .map_err(|e| NnError::tensor("flatten", e))?;
        if mode == Mode::Train {
            self.input_dims = Some(input.dims().to_vec());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "flatten" })?;
        grad_out
            .reshape(dims)
            .map_err(|e| NnError::tensor("flatten", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let y = f.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let g = f.backward(&y).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn backward_requires_forward() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[1, 4])).is_err());
    }
}
