use qce_tensor::Tensor;

use crate::{Layer, Mode, NnError, Result};

/// Rectified linear unit, applied elementwise to any tensor shape.
///
/// # Examples
///
/// ```
/// use qce_nn::layers::ReLU;
/// use qce_nn::{Layer, Mode};
/// use qce_tensor::Tensor;
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let mut relu = ReLU::new();
/// let y = relu.forward(&Tensor::from_slice(&[-1.0, 2.0]), Mode::Eval)?;
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Layer for ReLU {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = input.map(|x| x.max(0.0));
        if mode == Mode::Train {
            self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "relu" })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::tensor(
                "relu",
                qce_tensor::TensorError::LengthMismatch {
                    expected: mask.len(),
                    actual: grad_out.len(),
                },
            ));
        }
        let mut grad_in = grad_out.clone();
        for (g, &m) in grad_in.as_mut_slice().iter_mut().zip(mask.iter()) {
            if !m {
                *g = 0.0;
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = ReLU::new();
        let y = relu
            .forward(&Tensor::from_slice(&[-2.0, 0.0, 3.0]), Mode::Eval)
            .unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = ReLU::new();
        relu.forward(&Tensor::from_slice(&[-1.0, 2.0, 0.0]), Mode::Train)
            .unwrap();
        let g = relu
            .backward(&Tensor::from_slice(&[5.0, 5.0, 5.0]))
            .unwrap();
        // Gradient passes only where input was strictly positive.
        assert_eq!(g.as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn backward_without_forward_fails() {
        let mut relu = ReLU::new();
        assert!(matches!(
            relu.backward(&Tensor::from_slice(&[1.0])),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn backward_rejects_length_mismatch() {
        let mut relu = ReLU::new();
        relu.forward(&Tensor::from_slice(&[1.0, 1.0]), Mode::Train)
            .unwrap();
        assert!(relu.backward(&Tensor::from_slice(&[1.0])).is_err());
    }

    #[test]
    fn no_params() {
        let relu = ReLU::new();
        assert!(relu.params().is_empty());
    }
}
