use qce_tensor::Tensor;
use rand::rngs::StdRng;

use crate::{Layer, Mode, NnError, Param, Result, WeightSymmetry};

/// A composite layer running an ordered list of sub-layers — lets model
/// builders treat a whole stage as one [`Layer`].
///
/// # Examples
///
/// ```
/// use qce_nn::layers::{Linear, ReLU, Sequential};
/// use qce_nn::{Layer, Mode};
/// use qce_tensor::{init, Tensor};
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let mut rng = init::seeded_rng(0);
/// let mut block = Sequential::new(vec![
///     Box::new(Linear::new(4, 8, &mut rng)),
///     Box::new(ReLU::new()),
///     Box::new(Linear::new(8, 2, &mut rng)),
/// ]);
/// let y = block.forward(&Tensor::zeros(&[3, 4]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    ran_forward: bool,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field(
                "layers",
                &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Sequential {
    /// Creates a sequential block from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential {
            layers,
            ran_forward: false,
        }
    }

    /// Number of sub-layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the block has no sub-layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Appends a layer to the end of the block.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }
}

impl Layer for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        if mode == Mode::Train {
            self.ran_forward = true;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if !self.ran_forward {
            return Err(NnError::BackwardBeforeForward {
                layer: "sequential",
            });
        }
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn buffers(&self) -> Vec<&[f32]> {
        self.layers.iter().flat_map(|l| l.buffers()).collect()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.buffers_mut())
            .collect()
    }

    fn permute_hidden_channels(&mut self, rng: &mut StdRng) -> usize {
        self.layers
            .iter_mut()
            .map(|l| l.permute_hidden_channels(rng))
            .sum()
    }

    fn weight_symmetries(&self) -> Vec<WeightSymmetry> {
        self.layers
            .iter()
            .flat_map(|l| l.weight_symmetries())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Conv2d, Linear, ReLU};
    use qce_tensor::conv::ConvGeometry;
    use qce_tensor::init;

    fn block(seed: u64) -> Sequential {
        let mut rng = init::seeded_rng(seed);
        Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, 3, ConvGeometry::new(1, 1), &mut rng)),
            Box::new(BatchNorm2d::new(2)),
            Box::new(ReLU::new()),
        ])
    }

    #[test]
    fn forward_backward_chain() {
        let mut b = block(1);
        let x = init::uniform(&[2, 1, 4, 4], -1.0, 1.0, &mut init::seeded_rng(2));
        let y = b.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 2, 4, 4]);
        let g = b.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        // Conv weights received gradient.
        assert!(b.params()[0].grad().squared_norm() > 0.0);
    }

    #[test]
    fn aggregates_params_and_buffers() {
        let b = block(3);
        // Conv (w, b) + BN (gamma, beta) = 4 params; BN = 2 buffers.
        assert_eq!(b.params().len(), 4);
        assert_eq!(b.buffers().len(), 2);
    }

    #[test]
    fn push_extends_block() {
        let mut rng = init::seeded_rng(4);
        let mut b = Sequential::new(vec![Box::new(Linear::new(4, 4, &mut rng))]);
        assert_eq!(b.len(), 1);
        b.push(Box::new(ReLU::new()));
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn backward_before_forward_rejected() {
        let mut b = block(5);
        assert!(matches!(
            b.backward(&Tensor::zeros(&[1, 2, 4, 4])),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn debug_lists_sublayers() {
        let b = block(6);
        let s = format!("{b:?}");
        assert!(s.contains("conv2d"));
        assert!(s.contains("relu"));
    }
}
