use qce_tensor::Tensor;
use rand::RngExt;

use crate::{Layer, Mode, NnError, Result};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; evaluation is
/// the identity.
///
/// The mask stream is seeded at construction so training stays
/// deterministic (a fresh mask is drawn per forward pass from the owned
/// RNG).
///
/// # Examples
///
/// ```
/// use qce_nn::layers::Dropout;
/// use qce_nn::{Layer, Mode};
/// use qce_tensor::Tensor;
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let mut drop = Dropout::new(0.5, 1)?;
/// let x = Tensor::ones(&[1, 100]);
/// // Identity in eval mode.
/// assert_eq!(drop.forward(&x, Mode::Eval)?, x);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: rand::rngs::StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidConfig {
                reason: format!("dropout probability {p} outside [0, 1)"),
            });
        }
        Ok(Dropout {
            p,
            rng: qce_tensor::init::seeded_rng(seed),
            mask: None,
        })
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Eval || self.p == 0.0 {
            if mode == Mode::Train {
                self.mask = Some(vec![1.0; input.len()]);
            }
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.random_range(0.0f32..1.0) < self.p {
                    0.0
                } else {
                    scale
                }
            })
            .collect();
        let mut out = input.clone();
        for (o, &m) in out.as_mut_slice().iter_mut().zip(mask.iter()) {
            *o *= m;
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "dropout" })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::tensor(
                "dropout",
                qce_tensor::TensorError::LengthMismatch {
                    expected: mask.len(),
                    actual: grad_out.len(),
                },
            ));
        }
        let mut grad = grad_out.clone();
        for (g, &m) in grad.as_mut_slice().iter_mut().zip(mask.iter()) {
            *g *= m;
        }
        Ok(grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.8, 1).unwrap();
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(d.forward(&x, Mode::Eval).unwrap(), x);
    }

    #[test]
    fn train_zeroes_about_p_and_preserves_expectation() {
        let mut d = Dropout::new(0.5, 2).unwrap();
        let x = Tensor::ones(&[1, 10_000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.05);
        // Inverted scaling keeps the expectation ~1.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_routes_through_the_same_mask() {
        let mut d = Dropout::new(0.5, 3).unwrap();
        let x = Tensor::ones(&[1, 64]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones(&[1, 64])).unwrap();
        // Gradient is zero exactly where the output was zeroed.
        for (o, gr) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*o == 0.0, *gr == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut d = Dropout::new(0.0, 4).unwrap();
        let x = Tensor::from_slice(&[1.0, -2.0]);
        assert_eq!(d.forward(&x, Mode::Train).unwrap(), x);
        let g = d.backward(&Tensor::from_slice(&[3.0, 4.0])).unwrap();
        assert_eq!(g.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn invalid_probability_rejected() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
    }

    #[test]
    fn backward_before_forward_rejected() {
        let mut d = Dropout::new(0.3, 5).unwrap();
        assert!(d.backward(&Tensor::ones(&[2])).is_err());
    }
}
