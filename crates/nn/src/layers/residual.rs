use qce_tensor::conv::ConvGeometry;
use qce_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::layers::{BatchNorm2d, Conv2d, ReLU};
use crate::{Layer, Mode, NnError, Param, Result, WeightSymmetry};

/// A ResNet basic block: two 3×3 convolutions with batch norm and a
/// (possibly projected) shortcut connection.
///
/// ```text
/// x ── conv3x3(s) ─ bn ─ relu ─ conv3x3(1) ─ bn ──(+)── relu ── y
///  └───────────── identity or conv1x1(s)+bn ──────┘
/// ```
///
/// The projection shortcut is inserted automatically when the block changes
/// the channel count or strides. Parameter order is main path first, then
/// the projection — the order [`Network::weight_slots`](crate::Network)
/// uses to number convolution "layers" for the paper's layer groups.
#[derive(Debug)]
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: ReLU,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    relu_out: ReLU,
    cached_input: Option<Tensor>,
}

impl ResidualBlock {
    /// Creates a basic block mapping `in_channels` to `out_channels` with
    /// the given stride on the first convolution.
    pub fn new(in_channels: usize, out_channels: usize, stride: usize, rng: &mut StdRng) -> Self {
        let downsample = if stride != 1 || in_channels != out_channels {
            Some((
                Conv2d::new(
                    in_channels,
                    out_channels,
                    1,
                    ConvGeometry::new(stride, 0),
                    rng,
                ),
                BatchNorm2d::new(out_channels),
            ))
        } else {
            None
        };
        ResidualBlock {
            conv1: Conv2d::new(
                in_channels,
                out_channels,
                3,
                ConvGeometry::new(stride, 1),
                rng,
            ),
            bn1: BatchNorm2d::new(out_channels),
            relu1: ReLU::new(),
            conv2: Conv2d::new(out_channels, out_channels, 3, ConvGeometry::new(1, 1), rng),
            bn2: BatchNorm2d::new(out_channels),
            downsample,
            relu_out: ReLU::new(),
            cached_input: None,
        }
    }

    /// Whether the block carries a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.downsample.is_some()
    }
}

impl Layer for ResidualBlock {
    fn name(&self) -> &'static str {
        "residual_block"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut main = self.conv1.forward(input, mode)?;
        main = self.bn1.forward(&main, mode)?;
        main = self.relu1.forward(&main, mode)?;
        main = self.conv2.forward(&main, mode)?;
        main = self.bn2.forward(&main, mode)?;
        let shortcut = match &mut self.downsample {
            Some((conv, bn)) => {
                let s = conv.forward(input, mode)?;
                bn.forward(&s, mode)?
            }
            None => input.clone(),
        };
        let sum = main
            .add(&shortcut)
            .map_err(|e| NnError::tensor("residual add", e))?;
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        self.relu_out.forward(&sum, mode)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if self.cached_input.is_none() {
            return Err(NnError::BackwardBeforeForward {
                layer: "residual_block",
            });
        }
        let grad_sum = self.relu_out.backward(grad_out)?;
        // Main path.
        let mut g = self.bn2.backward(&grad_sum)?;
        g = self.conv2.backward(&g)?;
        g = self.relu1.backward(&g)?;
        g = self.bn1.backward(&g)?;
        let grad_main = self.conv1.backward(&g)?;
        // Shortcut path.
        let grad_shortcut = match &mut self.downsample {
            Some((conv, bn)) => {
                let g = bn.backward(&grad_sum)?;
                conv.backward(&g)?
            }
            None => grad_sum,
        };
        grad_main
            .add(&grad_shortcut)
            .map_err(|e| NnError::tensor("residual grad add", e))
    }

    fn params(&self) -> Vec<&Param> {
        let mut out = Vec::new();
        out.extend(self.conv1.params());
        out.extend(self.bn1.params());
        out.extend(self.conv2.params());
        out.extend(self.bn2.params());
        if let Some((conv, bn)) = &self.downsample {
            out.extend(conv.params());
            out.extend(bn.params());
        }
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        out.extend(self.conv1.params_mut());
        out.extend(self.bn1.params_mut());
        out.extend(self.conv2.params_mut());
        out.extend(self.bn2.params_mut());
        if let Some((conv, bn)) = &mut self.downsample {
            out.extend(conv.params_mut());
            out.extend(bn.params_mut());
        }
        out
    }

    fn buffers(&self) -> Vec<&[f32]> {
        let mut out = Vec::new();
        out.extend(self.bn1.buffers());
        out.extend(self.bn2.buffers());
        if let Some((_, bn)) = &self.downsample {
            out.extend(bn.buffers());
        }
        out
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut out = Vec::new();
        out.extend(self.bn1.buffers_mut());
        out.extend(self.bn2.buffers_mut());
        if let Some((_, bn)) = &mut self.downsample {
            out.extend(bn.buffers_mut());
        }
        out
    }

    /// Permutes the block's private channel space — the activations
    /// between `relu1` and `conv2` — by a random permutation drawn from
    /// `rng`: `conv1`'s output channels, `bn1`'s channels and `conv2`'s
    /// input channels move together, so the block computes the same
    /// function up to floating-point summation order. The shortcut path
    /// and `bn2` never see these channels and stay untouched.
    fn permute_hidden_channels(&mut self, rng: &mut StdRng) -> usize {
        let hidden = self.conv1.out_channels();
        let mut perm: Vec<usize> = (0..hidden).collect();
        perm.shuffle(rng);
        // The channel counts match by construction, so these cannot fail.
        self.conv1
            .permute_out_channels(&perm)
            .and_then(|()| self.bn1.permute_channels(&perm))
            .and_then(|()| self.conv2.permute_in_channels(&perm))
            .expect("residual block hidden-channel permutation is shape-consistent");
        hidden
    }

    fn weight_symmetries(&self) -> Vec<WeightSymmetry> {
        let mut out = vec![
            WeightSymmetry::PermutedRows,
            WeightSymmetry::PermutedInChunks,
        ];
        if self.downsample.is_some() {
            out.push(WeightSymmetry::Fixed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_tensor::init;

    #[test]
    fn identity_block_shapes() {
        let mut rng = init::seeded_rng(1);
        let mut block = ResidualBlock::new(4, 4, 1, &mut rng);
        assert!(!block.has_projection());
        let y = block
            .forward(&Tensor::zeros(&[2, 4, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 4, 8, 8]);
        assert_eq!(block.params().len(), 8);
    }

    #[test]
    fn projection_block_shapes() {
        let mut rng = init::seeded_rng(2);
        let mut block = ResidualBlock::new(4, 8, 2, &mut rng);
        assert!(block.has_projection());
        let y = block
            .forward(&Tensor::zeros(&[2, 4, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
        assert_eq!(block.params().len(), 12);
    }

    #[test]
    fn backward_produces_input_grad() {
        let mut rng = init::seeded_rng(3);
        let mut block = ResidualBlock::new(2, 4, 2, &mut rng);
        let x = init::uniform(&[1, 2, 6, 6], -1.0, 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        let g = block.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        // Conv weights should have received gradient.
        assert!(block.params()[0].grad().squared_norm() > 0.0);
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        let mut rng = init::seeded_rng(4);
        let mut block = ResidualBlock::new(2, 2, 1, &mut rng);
        let mut x = init::uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let weights: Vec<f32> = (0..32).map(|i| (i as f32 * 0.7).cos()).collect();
        let loss = |t: &Tensor| -> f32 {
            t.as_slice()
                .iter()
                .zip(weights.iter())
                .map(|(&a, &b)| a * b)
                .sum()
        };
        let y = block.forward(&x, Mode::Train).unwrap();
        let grad_out = Tensor::from_vec(weights.clone(), y.dims()).unwrap();
        let grad_in = block.backward(&grad_out).unwrap();

        let eps = 1e-2;
        for probe in [0usize, 9, 20, 31] {
            let orig = x.as_slice()[probe];
            x.as_mut_slice()[probe] = orig + eps;
            let hi = loss(&block.forward(&x, Mode::Train).unwrap());
            x.as_mut_slice()[probe] = orig - eps;
            let lo = loss(&block.forward(&x, Mode::Train).unwrap());
            x.as_mut_slice()[probe] = orig;
            let fd = (hi - lo) / (2.0 * eps);
            let an = grad_in.as_slice()[probe];
            // BatchNorm in train mode makes the finite-difference noisy;
            // accept a loose tolerance.
            assert!((fd - an).abs() < 5e-2, "probe {probe}: fd={fd} an={an}");
        }
    }

    #[test]
    fn backward_before_forward_rejected() {
        let mut rng = init::seeded_rng(5);
        let mut block = ResidualBlock::new(2, 2, 1, &mut rng);
        assert!(matches!(
            block.backward(&Tensor::zeros(&[1, 2, 4, 4])),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn hidden_channel_permutation_preserves_function() {
        let mut rng = init::seeded_rng(6);
        for (ic, oc, stride) in [(4, 4, 1), (4, 8, 2)] {
            let mut block = ResidualBlock::new(ic, oc, stride, &mut rng);
            let x = init::uniform(&[2, ic, 8, 8], -1.0, 1.0, &mut rng);
            // Move the running statistics off their init so the eval path
            // actually exercises them.
            block.forward(&x, Mode::Train).unwrap();
            let before = block.forward(&x, Mode::Eval).unwrap();
            let flat_before: Vec<f32> = block
                .params()
                .iter()
                .flat_map(|p| p.value().as_slice().to_vec())
                .collect();
            let mut perm_rng = init::seeded_rng(99);
            assert_eq!(block.permute_hidden_channels(&mut perm_rng), oc);
            let after = block.forward(&x, Mode::Eval).unwrap();
            let flat_after: Vec<f32> = block
                .params()
                .iter()
                .flat_map(|p| p.value().as_slice().to_vec())
                .collect();
            assert_ne!(flat_before, flat_after, "permutation must move weights");
            for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn weight_symmetries_match_weight_tensor_count() {
        let mut rng = init::seeded_rng(7);
        let plain = ResidualBlock::new(4, 4, 1, &mut rng);
        assert_eq!(
            plain.weight_symmetries(),
            vec![
                WeightSymmetry::PermutedRows,
                WeightSymmetry::PermutedInChunks
            ]
        );
        let projected = ResidualBlock::new(4, 8, 2, &mut rng);
        assert_eq!(
            projected.weight_symmetries(),
            vec![
                WeightSymmetry::PermutedRows,
                WeightSymmetry::PermutedInChunks,
                WeightSymmetry::Fixed
            ]
        );
    }
}
