//! Layer implementations: convolution, fully-connected, batch
//! normalization, activations, dropout, pooling, reshaping, residual and
//! sequential blocks.

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod elementwise;
mod flatten;
mod linear;
mod pool;
mod residual;
mod sequential;

pub use activation::ReLU;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use elementwise::{LeakyReLU, Sigmoid, Tanh};
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use residual::ResidualBlock;
pub use sequential::Sequential;
