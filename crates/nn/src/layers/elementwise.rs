use qce_tensor::Tensor;

use crate::{Layer, Mode, NnError, Result};

/// Elementwise sigmoid activation `σ(x) = 1 / (1 + e^-x)`.
///
/// # Examples
///
/// ```
/// use qce_nn::layers::Sigmoid;
/// use qce_nn::{Layer, Mode};
/// use qce_tensor::Tensor;
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let mut s = Sigmoid::new();
/// let y = s.forward(&Tensor::from_slice(&[0.0]), Mode::Eval)?;
/// assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Sigmoid { output: None }
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = input.map(|x| 1.0 / (1.0 + (-x).exp()));
        if mode == Mode::Train {
            self.output = Some(out.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let out = self
            .output
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "sigmoid" })?;
        // dσ/dx = σ(1 - σ)
        let local = out.map(|s| s * (1.0 - s));
        grad_out
            .mul(&local)
            .map_err(|e| NnError::tensor("sigmoid", e))
    }
}

/// Elementwise hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Tanh { output: None }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = input.map(f32::tanh);
        if mode == Mode::Train {
            self.output = Some(out.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let out = self
            .output
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "tanh" })?;
        // d tanh/dx = 1 - tanh²
        let local = out.map(|t| 1.0 - t * t);
        grad_out.mul(&local).map_err(|e| NnError::tensor("tanh", e))
    }
}

/// Leaky rectified linear unit: `x` for `x > 0`, `alpha * x` otherwise.
#[derive(Debug)]
pub struct LeakyReLU {
    alpha: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyReLU {
    /// Creates a leaky ReLU with negative-side slope `alpha`
    /// (conventionally 0.01).
    pub fn new(alpha: f32) -> Self {
        LeakyReLU { alpha, mask: None }
    }

    /// The negative-side slope.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Layer for LeakyReLU {
    fn name(&self) -> &'static str {
        "leaky_relu"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let alpha = self.alpha;
        let out = input.map(|x| if x > 0.0 { x } else { alpha * x });
        if mode == Mode::Train {
            self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or(NnError::BackwardBeforeForward {
            layer: "leaky_relu",
        })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::tensor(
                "leaky_relu",
                qce_tensor::TensorError::LengthMismatch {
                    expected: mask.len(),
                    actual: grad_out.len(),
                },
            ));
        }
        let mut grad = grad_out.clone();
        for (g, &positive) in grad.as_mut_slice().iter_mut().zip(mask.iter()) {
            if !positive {
                *g *= self.alpha;
            }
        }
        Ok(grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_difference_check<L: Layer>(layer: &mut L, xs: &[f32]) {
        let x = Tensor::from_slice(xs);
        layer.forward(&x, Mode::Train).unwrap();
        let grad = layer.backward(&Tensor::ones(&[xs.len()])).unwrap();
        let eps = 1e-3;
        for i in 0..xs.len() {
            let mut hi_x = xs.to_vec();
            hi_x[i] += eps;
            let mut lo_x = xs.to_vec();
            lo_x[i] -= eps;
            let hi = layer
                .forward(&Tensor::from_slice(&hi_x), Mode::Eval)
                .unwrap()
                .sum();
            let lo = layer
                .forward(&Tensor::from_slice(&lo_x), Mode::Eval)
                .unwrap()
                .sum();
            let fd = (hi - lo) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-2,
                "element {i}: fd {fd} vs analytic {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn sigmoid_shape_and_gradient() {
        let mut s = Sigmoid::new();
        let y = s
            .forward(&Tensor::from_slice(&[-100.0, 0.0, 100.0]), Mode::Eval)
            .unwrap();
        assert!(y.as_slice()[0] < 1e-6);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-6);
        finite_difference_check(&mut Sigmoid::new(), &[-1.2, -0.1, 0.4, 2.0]);
    }

    #[test]
    fn tanh_shape_and_gradient() {
        let mut t = Tanh::new();
        let y = t
            .forward(&Tensor::from_slice(&[0.0, 1.0]), Mode::Eval)
            .unwrap();
        assert_eq!(y.as_slice()[0], 0.0);
        assert!((y.as_slice()[1] - 1.0f32.tanh()).abs() < 1e-6);
        finite_difference_check(&mut Tanh::new(), &[-0.8, 0.0, 0.3, 1.5]);
    }

    #[test]
    fn leaky_relu_slopes() {
        let mut l = LeakyReLU::new(0.1);
        let y = l
            .forward(&Tensor::from_slice(&[-2.0, 3.0]), Mode::Train)
            .unwrap();
        assert_eq!(y.as_slice(), &[-0.2, 3.0]);
        let g = l.backward(&Tensor::from_slice(&[1.0, 1.0])).unwrap();
        assert_eq!(g.as_slice(), &[0.1, 1.0]);
        assert_eq!(l.alpha(), 0.1);
    }

    #[test]
    fn backward_before_forward_rejected() {
        assert!(Sigmoid::new().backward(&Tensor::ones(&[1])).is_err());
        assert!(Tanh::new().backward(&Tensor::ones(&[1])).is_err());
        assert!(LeakyReLU::new(0.01).backward(&Tensor::ones(&[1])).is_err());
    }
}
