use qce_tensor::conv::{conv2d, conv2d_backward, ConvGeometry};
use qce_tensor::{init, Tensor};
use rand::rngs::StdRng;

use crate::{Layer, Mode, NnError, Param, ParamKind, Result};

/// 2-D convolution layer with Kaiming-initialized kernels and a bias.
///
/// Input `[N, C, H, W]`, output `[N, O, Ho, Wo]` per the layer's
/// [`ConvGeometry`].
///
/// # Examples
///
/// ```
/// use qce_nn::layers::Conv2d;
/// use qce_nn::{Layer, Mode};
/// use qce_tensor::{conv::ConvGeometry, init, Tensor};
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let mut rng = init::seeded_rng(7);
/// let mut conv = Conv2d::new(3, 8, 3, ConvGeometry::new(1, 1), &mut rng);
/// let out = conv.forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)?;
/// assert_eq!(out.dims(), &[2, 8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    geometry: ConvGeometry,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with a square `k`×`k` kernel mapping
    /// `in_channels` to `out_channels`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        k: usize,
        geometry: ConvGeometry,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * k * k;
        let weight = init::kaiming(&[out_channels, in_channels, k, k], fan_in, rng);
        Conv2d {
            weight: Param::new(weight, ParamKind::Weight),
            bias: Param::new(Tensor::zeros(&[out_channels]), ParamKind::Bias),
            geometry,
            cached_input: None,
        }
    }

    /// The layer's stride/padding geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geometry
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value().dims()[0]
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = conv2d(
            input,
            self.weight.value(),
            Some(self.bias.value()),
            self.geometry,
        )
        .map_err(|e| NnError::tensor(self.name(), e))?;
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "conv2d" })?;
        let grads = conv2d_backward(input, self.weight.value(), grad_out, self.geometry)
            .map_err(|e| NnError::tensor(self.name(), e))?;
        self.weight
            .grad_mut()
            .axpy(1.0, &grads.weight)
            .map_err(|e| NnError::tensor("conv2d weight grad", e))?;
        self.bias
            .grad_mut()
            .axpy(1.0, &grads.bias)
            .map_err(|e| NnError::tensor("conv2d bias grad", e))?;
        Ok(grads.input)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_params() {
        let mut rng = init::seeded_rng(1);
        let mut conv = Conv2d::new(2, 4, 3, ConvGeometry::new(2, 1), &mut rng);
        let out = conv
            .forward(&Tensor::zeros(&[1, 2, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(out.dims(), &[1, 4, 4, 4]);
        assert_eq!(conv.params().len(), 2);
        assert_eq!(conv.params()[0].kind(), ParamKind::Weight);
        assert_eq!(conv.params()[1].kind(), ParamKind::Bias);
    }

    #[test]
    fn backward_before_forward_rejected() {
        let mut rng = init::seeded_rng(2);
        let mut conv = Conv2d::new(1, 1, 3, ConvGeometry::unit(), &mut rng);
        let err = conv.backward(&Tensor::zeros(&[1, 1, 2, 2])).unwrap_err();
        assert_eq!(err, NnError::BackwardBeforeForward { layer: "conv2d" });
    }

    #[test]
    fn eval_forward_does_not_cache() {
        let mut rng = init::seeded_rng(3);
        let mut conv = Conv2d::new(1, 1, 1, ConvGeometry::unit(), &mut rng);
        conv.forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Eval)
            .unwrap();
        assert!(conv.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut rng = init::seeded_rng(4);
        let mut conv = Conv2d::new(1, 1, 1, ConvGeometry::unit(), &mut rng);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let g = Tensor::ones(&[1, 1, 2, 2]);
        conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&g).unwrap();
        let first = conv.params()[0].grad().as_slice()[0];
        conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&g).unwrap();
        let second = conv.params()[0].grad().as_slice()[0];
        assert!((second - 2.0 * first).abs() < 1e-6);
    }

    #[test]
    fn backward_matches_finite_difference_loss() {
        let mut rng = init::seeded_rng(5);
        let mut conv = Conv2d::new(2, 3, 3, ConvGeometry::new(1, 1), &mut rng);
        let x = init::uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let out = conv.forward(&x, Mode::Train).unwrap();
        let grad_out = Tensor::ones(out.dims());
        conv.backward(&grad_out).unwrap();
        let analytic = conv.params()[0].grad().as_slice()[10];

        let eps = 1e-2;
        let orig = conv.params()[0].value().as_slice()[10];
        conv.params_mut()[0].value_mut().as_mut_slice()[10] = orig + eps;
        let hi = conv.forward(&x, Mode::Eval).unwrap().sum();
        conv.params_mut()[0].value_mut().as_mut_slice()[10] = orig - eps;
        let lo = conv.forward(&x, Mode::Eval).unwrap().sum();
        let fd = (hi - lo) / (2.0 * eps);
        assert!((fd - analytic).abs() < 1e-2, "fd={fd} analytic={analytic}");
    }
}
