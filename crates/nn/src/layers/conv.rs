use qce_tensor::conv::{conv2d, conv2d_backward, ConvGeometry};
use qce_tensor::{init, Tensor};
use rand::rngs::StdRng;

use crate::{Layer, Mode, NnError, Param, ParamKind, Result};

/// 2-D convolution layer with Kaiming-initialized kernels and a bias.
///
/// Input `[N, C, H, W]`, output `[N, O, Ho, Wo]` per the layer's
/// [`ConvGeometry`].
///
/// # Examples
///
/// ```
/// use qce_nn::layers::Conv2d;
/// use qce_nn::{Layer, Mode};
/// use qce_tensor::{conv::ConvGeometry, init, Tensor};
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let mut rng = init::seeded_rng(7);
/// let mut conv = Conv2d::new(3, 8, 3, ConvGeometry::new(1, 1), &mut rng);
/// let out = conv.forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)?;
/// assert_eq!(out.dims(), &[2, 8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    geometry: ConvGeometry,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with a square `k`×`k` kernel mapping
    /// `in_channels` to `out_channels`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        k: usize,
        geometry: ConvGeometry,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * k * k;
        let weight = init::kaiming(&[out_channels, in_channels, k, k], fan_in, rng);
        Conv2d {
            weight: Param::new(weight, ParamKind::Weight),
            bias: Param::new(Tensor::zeros(&[out_channels]), ParamKind::Bias),
            geometry,
            cached_input: None,
        }
    }

    /// The layer's stride/padding geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geometry
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value().dims()[0]
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value().dims()[1]
    }

    /// Reorders the output channels so that new channel `i` carries what
    /// old channel `perm[i]` produced: rows of the `[O, I, kh, kw]`
    /// weight tensor, the matching bias entries and both gradients move
    /// as whole units.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `perm` is not a permutation
    /// of `0..out_channels`.
    pub fn permute_out_channels(&mut self, perm: &[usize]) -> Result<()> {
        check_permutation(perm, self.out_channels(), "conv2d out-channel")?;
        let dims = self.weight.value().dims().to_vec();
        let row = dims[1] * dims[2] * dims[3];
        permute_chunks(self.weight.value_mut().as_mut_slice(), perm, row, 1);
        permute_chunks(self.weight.grad_mut().as_mut_slice(), perm, row, 1);
        permute_chunks(self.bias.value_mut().as_mut_slice(), perm, 1, 1);
        permute_chunks(self.bias.grad_mut().as_mut_slice(), perm, 1, 1);
        Ok(())
    }

    /// Reorders the input channels so that new channel `i` reads what old
    /// channel `perm[i]` read: the `kh*kw`-sized chunks inside every row
    /// of the `[O, I, kh, kw]` weight tensor (and its gradient) move
    /// identically.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `perm` is not a permutation
    /// of `0..in_channels`.
    pub fn permute_in_channels(&mut self, perm: &[usize]) -> Result<()> {
        check_permutation(perm, self.in_channels(), "conv2d in-channel")?;
        let dims = self.weight.value().dims().to_vec();
        let chunk = dims[2] * dims[3];
        permute_chunks(self.weight.value_mut().as_mut_slice(), perm, chunk, dims[0]);
        permute_chunks(self.weight.grad_mut().as_mut_slice(), perm, chunk, dims[0]);
        Ok(())
    }
}

/// Validates that `perm` is a permutation of `0..len`.
pub(crate) fn check_permutation(perm: &[usize], len: usize, what: &str) -> Result<()> {
    let mut seen = vec![false; len];
    let valid = perm.len() == len
        && perm.iter().all(|&p| {
            if p < len && !seen[p] {
                seen[p] = true;
                true
            } else {
                false
            }
        });
    if valid {
        Ok(())
    } else {
        Err(NnError::InvalidConfig {
            reason: format!("{what} permutation is not a permutation of 0..{len}"),
        })
    }
}

/// Reorders `rows` consecutive runs of `perm.len()` chunks of `chunk`
/// elements each, placing old chunk `perm[i]` at new position `i` within
/// every run.
pub(crate) fn permute_chunks(data: &mut [f32], perm: &[usize], chunk: usize, rows: usize) {
    let run = perm.len() * chunk;
    debug_assert_eq!(data.len(), rows * run);
    let mut scratch = vec![0.0f32; run];
    for r in 0..rows {
        let base = r * run;
        scratch.copy_from_slice(&data[base..base + run]);
        for (i, &p) in perm.iter().enumerate() {
            data[base + i * chunk..base + (i + 1) * chunk]
                .copy_from_slice(&scratch[p * chunk..(p + 1) * chunk]);
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = conv2d(
            input,
            self.weight.value(),
            Some(self.bias.value()),
            self.geometry,
        )
        .map_err(|e| NnError::tensor(self.name(), e))?;
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "conv2d" })?;
        let grads = conv2d_backward(input, self.weight.value(), grad_out, self.geometry)
            .map_err(|e| NnError::tensor(self.name(), e))?;
        self.weight
            .grad_mut()
            .axpy(1.0, &grads.weight)
            .map_err(|e| NnError::tensor("conv2d weight grad", e))?;
        self.bias
            .grad_mut()
            .axpy(1.0, &grads.bias)
            .map_err(|e| NnError::tensor("conv2d bias grad", e))?;
        Ok(grads.input)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_params() {
        let mut rng = init::seeded_rng(1);
        let mut conv = Conv2d::new(2, 4, 3, ConvGeometry::new(2, 1), &mut rng);
        let out = conv
            .forward(&Tensor::zeros(&[1, 2, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(out.dims(), &[1, 4, 4, 4]);
        assert_eq!(conv.params().len(), 2);
        assert_eq!(conv.params()[0].kind(), ParamKind::Weight);
        assert_eq!(conv.params()[1].kind(), ParamKind::Bias);
    }

    #[test]
    fn backward_before_forward_rejected() {
        let mut rng = init::seeded_rng(2);
        let mut conv = Conv2d::new(1, 1, 3, ConvGeometry::unit(), &mut rng);
        let err = conv.backward(&Tensor::zeros(&[1, 1, 2, 2])).unwrap_err();
        assert_eq!(err, NnError::BackwardBeforeForward { layer: "conv2d" });
    }

    #[test]
    fn eval_forward_does_not_cache() {
        let mut rng = init::seeded_rng(3);
        let mut conv = Conv2d::new(1, 1, 1, ConvGeometry::unit(), &mut rng);
        conv.forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Eval)
            .unwrap();
        assert!(conv.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut rng = init::seeded_rng(4);
        let mut conv = Conv2d::new(1, 1, 1, ConvGeometry::unit(), &mut rng);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let g = Tensor::ones(&[1, 1, 2, 2]);
        conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&g).unwrap();
        let first = conv.params()[0].grad().as_slice()[0];
        conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&g).unwrap();
        let second = conv.params()[0].grad().as_slice()[0];
        assert!((second - 2.0 * first).abs() < 1e-6);
    }

    #[test]
    fn out_channel_permutation_moves_rows_and_bias() {
        let mut rng = init::seeded_rng(6);
        let mut conv = Conv2d::new(2, 3, 1, ConvGeometry::unit(), &mut rng);
        let before = conv.params()[0].value().as_slice().to_vec();
        conv.params_mut()[1]
            .value_mut()
            .as_mut_slice()
            .copy_from_slice(&[10.0, 20.0, 30.0]);
        conv.permute_out_channels(&[2, 0, 1]).unwrap();
        let after = conv.params()[0].value().as_slice().to_vec();
        assert_eq!(&after[0..2], &before[4..6]);
        assert_eq!(&after[2..4], &before[0..2]);
        assert_eq!(conv.params()[1].value().as_slice(), &[30.0, 10.0, 20.0]);
        assert!(conv.permute_out_channels(&[0, 0, 1]).is_err());
        assert!(conv.permute_out_channels(&[0, 1]).is_err());
    }

    #[test]
    fn in_channel_permutation_moves_chunks_in_every_row() {
        let mut rng = init::seeded_rng(7);
        let mut conv = Conv2d::new(3, 2, 2, ConvGeometry::unit(), &mut rng);
        let before = conv.params()[0].value().as_slice().to_vec();
        conv.permute_in_channels(&[1, 2, 0]).unwrap();
        let after = conv.params()[0].value().as_slice().to_vec();
        let chunk = 4;
        for row in 0..2 {
            let b = row * 3 * chunk;
            assert_eq!(&after[b..b + chunk], &before[b + chunk..b + 2 * chunk]);
            assert_eq!(&after[b + 2 * chunk..b + 3 * chunk], &before[b..b + chunk]);
        }
        assert!(conv.permute_in_channels(&[0, 1]).is_err());
    }

    #[test]
    fn permutations_preserve_function_up_to_compensation() {
        // Permuting conv A's out-channels and conv B's in-channels by the
        // same permutation leaves the composed function unchanged.
        let mut rng = init::seeded_rng(8);
        let mut a = Conv2d::new(2, 4, 3, ConvGeometry::new(1, 1), &mut rng);
        let mut b = Conv2d::new(4, 3, 3, ConvGeometry::new(1, 1), &mut rng);
        let x = init::uniform(&[2, 2, 6, 6], -1.0, 1.0, &mut rng);
        let run = |a: &mut Conv2d, b: &mut Conv2d| {
            let h = a.forward(&x, Mode::Eval).unwrap();
            b.forward(&h, Mode::Eval).unwrap()
        };
        let before = run(&mut a, &mut b);
        let perm = [3, 1, 0, 2];
        a.permute_out_channels(&perm).unwrap();
        b.permute_in_channels(&perm).unwrap();
        let after = run(&mut a, &mut b);
        for (x, y) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn backward_matches_finite_difference_loss() {
        let mut rng = init::seeded_rng(5);
        let mut conv = Conv2d::new(2, 3, 3, ConvGeometry::new(1, 1), &mut rng);
        let x = init::uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let out = conv.forward(&x, Mode::Train).unwrap();
        let grad_out = Tensor::ones(out.dims());
        conv.backward(&grad_out).unwrap();
        let analytic = conv.params()[0].grad().as_slice()[10];

        let eps = 1e-2;
        let orig = conv.params()[0].value().as_slice()[10];
        conv.params_mut()[0].value_mut().as_mut_slice()[10] = orig + eps;
        let hi = conv.forward(&x, Mode::Eval).unwrap().sum();
        conv.params_mut()[0].value_mut().as_mut_slice()[10] = orig - eps;
        let lo = conv.forward(&x, Mode::Eval).unwrap().sum();
        let fd = (hi - lo) / (2.0 * eps);
        assert!((fd - analytic).abs() < 1e-2, "fd={fd} analytic={analytic}");
    }
}
