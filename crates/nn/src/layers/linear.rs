use qce_tensor::{init, linalg, Tensor};
use rand::rngs::StdRng;

use crate::{Layer, Mode, NnError, Param, ParamKind, Result};

/// Fully-connected layer: `y = x W^T + b` with `x` of shape
/// `[N, in_features]` and `W` of shape `[out_features, in_features]`.
///
/// # Examples
///
/// ```
/// use qce_nn::layers::Linear;
/// use qce_nn::{Layer, Mode};
/// use qce_tensor::{init, Tensor};
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let mut rng = init::seeded_rng(1);
/// let mut fc = Linear::new(16, 10, &mut rng);
/// let out = fc.forward(&Tensor::zeros(&[4, 16]), Mode::Eval)?;
/// assert_eq!(out.dims(), &[4, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a fully-connected layer with Xavier-initialized weights.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let weight = init::xavier(&[out_features, in_features], in_features, out_features, rng);
        Linear {
            weight: Param::new(weight, ParamKind::Weight),
            bias: Param::new(Tensor::zeros(&[out_features]), ParamKind::Bias),
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weight.value().dims()[1]
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.weight.value().dims()[0]
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.shape().rank() != 2 {
            return Err(NnError::tensor(
                self.name(),
                qce_tensor::TensorError::RankMismatch {
                    op: "linear forward",
                    expected: 2,
                    actual: input.shape().rank(),
                },
            ));
        }
        // W is stored [O, I], i.e. already the transpose the product needs —
        // matmul_b_t consumes it directly, no transposed copy per step.
        let mut out = linalg::matmul_b_t(input, self.weight.value())
            .map_err(|e| NnError::tensor(self.name(), e))?;
        let (n, o) = (out.dims()[0], out.dims()[1]);
        let bias = self.bias.value().as_slice().to_vec();
        let ov = out.as_mut_slice();
        for row in 0..n {
            for (col, &b) in bias.iter().enumerate() {
                ov[row * o + col] += b;
            }
        }
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "linear" })?;
        // dW = grad_out^T . input        [O, I] (transpose fused into the kernel)
        let dw =
            linalg::matmul_a_t(grad_out, input).map_err(|e| NnError::tensor(self.name(), e))?;
        self.weight
            .grad_mut()
            .axpy(1.0, &dw)
            .map_err(|e| NnError::tensor("linear weight grad", e))?;
        // db = column sums of grad_out   [O]
        let (n, o) = (grad_out.dims()[0], grad_out.dims()[1]);
        let gv = grad_out.as_slice();
        let db = self.bias.grad_mut().as_mut_slice();
        for row in 0..n {
            for (col, d) in db.iter_mut().enumerate() {
                *d += gv[row * o + col];
            }
        }
        // dx = grad_out . W              [N, I]
        linalg::matmul(grad_out, self.weight.value()).map_err(|e| NnError::tensor(self.name(), e))
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_applies_bias() {
        let mut rng = init::seeded_rng(1);
        let mut fc = Linear::new(2, 2, &mut rng);
        fc.params_mut()[0].value_mut().fill(0.0);
        fc.params_mut()[1].value_mut().as_mut_slice()[0] = 3.0;
        fc.params_mut()[1].value_mut().as_mut_slice()[1] = -1.0;
        let out = fc.forward(&Tensor::zeros(&[2, 2]), Mode::Eval).unwrap();
        assert_eq!(out.as_slice(), &[3.0, -1.0, 3.0, -1.0]);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut rng = init::seeded_rng(2);
        let mut fc = Linear::new(3, 2, &mut rng);
        let x = init::uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let out = fc.forward(&x, Mode::Train).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grad_in = fc.backward(&grad_out).unwrap();
        assert_eq!(grad_in.dims(), x.dims());

        let eps = 1e-2;
        for probe in [0usize, 3, 5] {
            let orig = fc.params()[0].value().as_slice()[probe];
            fc.params_mut()[0].value_mut().as_mut_slice()[probe] = orig + eps;
            let hi = fc.forward(&x, Mode::Eval).unwrap().sum();
            fc.params_mut()[0].value_mut().as_mut_slice()[probe] = orig - eps;
            let lo = fc.forward(&x, Mode::Eval).unwrap().sum();
            fc.params_mut()[0].value_mut().as_mut_slice()[probe] = orig;
            let fd = (hi - lo) / (2.0 * eps);
            let an = fc.params()[0].grad().as_slice()[probe];
            assert!((fd - an).abs() < 1e-2, "probe {probe}: fd={fd} an={an}");
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = init::seeded_rng(3);
        let mut fc = Linear::new(3, 2, &mut rng);
        let mut x = init::uniform(&[2, 3], -1.0, 1.0, &mut rng);
        let out = fc.forward(&x, Mode::Train).unwrap();
        let grad_in = fc.backward(&Tensor::ones(out.dims())).unwrap();
        let eps = 1e-2;
        let orig = x.as_slice()[4];
        x.as_mut_slice()[4] = orig + eps;
        let hi = fc.forward(&x, Mode::Eval).unwrap().sum();
        x.as_mut_slice()[4] = orig - eps;
        let lo = fc.forward(&x, Mode::Eval).unwrap().sum();
        let fd = (hi - lo) / (2.0 * eps);
        assert!((fd - grad_in.as_slice()[4]).abs() < 1e-2);
    }

    #[test]
    fn rejects_non_rank2_input() {
        let mut rng = init::seeded_rng(4);
        let mut fc = Linear::new(4, 2, &mut rng);
        assert!(fc.forward(&Tensor::zeros(&[1, 4, 1]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_before_forward_rejected() {
        let mut rng = init::seeded_rng(5);
        let mut fc = Linear::new(2, 2, &mut rng);
        assert!(matches!(
            fc.backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }
}
