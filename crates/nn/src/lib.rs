//! From-scratch CPU neural-network training framework for the `qce`
//! workspace.
//!
//! The DAC'20 *quantized correlation encoding attack* needs a training
//! pipeline it can infiltrate: a "seemingly normal" loss with an extra
//! regularization term, white-box access to every weight, and a
//! quantization step it can replace. This crate provides that pipeline:
//!
//! * [`Layer`] — the forward/backward building block; implementations in
//!   [`layers`] cover `Conv2d`, `Linear`, `BatchNorm2d`, `ReLU`,
//!   `MaxPool2d`, `GlobalAvgPool`, `Flatten` and residual blocks.
//! * [`Network`] — an ordered stack of layers with flat, deterministic
//!   parameter access (the surface both the attack and the quantizers
//!   operate on).
//! * [`loss`] — softmax cross-entropy with analytic gradients.
//! * [`Sgd`] + [`LrSchedule`] — momentum SGD with weight decay.
//! * [`Trainer`] — mini-batch training loop with an optional
//!   [`Regularizer`] hook, which is exactly where the malicious
//!   correlation term of the paper plugs in.
//! * [`models`] — `ResNetLite` (the scaled-down ResNet-34 stand-in) and
//!   `FaceNetLite` (the Inception-ResNet-v1 stand-in).
//!
//! # Examples
//!
//! Train a tiny classifier on random data:
//!
//! ```
//! use qce_nn::{models::ResNetLite, Mode, Sgd, TrainConfig, Trainer};
//! use qce_tensor::{init, Tensor};
//!
//! # fn main() -> Result<(), qce_nn::NnError> {
//! let mut rng = init::seeded_rng(0);
//! let x = init::uniform(&[8, 1, 8, 8], 0.0, 1.0, &mut rng);
//! let y = vec![0, 1, 0, 1, 0, 1, 0, 1];
//! let mut net = ResNetLite::builder()
//!     .input(1, 8)
//!     .classes(2)
//!     .stage_channels(&[4, 8])
//!     .blocks_per_stage(1)
//!     .build(42)?;
//! let mut trainer = Trainer::new(TrainConfig {
//!     epochs: 1,
//!     batch_size: 4,
//!     ..TrainConfig::default()
//! });
//! let history = trainer.fit(&mut net, &x, &y, None)?;
//! assert_eq!(history.epoch_losses.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod layer;
mod network;
mod param;
mod trainer;

pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
pub mod schedule;
pub mod serialize;

pub use error::NnError;
pub use layer::{Layer, Mode, WeightSymmetry};
pub use network::{Network, NetworkSnapshot, WeightSlot};
pub use optim::{Adam, Sgd};
pub use param::{Param, ParamKind};
pub use schedule::LrSchedule;
pub use trainer::{
    accuracy, gather_batch, DivergenceGuard, OptimizerKind, Regularizer, TrainConfig, Trainer,
    TrainingHistory,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
