use std::time::{Duration, Instant};

use qce_tensor::Tensor;
use rand::seq::SliceRandom;

use crate::loss::softmax_cross_entropy;
use crate::optim::Adam;
use crate::{LrSchedule, Mode, Network, NnError, Result, Sgd};

/// Which optimizer the [`Trainer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerKind {
    /// SGD with momentum and weight decay (the default; what the paper's
    /// training pipelines use).
    #[default]
    Sgd,
    /// AdamW (decoupled weight decay) — useful when layer-wise gradient
    /// scales differ strongly.
    Adam,
}

enum AnyOptimizer {
    Sgd(Sgd),
    Adam(Adam),
}

impl AnyOptimizer {
    fn set_lr(&mut self, lr: f32) {
        match self {
            AnyOptimizer::Sgd(o) => o.set_lr(lr),
            AnyOptimizer::Adam(o) => o.set_lr(lr),
        }
    }

    fn step(&mut self, params: &mut [&mut crate::Param]) {
        match self {
            AnyOptimizer::Sgd(o) => o.step(params),
            AnyOptimizer::Adam(o) => o.step(params),
        }
    }
}

/// A training-time loss add-on with direct gradient access to the network.
///
/// This is the hook the DAC'20 attack exploits: the malicious
/// correlation-encoding term is implemented as a `Regularizer` that looks
/// indistinguishable from a benign weight penalty in the training code.
/// `apply` is called once per mini-batch *after* the task-loss backward
/// pass; it must add its own gradient contribution to the network
/// parameters (e.g. via
/// [`Network::add_flat_weight_grads`](crate::Network::add_flat_weight_grads))
/// and return its penalty value for logging.
pub trait Regularizer {
    /// Accumulates the regularizer's gradient into `net` and returns the
    /// penalty value added to the loss.
    ///
    /// # Errors
    ///
    /// Implementations should propagate layout errors.
    fn apply(&mut self, net: &mut Network) -> Result<f32>;

    /// Called once at the start of every epoch with the epoch index and
    /// the total epoch count, so schedule-aware regularizers (e.g. a
    /// warmup ramp on the correlation weight) can adjust their strength.
    /// The default does nothing.
    fn on_epoch(&mut self, _epoch: usize, _total_epochs: usize) {}

    /// Called when the trainer detects numerical divergence and rolls the
    /// network back to its last good snapshot; implementations should
    /// permanently reduce their aggressiveness before the retry. The
    /// default does nothing.
    fn on_divergence(&mut self) {}
}

/// Divergence-recovery policy of a [`Trainer`].
///
/// After every epoch the trainer checks the epoch's mean loss, the
/// regularizer penalty and all network weights for NaN/Inf. On
/// divergence it rolls the network back to the snapshot taken after the
/// last healthy epoch, rebuilds the optimizer (clearing momentum that
/// points into the blow-up), scales the learning rate down by
/// `lr_backoff`, notifies the regularizer via
/// [`Regularizer::on_divergence`], and retries the epoch — at most
/// `max_retries` times over the whole run before giving up with
/// [`NnError::Diverged`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceGuard {
    /// Whether the guard is active at all.
    pub enabled: bool,
    /// Total rollback budget for the run.
    pub max_retries: usize,
    /// Learning-rate multiplier applied at every rollback.
    pub lr_backoff: f32,
}

impl Default for DivergenceGuard {
    fn default() -> Self {
        DivergenceGuard {
            enabled: true,
            max_retries: 2,
            lr_backoff: 0.5,
        }
    }
}

impl DivergenceGuard {
    /// A guard that never intervenes (training fails fast instead).
    pub fn disabled() -> Self {
        DivergenceGuard {
            enabled: false,
            ..DivergenceGuard::default()
        }
    }
}

/// Hyper-parameters of a [`Trainer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the last batch of an epoch may be smaller).
    pub batch_size: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Weight decay applied to `Weight`-kind parameters.
    pub weight_decay: f32,
    /// Learning-rate schedule over epochs.
    pub schedule: LrSchedule,
    /// Which optimizer to run.
    pub optimizer: OptimizerKind,
    /// Seed for the per-epoch shuffle.
    pub shuffle_seed: u64,
    /// Divergence detection and rollback policy.
    pub guard: DivergenceGuard,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            schedule: LrSchedule::Constant,
            optimizer: OptimizerKind::Sgd,
            shuffle_seed: 0x5eed,
            guard: DivergenceGuard::default(),
            verbose: false,
        }
    }
}

/// Per-epoch records returned by [`Trainer::fit`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingHistory {
    /// Mean task loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean regularizer penalty of each epoch (zero without a regularizer).
    pub epoch_penalties: Vec<f32>,
    /// How many divergence rollbacks the [`DivergenceGuard`] performed.
    pub rollbacks: usize,
}

/// Mini-batch SGD training loop with an optional [`Regularizer`] hook.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on images `x` (`[N, C, H, W]`) with class `labels`.
    ///
    /// When `regularizer` is provided, its gradient is accumulated after
    /// every task-loss backward pass — exactly how a malicious training
    /// algorithm smuggles the correlation term into a normal pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SampleLabelMismatch`] if `x` and `labels`
    /// disagree, or propagates layer errors.
    pub fn fit(
        &mut self,
        net: &mut Network,
        x: &Tensor,
        labels: &[usize],
        mut regularizer: Option<&mut dyn Regularizer>,
    ) -> Result<TrainingHistory> {
        let n = x.dims()[0];
        if labels.len() != n {
            return Err(NnError::SampleLabelMismatch {
                samples: n,
                labels: labels.len(),
            });
        }
        if n == 0 || self.config.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                reason: "empty dataset or zero batch size".to_string(),
            });
        }
        let make_optimizer = |config: &TrainConfig| match config.optimizer {
            OptimizerKind::Sgd => AnyOptimizer::Sgd(Sgd::with_momentum(
                config.lr,
                config.momentum,
                config.weight_decay,
            )),
            OptimizerKind::Adam => {
                AnyOptimizer::Adam(Adam::with_weight_decay(config.lr, config.weight_decay))
            }
        };
        let mut optimizer = make_optimizer(&self.config);
        let mut rng = qce_tensor::init::seeded_rng(self.config.shuffle_seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = TrainingHistory::default();
        let total_epochs = self.config.epochs;
        let mut last_good = net.snapshot();
        let mut lr_scale = 1.0f32;
        let mut retries_left = self.config.guard.max_retries;
        let mut epoch = 0usize;

        let loss_gauge = qce_telemetry::gauge("train.loss");
        let penalty_gauge = qce_telemetry::gauge("train.penalty");
        let lr_gauge = qce_telemetry::gauge("train.lr");
        let rollback_counter = qce_telemetry::counter("train.rollbacks");

        // Rate-limited progress heartbeat for long non-verbose runs:
        // `QCE_LOG=progress` gets one line every ~5 s with an ETA from
        // the recent-epoch mean, instead of silence-until-done (verbose
        // runs already narrate every epoch).
        const HEARTBEAT_EVERY: Duration = Duration::from_secs(5);
        const ETA_WINDOW: usize = 8;
        let heartbeat =
            !self.config.verbose && qce_telemetry::level() >= qce_telemetry::Level::Progress;
        let mut last_beat = Instant::now();
        let mut epoch_secs: Vec<f64> = Vec::new();

        while epoch < total_epochs {
            let epoch_t0 = Instant::now();
            let _epoch_span = qce_telemetry::span!("train.epoch", epoch = epoch);
            if let Some(reg) = regularizer.as_deref_mut() {
                reg.on_epoch(epoch, total_epochs);
            }
            let lr = self.config.schedule.lr_at(epoch, self.config.lr) * lr_scale;
            optimizer.set_lr(lr);
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut penalty_sum = 0.0f64;
            let mut batches = 0usize;

            for chunk in order.chunks(self.config.batch_size) {
                let bx = gather_batch(x, chunk)?;
                let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                net.zero_grad();
                let logits = net.forward(&bx, Mode::Train)?;
                let out = softmax_cross_entropy(&logits, &by)?;
                net.backward(&out.grad)?;
                if let Some(reg) = regularizer.as_deref_mut() {
                    penalty_sum += reg.apply(net)? as f64;
                }
                optimizer.step(&mut net.params_mut());
                loss_sum += out.loss as f64;
                batches += 1;
            }

            let mean_loss = (loss_sum / batches as f64) as f32;
            let mean_penalty = (penalty_sum / batches as f64) as f32;

            if self.config.guard.enabled && !epoch_is_healthy(net, mean_loss, mean_penalty) {
                if retries_left == 0 {
                    return Err(NnError::Diverged {
                        epoch,
                        rollbacks: history.rollbacks,
                    });
                }
                retries_left -= 1;
                history.rollbacks += 1;
                rollback_counter.incr(1);
                net.restore(&last_good)?;
                // Momentum state points into the blow-up; rebuild it.
                optimizer = make_optimizer(&self.config);
                lr_scale *= self.config.guard.lr_backoff;
                if let Some(reg) = regularizer.as_deref_mut() {
                    reg.on_divergence();
                }
                let msg = format!(
                    "epoch {epoch}: diverged (loss={mean_loss}), rolled back; \
                     retrying at lr scale {lr_scale}"
                );
                let level = if self.config.verbose {
                    qce_telemetry::Level::Progress
                } else {
                    qce_telemetry::Level::Debug
                };
                qce_telemetry::log_line(level, &msg);
                continue;
            }

            last_good = net.snapshot();
            history.epoch_losses.push(mean_loss);
            history.epoch_penalties.push(mean_penalty);
            loss_gauge.set(f64::from(mean_loss));
            penalty_gauge.set(f64::from(mean_penalty));
            lr_gauge.set(f64::from(lr));
            epoch += 1;
            let level = if self.config.verbose {
                qce_telemetry::Level::Progress
            } else {
                qce_telemetry::Level::Debug
            };
            qce_telemetry::log_line(
                level,
                &format!("epoch {epoch}: loss={mean_loss:.4} penalty={mean_penalty:.4} lr={lr:.5}"),
            );
            epoch_secs.push(epoch_t0.elapsed().as_secs_f64());
            if heartbeat && epoch < total_epochs && last_beat.elapsed() >= HEARTBEAT_EVERY {
                last_beat = Instant::now();
                let recent = &epoch_secs[epoch_secs.len().saturating_sub(ETA_WINDOW)..];
                let mean = recent.iter().sum::<f64>() / recent.len() as f64;
                let remaining = (total_epochs - epoch) as f64 * mean;
                qce_telemetry::log_line(
                    qce_telemetry::Level::Progress,
                    &format!(
                        "[train] epoch {epoch}/{total_epochs} ({:.0}%) — {mean:.1} s/epoch, \
                         ETA {remaining:.0} s",
                        100.0 * epoch as f64 / total_epochs as f64,
                    ),
                );
            }
        }
        Ok(history)
    }
}

/// Whether an epoch left the model in a numerically sound state: finite
/// loss, finite regularizer penalty and finite weights.
fn epoch_is_healthy(net: &Network, mean_loss: f32, mean_penalty: f32) -> bool {
    mean_loss.is_finite()
        && mean_penalty.is_finite()
        && net.flat_weights().iter().all(|w| w.is_finite())
}

/// Copies the rows of `x` (`[N, ...]`) selected by `indices` into a new
/// batch tensor.
///
/// # Errors
///
/// Returns an error if any index is out of bounds.
pub fn gather_batch(x: &Tensor, indices: &[usize]) -> Result<Tensor> {
    let n = x.dims()[0];
    let row = x.len() / n.max(1);
    let mut data = Vec::with_capacity(indices.len() * row);
    for &i in indices {
        if i >= n {
            return Err(NnError::InvalidConfig {
                reason: format!("batch index {i} out of range for {n} samples"),
            });
        }
        data.extend_from_slice(&x.as_slice()[i * row..(i + 1) * row]);
    }
    let mut dims = x.dims().to_vec();
    dims[0] = indices.len();
    Tensor::from_vec(data, &dims).map_err(|e| NnError::tensor("gather_batch", e))
}

/// Top-1 accuracy of `net` on images `x` with `labels`, evaluated in
/// mini-batches.
///
/// # Errors
///
/// Returns [`NnError::SampleLabelMismatch`] on length disagreement, or
/// propagates forward errors.
pub fn accuracy(net: &mut Network, x: &Tensor, labels: &[usize], batch_size: usize) -> Result<f32> {
    let n = x.dims()[0];
    if labels.len() != n {
        return Err(NnError::SampleLabelMismatch {
            samples: n,
            labels: labels.len(),
        });
    }
    if n == 0 {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    let indices: Vec<usize> = (0..n).collect();
    for chunk in indices.chunks(batch_size.max(1)) {
        let bx = gather_batch(x, chunk)?;
        let preds = net.predict(&bx)?;
        for (p, &i) in preds.iter().zip(chunk.iter()) {
            if *p == labels[i] {
                correct += 1;
            }
        }
    }
    Ok(correct as f32 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, ReLU};
    use qce_tensor::init;

    fn toy_problem(seed: u64) -> (Tensor, Vec<usize>) {
        // Two linearly separable blobs in 4-d, rendered as [N,1,2,2] images.
        let mut rng = init::seeded_rng(seed);
        let n = 64;
        let mut data = Vec::with_capacity(n * 4);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -1.0 } else { 1.0 };
            for _ in 0..4 {
                data.push(center + 0.3 * qce_tensor::init::standard_normal(&mut rng));
            }
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, 1, 2, 2]).unwrap(), labels)
    }

    fn mlp(seed: u64) -> Network {
        let mut rng = init::seeded_rng(seed);
        Network::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 8, &mut rng)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(8, 2, &mut rng)),
        ])
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let (x, y) = toy_problem(1);
        let mut net = mlp(2);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut net, &x, &y, None).unwrap();
        assert_eq!(history.epoch_losses.len(), 30);
        assert!(history.epoch_losses[29] < history.epoch_losses[0] * 0.5);
        let acc = accuracy(&mut net, &x, &y, 16).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn fit_is_deterministic_given_seeds() {
        let (x, y) = toy_problem(3);
        let run = || {
            let mut net = mlp(4);
            let mut trainer = Trainer::new(TrainConfig {
                epochs: 3,
                batch_size: 8,
                ..TrainConfig::default()
            });
            trainer.fit(&mut net, &x, &y, None).unwrap();
            net.flat_weights()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn regularizer_hook_is_called_and_logged() {
        struct CountingReg {
            calls: usize,
        }
        impl Regularizer for CountingReg {
            fn apply(&mut self, _net: &mut Network) -> Result<f32> {
                self.calls += 1;
                Ok(1.5)
            }
        }
        let (x, y) = toy_problem(5);
        let mut net = mlp(6);
        let mut reg = CountingReg { calls: 0 };
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 16,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut net, &x, &y, Some(&mut reg)).unwrap();
        assert_eq!(reg.calls, 2 * 4); // 2 epochs x ceil(64/16) batches
        assert!((history.epoch_penalties[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn fit_validates_inputs() {
        let (x, _) = toy_problem(7);
        let mut net = mlp(8);
        let mut trainer = Trainer::new(TrainConfig::default());
        assert!(matches!(
            trainer.fit(&mut net, &x, &[0, 1], None),
            Err(NnError::SampleLabelMismatch { .. })
        ));
    }

    #[test]
    fn gather_batch_selects_rows() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[4, 2]).unwrap();
        let b = gather_batch(&x, &[3, 0]).unwrap();
        assert_eq!(b.dims(), &[2, 2]);
        assert_eq!(b.as_slice(), &[6.0, 7.0, 0.0, 1.0]);
        assert!(gather_batch(&x, &[4]).is_err());
    }

    #[test]
    fn accuracy_on_empty_is_zero() {
        let mut net = mlp(9);
        let x = Tensor::zeros(&[0, 1, 2, 2]);
        assert_eq!(accuracy(&mut net, &x, &[], 4).unwrap(), 0.0);
    }
}
