//! Learning-rate schedules.

/// Epoch-indexed learning-rate schedule.
///
/// # Examples
///
/// ```
/// use qce_nn::LrSchedule;
///
/// let s = LrSchedule::StepDecay { every: 2, factor: 0.5 };
/// assert_eq!(s.lr_at(0, 0.1), 0.1);
/// assert_eq!(s.lr_at(2, 0.1), 0.05);
/// assert_eq!(s.lr_at(4, 0.1), 0.025);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LrSchedule {
    /// Constant learning rate.
    #[default]
    Constant,
    /// Multiply the rate by `factor` every `every` epochs.
    StepDecay {
        /// Number of epochs between decays.
        every: usize,
        /// Multiplicative factor applied at each decay point.
        factor: f32,
    },
    /// Cosine annealing from the base rate to `min_lr` over `total_epochs`.
    Cosine {
        /// Total schedule length in epochs.
        total_epochs: usize,
        /// Floor learning rate at the end of the schedule.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate to use for `epoch` (0-based) given the base rate.
    pub fn lr_at(&self, epoch: usize, base_lr: f32) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, factor } => {
                if every == 0 {
                    return base_lr;
                }
                base_lr * factor.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine {
                total_epochs,
                min_lr,
            } => {
                if total_epochs <= 1 {
                    return base_lr;
                }
                let t = (epoch.min(total_epochs - 1)) as f32 / (total_epochs - 1) as f32;
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant;
        for e in 0..10 {
            assert_eq!(s.lr_at(e, 0.3), 0.3);
        }
    }

    #[test]
    fn step_decay_steps() {
        let s = LrSchedule::StepDecay {
            every: 3,
            factor: 0.1,
        };
        assert_eq!(s.lr_at(2, 1.0), 1.0);
        assert!((s.lr_at(3, 1.0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(6, 1.0) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn step_decay_zero_every_is_constant() {
        let s = LrSchedule::StepDecay {
            every: 0,
            factor: 0.1,
        };
        assert_eq!(s.lr_at(5, 1.0), 1.0);
    }

    #[test]
    fn cosine_endpoints() {
        let s = LrSchedule::Cosine {
            total_epochs: 10,
            min_lr: 0.01,
        };
        assert!((s.lr_at(0, 1.0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(9, 1.0) - 0.01).abs() < 1e-6);
        // Monotone decreasing.
        let mut prev = f32::INFINITY;
        for e in 0..10 {
            let lr = s.lr_at(e, 1.0);
            assert!(lr <= prev);
            prev = lr;
        }
        // Clamped past the end.
        assert!((s.lr_at(100, 1.0) - 0.01).abs() < 1e-6);
    }
}
