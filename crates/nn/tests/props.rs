//! Property-based tests of the network substrate: gradient correctness
//! over random layer configurations and structural invariants.

use proptest::prelude::*;
use qce_nn::layers::{BatchNorm2d, Conv2d, Linear, ReLU};
use qce_nn::loss::softmax_cross_entropy;
use qce_nn::{Layer, Mode, Network, ParamKind};
use qce_tensor::conv::ConvGeometry;
use qce_tensor::{init, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_weight_gradients_match_finite_difference(
        seed in 0u64..500,
        in_ch in 1usize..3,
        out_ch in 1usize..4,
        stride in 1usize..3,
    ) {
        let mut rng = init::seeded_rng(seed);
        let mut conv = Conv2d::new(in_ch, out_ch, 3, ConvGeometry::new(stride, 1), &mut rng);
        let x = init::uniform(&[1, in_ch, 6, 6], -1.0, 1.0, &mut rng);
        let out = conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&Tensor::ones(out.dims())).unwrap();
        let probe = (seed as usize * 7) % conv.params()[0].len();
        let analytic = conv.params()[0].grad().as_slice()[probe];
        let eps = 1e-2;
        let orig = conv.params()[0].value().as_slice()[probe];
        conv.params_mut()[0].value_mut().as_mut_slice()[probe] = orig + eps;
        let hi = conv.forward(&x, Mode::Eval).unwrap().sum();
        conv.params_mut()[0].value_mut().as_mut_slice()[probe] = orig - eps;
        let lo = conv.forward(&x, Mode::Eval).unwrap().sum();
        let fd = (hi - lo) / (2.0 * eps);
        prop_assert!((fd - analytic).abs() < 2e-2, "fd {fd} vs analytic {analytic}");
    }

    #[test]
    fn linear_input_gradients_match_finite_difference(
        seed in 0u64..500,
        in_f in 1usize..8,
        out_f in 1usize..8,
    ) {
        let mut rng = init::seeded_rng(seed);
        let mut fc = Linear::new(in_f, out_f, &mut rng);
        let mut x = init::uniform(&[3, in_f], -1.0, 1.0, &mut rng);
        let out = fc.forward(&x, Mode::Train).unwrap();
        let grad_in = fc.backward(&Tensor::ones(out.dims())).unwrap();
        let probe = (seed as usize) % x.len();
        let eps = 1e-2;
        let orig = x.as_slice()[probe];
        x.as_mut_slice()[probe] = orig + eps;
        let hi = fc.forward(&x, Mode::Eval).unwrap().sum();
        x.as_mut_slice()[probe] = orig - eps;
        let lo = fc.forward(&x, Mode::Eval).unwrap().sum();
        let fd = (hi - lo) / (2.0 * eps);
        prop_assert!((fd - grad_in.as_slice()[probe]).abs() < 2e-2);
    }

    #[test]
    fn batchnorm_train_output_is_normalized(seed in 0u64..500, channels in 1usize..4) {
        let mut bn = BatchNorm2d::new(channels);
        let mut rng = init::seeded_rng(seed);
        let x = init::uniform(&[4, channels, 3, 3], -3.0, 7.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        for ch in 0..channels {
            let mut vals = Vec::new();
            for s in 0..4 {
                for i in 0..9 {
                    vals.push(y.as_slice()[(s * channels + ch) * 9 + i]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            prop_assert!(mean.abs() < 1e-3, "channel {ch} mean {mean}");
        }
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(seed in 0u64..1000, n in 1usize..6, k in 2usize..8) {
        let mut rng = init::seeded_rng(seed);
        let logits = init::uniform(&[n, k], -3.0, 3.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(out.loss >= 0.0);
        for row in 0..n {
            let s: f32 = out.grad.as_slice()[row * k..(row + 1) * k].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {row} grad sum {s}");
        }
    }

    #[test]
    fn flat_weight_round_trip_is_identity(seed in 0u64..200) {
        let mut rng = init::seeded_rng(seed);
        let mut net = Network::new(vec![
            Box::new(Conv2d::new(1, 2, 3, ConvGeometry::new(1, 1), &mut rng)),
            Box::new(ReLU::new()),
        ]);
        let flat = net.flat_weights();
        net.set_flat_weights(&flat).unwrap();
        prop_assert_eq!(net.flat_weights(), flat);
    }

    #[test]
    fn weight_slots_partition_flat_space(seed in 0u64..200, hidden in 1usize..6) {
        let mut rng = init::seeded_rng(seed);
        let net = Network::new(vec![
            Box::new(Conv2d::new(1, hidden, 3, ConvGeometry::new(1, 1), &mut rng)),
            Box::new(Linear::new(hidden, 2, &mut rng)),
        ]);
        let slots = net.weight_slots();
        let mut expected_offset = 0usize;
        for (i, slot) in slots.iter().enumerate() {
            prop_assert_eq!(slot.ordinal, i);
            prop_assert_eq!(slot.offset, expected_offset);
            prop_assert_eq!(slot.len, slot.dims.iter().product::<usize>());
            expected_offset += slot.len;
        }
        prop_assert_eq!(expected_offset, net.num_weights());
    }

    #[test]
    fn grads_only_touch_weights_via_flat_injection(seed in 0u64..200) {
        let mut rng = init::seeded_rng(seed);
        let mut net = Network::new(vec![
            Box::new(Conv2d::new(1, 2, 3, ConvGeometry::new(1, 1), &mut rng)),
            Box::new(BatchNorm2d::new(2)),
        ]);
        net.zero_grad();
        let inject: Vec<f32> = (0..net.num_weights()).map(|i| i as f32).collect();
        net.add_flat_weight_grads(&inject).unwrap();
        for p in net.params() {
            match p.kind() {
                ParamKind::Weight => prop_assert!(p.grad().squared_norm() > 0.0),
                _ => prop_assert_eq!(p.grad().squared_norm(), 0.0),
            }
        }
    }
}
