//! Property-based tests of the metric invariants (DESIGN.md §6).

use proptest::prelude::*;
use qce_data::Image;
use qce_metrics::distribution::{kl_divergence, symmetric_kl, wasserstein1};
use qce_metrics::{mape, mape_slices, psnr, ssim};

fn image_strategy() -> impl Strategy<Value = Image> {
    prop::collection::vec(any::<u8>(), 64).prop_map(|px| Image::new(px, 1, 8, 8).unwrap())
}

fn prob_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, 4..16).prop_map(|v| {
        let total: f64 = v.iter().sum();
        v.into_iter().map(|x| x / total).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mape_is_a_metric_like_distance(a in image_strategy(), b in image_strategy()) {
        prop_assert!(mape(&a, &b) >= 0.0);
        prop_assert_eq!(mape(&a, &a), 0.0);
        prop_assert!((mape(&a, &b) - mape(&b, &a)).abs() < 1e-5);
        prop_assert!(mape(&a, &b) <= 255.0);
    }

    #[test]
    fn mape_triangle_inequality(a in image_strategy(), b in image_strategy(), c in image_strategy()) {
        let (av, bv, cv) = (a.to_f32(), b.to_f32(), c.to_f32());
        prop_assert!(mape_slices(&av, &cv) <= mape_slices(&av, &bv) + mape_slices(&bv, &cv) + 1e-4);
    }

    #[test]
    fn ssim_bounded_and_reflexive(a in image_strategy(), b in image_strategy()) {
        let s = ssim(&a, &b);
        prop_assert!((-1.01..=1.01).contains(&s), "ssim {s}");
        prop_assert!((ssim(&a, &a) - 1.0).abs() < 1e-5);
        prop_assert!((s - ssim(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn psnr_nonnegative_for_byte_images(a in image_strategy(), b in image_strategy()) {
        let p = psnr(&a, &b);
        prop_assert!(p > 0.0 || p.is_infinite());
    }

    #[test]
    fn kl_nonnegative_and_zero_iff_equal(p in prob_vec()) {
        prop_assert!(kl_divergence(&p, &p).abs() < 1e-12);
        let mut q = p.clone();
        q.rotate_left(1);
        prop_assert!(kl_divergence(&p, &q) >= -1e-12);
        prop_assert!(symmetric_kl(&p, &q) >= -1e-12);
    }

    #[test]
    fn wasserstein_symmetric_and_zero_on_equal(p in prob_vec()) {
        let mut q = p.clone();
        q.rotate_left(1);
        prop_assert!(wasserstein1(&p, &p).abs() < 1e-12);
        prop_assert!((wasserstein1(&p, &q) - wasserstein1(&q, &p)).abs() < 1e-12);
        prop_assert!(wasserstein1(&p, &q) >= 0.0);
    }
}
