//! Divergences between value distributions, used to quantify how much a
//! quantizer reshapes an attacked model's weight distribution (Figs. 2–3
//! of the paper).

use qce_tensor::stats::Histogram;

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats between two discrete
/// distributions given as probability vectors.
///
/// Bins where `p == 0` contribute nothing; bins where `p > 0` but
/// `q == 0` are smoothed with a small epsilon so the divergence stays
/// finite (the histograms this crate compares are empirical).
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "kl_divergence requires equal lengths");
    const EPS: f64 = 1e-12;
    p.iter()
        .zip(q.iter())
        .filter(|(&pi, _)| pi > 0.0)
        .map(|(&pi, &qi)| pi * (pi / qi.max(EPS)).ln())
        .sum()
}

/// Symmetric KL: `KL(p‖q) + KL(q‖p)`.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn symmetric_kl(p: &[f64], q: &[f64]) -> f64 {
    kl_divergence(p, q) + kl_divergence(q, p)
}

/// 1-Wasserstein (earth mover's) distance between two histograms over the
/// same bins, expressed in bin-width units.
///
/// # Panics
///
/// Panics if the probability vectors differ in length.
pub fn wasserstein1(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "wasserstein1 requires equal lengths");
    let mut cum = 0.0f64;
    let mut dist = 0.0f64;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        cum += pi - qi;
        dist += cum.abs();
    }
    dist
}

/// Convenience: histogram two samples over a shared range and return their
/// symmetric KL divergence.
///
/// # Panics
///
/// Panics if `bins == 0` or `lo >= hi` (see
/// [`Histogram::from_values`]).
pub fn histogram_divergence(a: &[f32], b: &[f32], bins: usize, lo: f32, hi: f32) -> f64 {
    let ha = Histogram::from_values(a, bins, lo, hi);
    let hb = Histogram::from_values(b, bins, lo, hi);
    symmetric_kl(&ha.probabilities(), &hb.probabilities())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_self_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_is_nonnegative_and_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let pq = kl_divergence(&p, &q);
        let qp = kl_divergence(&q, &p);
        assert!(pq > 0.0);
        assert!(qp > 0.0);
        assert!((pq - qp).abs() > 1e-6);
        assert!((symmetric_kl(&p, &q) - (pq + qp)).abs() < 1e-12);
    }

    #[test]
    fn kl_handles_zero_bins() {
        let p = [0.5, 0.5, 0.0];
        let q = [1.0, 0.0, 0.0];
        let d = kl_divergence(&p, &q);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }

    #[test]
    fn wasserstein_shifted_mass() {
        // All mass moves one bin: distance 1.
        let p = [1.0, 0.0, 0.0];
        let q = [0.0, 1.0, 0.0];
        assert!((wasserstein1(&p, &q) - 1.0).abs() < 1e-12);
        // Two bins: distance 2.
        let r = [0.0, 0.0, 1.0];
        assert!((wasserstein1(&p, &r) - 2.0).abs() < 1e-12);
        // Symmetry.
        assert!((wasserstein1(&p, &q) - wasserstein1(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn histogram_divergence_separates_distributions() {
        let mut rng = qce_tensor::init::seeded_rng(1);
        let narrow: Vec<f32> = (0..5000)
            .map(|_| 0.1 * qce_tensor::init::standard_normal(&mut rng))
            .collect();
        let wide: Vec<f32> = (0..5000)
            .map(|_| 0.5 * qce_tensor::init::standard_normal(&mut rng))
            .collect();
        let same = histogram_divergence(&narrow, &narrow, 32, -2.0, 2.0);
        let diff = histogram_divergence(&narrow, &wide, 32, -2.0, 2.0);
        assert!(same < 1e-9);
        assert!(diff > 0.1, "diff {diff}");
    }
}
