//! Evaluation metrics for the `qce` workspace.
//!
//! These are the measurement instruments behind every table of the paper:
//!
//! * [`mape`] — *mean absolute pixel error* between a reconstructed image
//!   and its original (Tables II–IV; "badly encoded" means MAPE > 20).
//! * [`ssim`] — structural similarity (Wang et al., 2004), used for the
//!   face-texture comparison of Table IV / Fig. 5.
//! * [`psnr`] — peak signal-to-noise ratio, a supplementary quality
//!   number.
//! * [`distribution`] — KL divergence and 1-Wasserstein distance between
//!   histograms, quantifying the weight-distribution reshaping of
//!   Figs. 2–3.
//! * [`ConfusionMatrix`] — classification accounting beyond plain
//!   accuracy.
//!
//! # Examples
//!
//! ```
//! use qce_data::Image;
//! use qce_metrics::{mape, ssim};
//!
//! # fn main() -> Result<(), qce_data::DataError> {
//! let a = Image::new(vec![10, 20, 30, 40], 1, 2, 2)?;
//! let b = Image::new(vec![12, 18, 30, 44], 1, 2, 2)?;
//! assert_eq!(mape(&a, &b), 2.0);
//! assert!((ssim(&a, &a) - 1.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod image;

pub mod distribution;

pub use classify::{topk_accuracy, ConfusionMatrix};
pub use image::{mape, mape_slices, psnr, ssim, ssim_slices};
