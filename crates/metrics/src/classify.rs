/// A `K × K` confusion matrix accumulated from `(true, predicted)` label
/// pairs.
///
/// # Examples
///
/// ```
/// use qce_metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.total(), 3);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>, // row = true class, col = predicted
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "confusion matrix needs at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, true_label: usize, predicted: usize) {
        assert!(true_label < self.classes && predicted < self.classes);
        self.counts[true_label * self.classes + predicted] += 1;
    }

    /// Records a batch of observations.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any label is out of range.
    pub fn record_batch(&mut self, true_labels: &[usize], predicted: &[usize]) {
        assert_eq!(true_labels.len(), predicted.len());
        for (&t, &p) in true_labels.iter().zip(predicted.iter()) {
            self.record(t, p);
        }
    }

    /// Count at `(true_label, predicted)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, true_label: usize, predicted: usize) -> u64 {
        assert!(true_label < self.classes && predicted < self.classes);
        self.counts[true_label * self.classes + predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (correct / actual); 0 for classes never seen.
    pub fn recalls(&self) -> Vec<f64> {
        (0..self.classes)
            .map(|i| {
                let row: u64 = (0..self.classes).map(|j| self.count(i, j)).sum();
                if row == 0 {
                    0.0
                } else {
                    self.count(i, i) as f64 / row as f64
                }
            })
            .collect()
    }

    /// Per-class precision (correct / predicted); 0 for classes never
    /// predicted.
    pub fn precisions(&self) -> Vec<f64> {
        (0..self.classes)
            .map(|j| {
                let col: u64 = (0..self.classes).map(|i| self.count(i, j)).sum();
                if col == 0 {
                    0.0
                } else {
                    self.count(j, j) as f64 / col as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record_batch(&[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.recalls(), vec![1.0, 1.0, 1.0]);
        assert_eq!(cm.precisions(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn mixed_predictions() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record_batch(&[0, 0, 1, 1], &[0, 1, 1, 0]);
        assert_eq!(cm.accuracy(), 0.5);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.recalls(), vec![0.5, 0.5]);
    }

    #[test]
    fn empty_matrix() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.recalls(), vec![0.0; 4]);
        assert_eq!(cm.precisions(), vec![0.0; 4]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }
}

/// Top-`k` accuracy from raw logits (`[N, K]` row-major) and labels: a
/// sample counts as correct when its label is among the `k` largest
/// logits of its row.
///
/// # Panics
///
/// Panics if `logits.len()` is not a multiple of `labels.len()`, `k` is
/// zero, or any label is out of range.
pub fn topk_accuracy(logits: &[f32], labels: &[usize], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    if labels.is_empty() {
        return 0.0;
    }
    assert_eq!(logits.len() % labels.len(), 0, "ragged logits");
    let classes = logits.len() / labels.len();
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        let row = &logits[i * classes..(i + 1) * classes];
        let target = row[label];
        // Rank = number of classes with a strictly larger logit.
        let rank = row.iter().filter(|&&v| v > target).count();
        if rank < k {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod topk_tests {
    use super::topk_accuracy;

    #[test]
    fn top1_counts_argmax_only() {
        let logits = [0.1, 0.9, 0.0, /* row 2 */ 0.8, 0.1, 0.1];
        assert_eq!(topk_accuracy(&logits, &[1, 0], 1), 1.0);
        assert_eq!(topk_accuracy(&logits, &[0, 0], 1), 0.5);
    }

    #[test]
    fn topk_widens_acceptance() {
        let logits = [0.5, 0.3, 0.2];
        assert_eq!(topk_accuracy(&logits, &[2], 1), 0.0);
        assert_eq!(topk_accuracy(&logits, &[2], 2), 0.0);
        assert_eq!(topk_accuracy(&logits, &[2], 3), 1.0);
    }

    #[test]
    fn empty_labels() {
        assert_eq!(topk_accuracy(&[], &[], 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        topk_accuracy(&[1.0], &[0], 0);
    }
}
