use qce_data::Image;

/// Mean absolute pixel error between two images of identical geometry —
/// the paper's reconstruction-quality metric (lower is better; MAPE > 20
/// counts as "badly encoded" in Table II).
///
/// # Panics
///
/// Panics if the images differ in pixel count.
pub fn mape(original: &Image, reconstructed: &Image) -> f32 {
    mape_slices(&original.to_f32(), &reconstructed.to_f32())
}

/// [`mape`] on raw pixel-value slices in `[0, 255]`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mape_slices(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "mape requires equal lengths");
    assert!(!a.is_empty(), "mape of empty images is undefined");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .sum::<f32>()
        / a.len() as f32
}

/// Peak signal-to-noise ratio in dB for 8-bit images; `f32::INFINITY` for
/// identical images.
///
/// # Panics
///
/// Panics if the images differ in pixel count.
pub fn psnr(original: &Image, reconstructed: &Image) -> f32 {
    let a = original.to_f32();
    let b = reconstructed.to_f32();
    assert_eq!(a.len(), b.len(), "psnr requires equal lengths");
    let mse: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        return f32::INFINITY;
    }
    (10.0 * (255.0f64 * 255.0 / mse).log10()) as f32
}

const SSIM_WINDOW: usize = 8;
const SSIM_C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
const SSIM_C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);

/// Mean structural similarity index (Wang et al., 2004) between two
/// images, uniform 8×8 windows at stride 1, averaged over channels.
///
/// Returns a value in `[-1, 1]`; 1 means structurally identical. Images
/// smaller than the window fall back to a single full-image window.
///
/// # Panics
///
/// Panics if the images differ in geometry.
pub fn ssim(original: &Image, reconstructed: &Image) -> f32 {
    assert_eq!(
        (original.channels(), original.height(), original.width()),
        (
            reconstructed.channels(),
            reconstructed.height(),
            reconstructed.width()
        ),
        "ssim requires identical geometry"
    );
    let (c, h, w) = (original.channels(), original.height(), original.width());
    let plane = h * w;
    let a = original.to_f32();
    let b = reconstructed.to_f32();
    let mut total = 0.0f64;
    for ch in 0..c {
        total += ssim_plane(
            &a[ch * plane..(ch + 1) * plane],
            &b[ch * plane..(ch + 1) * plane],
            h,
            w,
        );
    }
    (total / c as f64) as f32
}

/// [`ssim`] on two raw single-channel planes of the given geometry.
///
/// # Panics
///
/// Panics if the slice lengths differ from `height * width`.
pub fn ssim_slices(a: &[f32], b: &[f32], height: usize, width: usize) -> f32 {
    assert_eq!(a.len(), height * width);
    assert_eq!(b.len(), height * width);
    ssim_plane(a, b, height, width) as f32
}

fn ssim_plane(a: &[f32], b: &[f32], h: usize, w: usize) -> f64 {
    let win_h = SSIM_WINDOW.min(h);
    let win_w = SSIM_WINDOW.min(w);
    let n_win = ((h - win_h + 1) * (w - win_w + 1)) as f64;
    let win_size = (win_h * win_w) as f64;
    let mut total = 0.0f64;
    for y0 in 0..=(h - win_h) {
        for x0 in 0..=(w - win_w) {
            let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
            for dy in 0..win_h {
                let row = (y0 + dy) * w + x0;
                for dx in 0..win_w {
                    let x = a[row + dx] as f64;
                    let y = b[row + dx] as f64;
                    sa += x;
                    sb += y;
                    saa += x * x;
                    sbb += y * y;
                    sab += x * y;
                }
            }
            let mu_a = sa / win_size;
            let mu_b = sb / win_size;
            let var_a = (saa / win_size - mu_a * mu_a).max(0.0);
            let var_b = (sbb / win_size - mu_b * mu_b).max(0.0);
            let cov = sab / win_size - mu_a * mu_b;
            let s = ((2.0 * mu_a * mu_b + SSIM_C1) * (2.0 * cov + SSIM_C2))
                / ((mu_a * mu_a + mu_b * mu_b + SSIM_C1) * (var_a + var_b + SSIM_C2));
            total += s;
        }
    }
    total / n_win
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(seed: u8) -> Image {
        let pixels: Vec<u8> = (0..256)
            .map(|i| ((i as usize * 199 + seed as usize * 31) % 256) as u8)
            .collect();
        Image::new(pixels, 1, 16, 16).unwrap()
    }

    #[test]
    fn mape_basics() {
        let a = Image::new(vec![0, 100], 1, 1, 2).unwrap();
        let b = Image::new(vec![10, 90], 1, 1, 2).unwrap();
        assert_eq!(mape(&a, &b), 10.0);
        assert_eq!(mape(&a, &a), 0.0);
        assert!(mape(&a, &b) >= 0.0);
    }

    #[test]
    fn mape_is_symmetric() {
        let a = gradient_image(0);
        let b = gradient_image(7);
        assert!((mape(&a, &b) - mape(&b, &a)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mape_length_mismatch_panics() {
        mape_slices(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let a = gradient_image(1);
        assert!(psnr(&a, &a).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = gradient_image(2);
        let small: Vec<f32> = a.to_f32().iter().map(|&v| v + 2.0).collect();
        let large: Vec<f32> = a.to_f32().iter().map(|&v| v + 40.0).collect();
        let b_small = Image::from_f32(&small, 1, 16, 16).unwrap();
        let b_large = Image::from_f32(&large, 1, 16, 16).unwrap();
        assert!(psnr(&a, &b_small) > psnr(&a, &b_large));
    }

    #[test]
    fn ssim_self_is_one() {
        let a = gradient_image(3);
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ssim_in_valid_range_and_orders_degradation() {
        let a = gradient_image(4);
        let mut rng = qce_tensor::init::seeded_rng(1);
        let noisy = |sigma: f32, rng: &mut rand::rngs::StdRng| {
            let v: Vec<f32> = a
                .to_f32()
                .iter()
                .map(|&x| x + sigma * qce_tensor::init::standard_normal(rng))
                .collect();
            Image::from_f32(&v, 1, 16, 16).unwrap()
        };
        let slightly = noisy(5.0, &mut rng);
        let heavily = noisy(80.0, &mut rng);
        let s_slight = ssim(&a, &slightly);
        let s_heavy = ssim(&a, &heavily);
        assert!((-1.0..=1.0).contains(&s_slight));
        assert!((-1.0..=1.0).contains(&s_heavy));
        assert!(s_slight > s_heavy, "{s_slight} <= {s_heavy}");
    }

    #[test]
    fn ssim_detects_structure_loss_better_than_brightness_shift() {
        // A constant brightness shift preserves structure; shuffling
        // destroys it. SSIM should rank them accordingly.
        let a = gradient_image(5);
        let shifted: Vec<f32> = a.to_f32().iter().map(|&v| v + 20.0).collect();
        let b_shift = Image::from_f32(&shifted, 1, 16, 16).unwrap();
        let mut shuffled = a.pixels().to_vec();
        shuffled.reverse();
        let b_shuffle = Image::new(shuffled, 1, 16, 16).unwrap();
        assert!(ssim(&a, &b_shift) > ssim(&a, &b_shuffle));
    }

    #[test]
    fn ssim_small_image_fallback() {
        let a = Image::new(vec![10, 200, 60, 120], 1, 2, 2).unwrap();
        let s = ssim(&a, &a);
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ssim_multichannel_averages() {
        let a = Image::new((0..48).map(|i| (i * 5) as u8).collect(), 3, 4, 4).unwrap();
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ssim_slices_matches_image_path() {
        let a = gradient_image(6);
        let b = gradient_image(9);
        let s1 = ssim(&a, &b);
        let s2 = ssim_slices(&a.to_f32(), &b.to_f32(), 16, 16);
        assert!((s1 - s2).abs() < 1e-6);
    }
}
