//! The complete threat-model loop, with real release artifacts:
//!
//! 1. the data holder trains with the malicious algorithm and publishes
//!    the quantized model as a *packed deployment file* (what an edge
//!    device flashes);
//! 2. the adversary — a separate code path that only sees that file and
//!    knows the architecture — reconstructs the weights and decodes the
//!    training images.
//!
//! ```text
//! cargo run --release -p qce --example release_roundtrip
//! ```

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod};
use qce_attack::{correlation::SignConvention, Decoder, EncodingLayout, GroupSpec};
use qce_data::SynthCifar;
use qce_metrics::mape;
use qce_nn::models::ResNetLite;
use qce_quant::deploy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SynthCifar::new(16).generate(1200, 1)?;
    let config = FlowConfig {
        grouping: Grouping::LayerWise([0.0, 0.0, 5.0]),
        band: BandRule::Explicit {
            min: 50.0,
            max: 55.0,
        },
        quant: None,
        ..FlowConfig::small()
    };

    // --- victim side: train, quantize, publish -------------------------
    let mut trained = AttackFlow::new(config.clone()).train(&dataset)?;
    let qcfg = QuantConfig::new(QuantMethod::TargetCorrelated, 4);
    trained.apply_quantized_state(qcfg)?;

    // Re-derive the quantization handle from the released weights (the
    // deployment is produced from the final quantized model).
    let qnet =
        qce_quant::quantize_network(trained.network_mut(), &qce_quant::LinearQuantizer::new(16)?)?;
    std::fs::create_dir_all("target/release_roundtrip")?;
    let path = "target/release_roundtrip/model.qceq";
    let mut file = std::fs::File::create(path)?;
    deploy::write_deployment(&qnet, &mut file)?;
    let float_bytes = trained.network().num_weights() * 4;
    let file_bytes = std::fs::metadata(path)?.len();
    println!(
        "victim published {path}: {file_bytes} bytes ({:.1}x smaller than {float_bytes}-byte float weights)",
        float_bytes as f64 / file_bytes as f64
    );
    // Keep the originals around only to score the adversary at the end.
    let originals = trained.targets().to_vec();

    // --- adversary side: file + architecture knowledge only ------------
    // Rebuild the architecture shell (the adversary wrote the training
    // code, so every hyper-parameter below is known to them).
    let sample = dataset.image(0);
    let mut shell = ResNetLite::builder()
        .input(sample.channels(), sample.height())
        .classes(dataset.classes())
        .stage_channels(&config.stage_channels)
        .blocks_per_stage(config.blocks_per_stage)
        .build(0)?; // init is irrelevant; weights come from the file
    let deployment = deploy::read_deployment(std::fs::File::open(path)?)?;
    deployment.reapply(&mut shell)?;

    // Re-derive the encoding layout. The adversary cannot see the victim's
    // images, but the layout only needs the *geometry* and count of the
    // targets, both fixed by the architecture and the shipped algorithm.
    let total = shell.weight_slots().len();
    let scale = config.lambda_scale;
    let specs = GroupSpec::paper_thirds(total, [0.0, 0.0, 5.0 * scale]);
    let placeholders: Vec<qce_data::Image> = (0..originals.len())
        .map(|_| qce_data::Image::black(sample.channels(), sample.height(), sample.width()))
        .collect::<Result<_, _>>()?;
    let layout = EncodingLayout::plan(&shell, &specs, &placeholders)?;
    let decoder = Decoder::new(layout, SignConvention::Positive);
    let stolen = decoder.decode(&shell.flat_weights())?;

    println!("adversary decoded {} images from the file", stolen.len());
    let mean_mape: f32 = stolen
        .iter()
        .map(|d| mape(&originals[d.target_index], &d.image))
        .sum::<f32>()
        / stolen.len() as f32;
    println!("mean MAPE vs the victim's private images: {mean_mape:.2}");
    let strip: Vec<_> = stolen.iter().take(8).map(|d| d.image.clone()).collect();
    qce_data::io::write_ppm(
        &qce_data::io::tile_row(&strip)?,
        "target/release_roundtrip/stolen.ppm",
    )?;
    println!("first 8 stolen images written to target/release_roundtrip/stolen.ppm");
    Ok(())
}
