//! Fault-injection walkthrough: train a small attack model, release it
//! quantized, corrupt the release with a seeded [`FaultPlan`], and watch
//! the *resilient* decoder return partial results with per-image status
//! instead of aborting.
//!
//! ```text
//! cargo run --release --example fault_sweep
//! ```

use qce::{
    AttackFlow, BandRule, FaultKind, FaultPlan, FlowConfig, Grouping, QuantConfig, QuantMethod,
    RobustnessReport,
};
use qce_attack::ImageStatus;
use qce_data::SynthCifar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SynthCifar::new(8).classes(4).generate(240, 21)?;
    let cfg = FlowConfig {
        grouping: Grouping::Uniform(5.0),
        band: BandRule::FirstN,
        quant: None,
        ..FlowConfig::tiny()
    };
    let mut trained = AttackFlow::new(cfg).train(&dataset)?;
    let clean = trained.float_report()?;
    println!(
        "trained: accuracy {:.3}, {} images encoded, mean MAPE {:.1}\n",
        clean.accuracy,
        clean.images.len(),
        clean.mean_mape(),
    );

    // 1) A 4-bit release whose packed cluster-index stream suffers 0.1%
    //    bit rot. The resilient decoder reports per-image status and never
    //    panics — this is the scenario a naive decoder aborts on.
    let qcfg = QuantConfig::new(QuantMethod::KMeans, 4);
    let plan = FaultPlan::new(97).with(FaultKind::BitFlip { rate: 0.001 });
    let faulted = trained.evaluate_faulted(Some(qcfg), &plan, "bitflip 0.1%".to_string())?;
    println!(
        "faulted release '{}': accuracy {:.3}, decode confidence {:.3}",
        faulted.label, faulted.accuracy, faulted.mean_confidence,
    );
    println!(
        "per-image status ({} ok / {} degraded / {} failed):",
        faulted.ok_count(),
        faulted.degraded_count(),
        faulted.failed_count(),
    );
    for img in &faulted.images {
        let quality = match (img.mape, img.ssim) {
            (Some(m), Some(s)) => format!("mape {m:>5.1} ssim {s:.3}"),
            _ => "unrecovered".to_string(),
        };
        let status = match &img.status {
            ImageStatus::Ok => "ok".to_string(),
            ImageStatus::Degraded { repaired_pixels } => {
                format!("degraded ({repaired_pixels} px repaired)")
            }
            ImageStatus::Failed { reason } => format!("failed: {reason}"),
        };
        println!(
            "  image {:>2} group {}  {quality}  [{status}]",
            img.target_index, img.group
        );
    }

    // 2) Severity sweep: the same seeded plan scaled up. Because severity
    //    scaling is nested (same seed, superset of flips), decode quality
    //    degrades monotonically.
    let base = FaultPlan::new(11)
        .with(FaultKind::BitFlip { rate: 0.0005 })
        .with(FaultKind::GaussianNoise { fraction: 0.01 });
    let severities = [0.0f32, 2.0, 8.0, 32.0];
    let sweep = trained.robustness_sweep(Some(qcfg), &base, &severities)?;
    println!(
        "\nseverity sweep (quantized release):\n\n{}",
        sweep.summary()
    );
    println!(
        "CSV ({}):\n{}",
        RobustnessReport::csv_header(),
        sweep.to_csv()
    );

    assert!(
        sweep.mape_monotone(5.0) && sweep.ssim_monotone(0.05),
        "decode quality must degrade monotonically with fault severity"
    );
    println!("\nmonotone degradation check: passed");
    Ok(())
}
