//! CIFAR-style end-to-end comparison (the paper's Fig. 4 in miniature):
//!
//! * `Cor` — original correlated value encoding attack, uncompressed
//! * `Cor+WQ` — the same attack model quantized with weighted-entropy
//!   quantization (the defense that breaks it)
//! * `Comb` — the paper's full flow: std-band preprocessing,
//!   layer-wise rates, target-correlated quantization
//!
//! ```text
//! cargo run --release -p qce --example cifar_attack [lambda]
//! ```

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod};
use qce_data::SynthCifar;

fn report(name: &str, outcome: &qce::FlowOutcome) {
    let r = outcome.final_report();
    println!(
        "{name:<10} accuracy {:6.2}%   mean MAPE {:6.2}   recognized {:3}/{:<3}   rho {:?}",
        100.0 * r.accuracy,
        r.mean_mape(),
        r.recognized_count(),
        r.images.len(),
        r.group_correlations
            .iter()
            .map(|c| (c * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lambda: f32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(5.0);
    let bits = 4;
    println!("lambda = {lambda}, quantization = {bits}-bit\n");

    let dataset = SynthCifar::new(16).generate(1200, 1)?;
    let base = FlowConfig::small();

    // Original attack, uncompressed.
    let cor = AttackFlow::new(FlowConfig {
        grouping: Grouping::Uniform(lambda),
        band: BandRule::FirstN,
        quant: None,
        ..base.clone()
    })
    .run(&dataset)?;
    report("Cor", &cor);

    // Original attack + weighted-entropy quantization.
    let cor_wq = AttackFlow::new(FlowConfig {
        grouping: Grouping::Uniform(lambda),
        band: BandRule::FirstN,
        quant: Some(QuantConfig::new(QuantMethod::WeightedEntropy, bits)),
        ..base.clone()
    })
    .run(&dataset)?;
    report("Cor+WQ", &cor_wq);

    // The paper's combined flow.
    let comb = AttackFlow::new(FlowConfig {
        grouping: Grouping::LayerWise([0.0, 0.0, lambda]),
        band: BandRule::Explicit {
            min: 50.0,
            max: 55.0,
        },
        quant: Some(QuantConfig::new(QuantMethod::TargetCorrelated, bits)),
        ..base
    })
    .run(&dataset)?;
    report("Comb", &comb);

    println!(
        "\nexpected shape: Cor+WQ loses accuracy and image quality; \
         Comb restores both at the same bit width."
    );
    Ok(())
}
