//! Defender-side audit: score the weight tensors of a benign model and an
//! attacked model with the distribution heuristics of [`qce::audit`], and
//! show that the encoded tensors stand out.
//!
//! ```text
//! cargo run --release -p qce --example defense_audit
//! ```

use qce::audit::{audit_network, detect_encoded_images};
use qce::{AttackFlow, BandRule, FlowConfig, Grouping};
use qce_data::SynthCifar;

fn print_report(name: &str, report: &qce::audit::AuditReport) {
    println!("\n{name}");
    println!("  ordinal   weights   excess-kurtosis   uniform-KL   suspicion");
    for t in &report.tensors {
        println!(
            "  {:>7}   {:>7}   {:>15.3}   {:>10.3}   {:>9.2}{}",
            t.ordinal,
            t.len,
            t.excess_kurtosis,
            t.uniform_divergence,
            t.suspicion,
            if t.suspicion > 0.5 {
                "  <-- flagged"
            } else {
                ""
            },
        );
    }
    println!(
        "  max suspicion {:.2}, mean {:.2}, {} tensors flagged at 0.5",
        report.max_suspicion(),
        report.mean_suspicion(),
        report.flagged(0.5).len()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SynthCifar::new(16).generate(1000, 3)?;
    let base = FlowConfig {
        quant: None,
        epochs: 4,
        ..FlowConfig::small()
    };

    let benign = AttackFlow::new(FlowConfig {
        grouping: Grouping::Benign,
        ..base.clone()
    })
    .run(&dataset)?;
    let benign_audit = audit_network(&benign.network);
    print_report("benign model", &benign_audit);

    let attacked = AttackFlow::new(FlowConfig {
        grouping: Grouping::LayerWise([0.0, 0.0, 10.0]),
        band: BandRule::Auto { width: 8.0 },
        ..base
    })
    .run(&dataset)?;
    let attacked_audit = audit_network(&attacked.network);
    print_report("attacked model (lambda = 10, late layers)", &attacked_audit);

    println!(
        "\nverdict: benign max suspicion {:.2} vs attacked {:.2} — \
         encoded tensors are visibly pixel-shaped.",
        benign_audit.max_suspicion(),
        attacked_audit.max_suspicion()
    );

    // Data-aware second stage: which *specific* images were stolen?
    // The data holder audits against their own training split.
    let (train, _) = dataset.split(0.8333, attacked_config_seed())?;
    let detected = detect_encoded_images(&attacked.network, &train, 0.85);
    println!(
        "\nimage-level detection: {} training images found inside the released weights",
        detected.len()
    );
    for d in detected.iter().take(8) {
        println!(
            "  train image {:>4}  |rho| = {:.4}  at weight offset {}",
            d.dataset_index, d.correlation, d.weight_offset
        );
    }
    let encoded: std::collections::HashSet<usize> =
        attacked.selection_indices.iter().copied().collect();
    let true_hits = detected
        .iter()
        .filter(|d| encoded.contains(&d.dataset_index))
        .count();
    println!(
        "  {} of {} detections are actually encoded images ({} were encoded in total)",
        true_hits,
        detected.len(),
        encoded.len()
    );
    Ok(())
}

/// The flow derives its split seed from `FlowConfig::seed`; expose the
/// same value so the defender audits the same train split.
fn attacked_config_seed() -> u64 {
    FlowConfig::small().seed
}
