//! Face-recognition data stealing (the paper's Table IV / Fig. 5):
//! train a face recognizer on synthetic identities with the correlation
//! attack at λ = 10, quantize to 3 bits (8 gray levels), and compare
//! reconstructed faces under the proposed target-correlated quantization
//! versus the original weighted-entropy quantization.
//!
//! The attack model is trained **once**; both quantizers are applied to
//! the same float weights (exactly how the paper's Table IV compares
//! them). Reconstructed face strips are written as PGM files under
//! `target/face_attack/`.
//!
//! ```text
//! cargo run --release -p qce --example face_attack
//! ```

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod, StageReport};
use qce_data::{io, SynthFaces};

fn table_row(name: &str, r: &StageReport) {
    println!(
        "{name:<26} accuracy {:6.2}%   MAPE {:6.2}   MAPE<20 {:4}   SSIM {:.4}   SSIM>0.5 {:4}",
        100.0 * r.accuracy,
        r.mean_mape(),
        r.count_mape_below(20.0),
        r.mean_ssim(),
        r.count_ssim_above(0.5),
    );
}

fn write_strip(
    trained: &qce::TrainedAttack,
    path: &str,
    n: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let decoded = trained.decode_images()?;
    let faces: Vec<_> = decoded.iter().take(n).map(|d| d.image.clone()).collect();
    if !faces.is_empty() {
        io::write_pgm(&io::tile_row(&faces)?, path)?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let identities = 40;
    let dataset = SynthFaces::new(16, identities).generate(1600, 11)?;
    std::fs::create_dir_all("target/face_attack")?;

    let config = FlowConfig {
        grouping: Grouping::LayerWise([0.0, 0.0, 10.0]),
        band: BandRule::Auto { width: 8.0 },
        epochs: 14,
        quant: None,
        ..FlowConfig::small()
    };
    println!("faces: {identities} identities, lambda = 10, 3-bit quantization\n");

    // Train the attack model once.
    let mut trained = AttackFlow::new(config).train(&dataset)?;

    // Uncompressed release.
    let float_report = trained.float_report()?;
    table_row("Uncompressed", &float_report);
    write_strip(&trained, "target/face_attack/uncompressed.pgm", 10)?;

    // Proposed target-correlated 3-bit quantization.
    let proposed = trained.quantize(QuantConfig::new(QuantMethod::TargetCorrelated, 3))?;
    table_row("Proposed quantization", &proposed.report);
    trained.apply_quantized_state(QuantConfig::new(QuantMethod::TargetCorrelated, 3))?;
    write_strip(&trained, "target/face_attack/proposed.pgm", 10)?;
    trained.restore_float()?;

    // Original weighted-entropy 3-bit quantization.
    let original = trained.quantize(QuantConfig::new(QuantMethod::WeightedEntropy, 3))?;
    table_row("Original quantization", &original.report);
    trained.apply_quantized_state(QuantConfig::new(QuantMethod::WeightedEntropy, 3))?;
    write_strip(&trained, "target/face_attack/original.pgm", 10)?;

    // The originals, for visual comparison.
    let originals: Vec<_> = trained.targets().iter().take(10).cloned().collect();
    if !originals.is_empty() {
        io::write_pgm(&io::tile_row(&originals)?, "target/face_attack/targets.pgm")?;
    }

    println!("\nface strips written to target/face_attack/*.pgm");
    Ok(())
}
