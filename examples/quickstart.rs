//! Quickstart: run the full quantized correlation encoding attack flow on
//! a synthetic CIFAR-like dataset and print what the adversary recovers.
//!
//! ```text
//! cargo run --release -p qce --example quickstart
//! ```

use qce::{AttackFlow, FlowConfig};
use qce_data::SynthCifar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The data holder's private dataset (synthetic stand-in for CIFAR-10).
    let dataset = SynthCifar::new(16).generate(1200, 1)?;

    // What an honest provider's algorithm would produce, for reference.
    let benign = AttackFlow::new(FlowConfig {
        grouping: qce::Grouping::Benign,
        quant: None,
        ..FlowConfig::small()
    })
    .run(&dataset)?;
    qce_telemetry::progress!(
        "benign baseline accuracy: {:.2}%",
        100.0 * benign.pre_quant.accuracy
    );

    // The "training algorithm" the malicious provider shipped: looks like
    // preprocessing + regularized training + quantization with
    // fine-tuning; actually encodes training images into the weights.
    let config = FlowConfig::small();
    qce_telemetry::progress!(
        "running attack flow: {:?} + {:?}",
        config.grouping,
        config.quant
    );

    let outcome = AttackFlow::new(config).run(&dataset)?;

    let pre = &outcome.pre_quant;
    qce_telemetry::progress!("\n=== float model (before quantization) ===");
    qce_telemetry::progress!("validation accuracy : {:.2}%", 100.0 * pre.accuracy);
    qce_telemetry::progress!("images encoded      : {}", pre.images.len());
    qce_telemetry::progress!("mean MAPE           : {:.2}", pre.mean_mape());
    qce_telemetry::progress!(
        "recognized by model : {} ({:.1}%)",
        pre.recognized_count(),
        100.0 * pre.recognized_fraction()
    );
    qce_telemetry::progress!("group correlations  : {:?}", pre.group_correlations);

    if let Some(post) = &outcome.post_quant {
        qce_telemetry::progress!("\n=== released model ({}) ===", post.label);
        qce_telemetry::progress!("validation accuracy : {:.2}%", 100.0 * post.accuracy);
        qce_telemetry::progress!("mean MAPE           : {:.2}", post.mean_mape());
        qce_telemetry::progress!(
            "recognized by model : {} ({:.1}%)",
            post.recognized_count(),
            100.0 * post.recognized_fraction()
        );
        qce_telemetry::progress!(
            "compression         : {:.2}x vs float32",
            outcome.compression_ratio.unwrap_or(1.0)
        );
    }
    Ok(())
}
